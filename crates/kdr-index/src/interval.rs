//! Sorted-run subsets of an index space.
//!
//! An [`IntervalSet`] stores a subset of `0..n` as a sorted list of
//! disjoint, non-adjacent half-open runs `[lo, hi)`. This is the
//! representation every dependent-partitioning operation works on:
//! images and preimages of structured relations map runs to runs, so
//! set algebra stays proportional to the number of runs rather than
//! the number of points.

use std::fmt;

/// A half-open interval `[lo, hi)` of global index points.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, PartialOrd, Ord)]
pub struct Run {
    /// Inclusive lower bound.
    pub lo: u64,
    /// Exclusive upper bound.
    pub hi: u64,
}

impl Run {
    /// Create a run; empty runs (`lo >= hi`) are permitted and ignored
    /// by [`IntervalSet`] constructors.
    #[inline]
    pub fn new(lo: u64, hi: u64) -> Self {
        Run { lo, hi }
    }

    /// Number of points in the run.
    #[inline]
    pub fn len(&self) -> u64 {
        self.hi.saturating_sub(self.lo)
    }

    /// True if the run contains no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lo >= self.hi
    }

    /// True if `p` lies in `[lo, hi)`.
    #[inline]
    pub fn contains(&self, p: u64) -> bool {
        self.lo <= p && p < self.hi
    }

    /// Intersection of two runs (possibly empty).
    #[inline]
    pub fn intersect(&self, other: &Run) -> Run {
        Run::new(self.lo.max(other.lo), self.hi.min(other.hi))
    }
}

/// A subset of an index space stored as sorted disjoint runs.
///
/// Invariants: runs are non-empty, sorted by `lo`, and separated by at
/// least one missing point (adjacent runs are coalesced).
#[derive(Clone, PartialEq, Eq, Default, Hash)]
pub struct IntervalSet {
    runs: Vec<Run>,
}

impl fmt::Debug for IntervalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, r) in self.runs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "[{}, {})", r.lo, r.hi)?;
        }
        write!(f, "}}")
    }
}

impl IntervalSet {
    /// The empty set.
    pub fn empty() -> Self {
        IntervalSet { runs: Vec::new() }
    }

    /// The full interval `[0, n)`.
    pub fn full(n: u64) -> Self {
        Self::from_range(0, n)
    }

    /// A single run `[lo, hi)`.
    pub fn from_range(lo: u64, hi: u64) -> Self {
        if lo >= hi {
            Self::empty()
        } else {
            IntervalSet {
                runs: vec![Run::new(lo, hi)],
            }
        }
    }

    /// Build from an arbitrary list of (possibly overlapping,
    /// unsorted) runs.
    pub fn from_runs<I: IntoIterator<Item = Run>>(iter: I) -> Self {
        let mut runs: Vec<Run> = iter.into_iter().filter(|r| !r.is_empty()).collect();
        runs.sort_unstable_by_key(|r| r.lo);
        let mut out: Vec<Run> = Vec::with_capacity(runs.len());
        for r in runs {
            match out.last_mut() {
                Some(last) if r.lo <= last.hi => last.hi = last.hi.max(r.hi),
                _ => out.push(r),
            }
        }
        IntervalSet { runs: out }
    }

    /// Build from an arbitrary list of points.
    pub fn from_points<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut pts: Vec<u64> = iter.into_iter().collect();
        pts.sort_unstable();
        pts.dedup();
        Self::from_sorted_points(&pts)
    }

    /// Build from a sorted, deduplicated slice of points.
    pub fn from_sorted_points(pts: &[u64]) -> Self {
        let mut runs = Vec::new();
        let mut i = 0;
        while i < pts.len() {
            let lo = pts[i];
            let mut hi = lo + 1;
            i += 1;
            while i < pts.len() && pts[i] == hi {
                hi += 1;
                i += 1;
            }
            runs.push(Run::new(lo, hi));
        }
        IntervalSet { runs }
    }

    /// The underlying runs.
    #[inline]
    pub fn runs(&self) -> &[Run] {
        &self.runs
    }

    /// Number of points in the set.
    pub fn cardinality(&self) -> u64 {
        self.runs.iter().map(Run::len).sum()
    }

    /// True if the set contains no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Smallest point, if any.
    pub fn min(&self) -> Option<u64> {
        self.runs.first().map(|r| r.lo)
    }

    /// Largest point, if any.
    pub fn max(&self) -> Option<u64> {
        self.runs.last().map(|r| r.hi - 1)
    }

    /// Membership test (binary search over runs).
    pub fn contains(&self, p: u64) -> bool {
        self.runs
            .binary_search_by(|r| {
                if r.hi <= p {
                    std::cmp::Ordering::Less
                } else if r.lo > p {
                    std::cmp::Ordering::Greater
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// True iff the whole half-open range `[lo, hi)` is contained in
    /// the set (equivalently, in a single run — runs are maximal).
    /// Empty ranges are trivially contained.
    pub fn contains_range(&self, lo: u64, hi: u64) -> bool {
        if lo >= hi {
            return true;
        }
        self.runs
            .binary_search_by(|r| {
                if r.hi <= lo {
                    std::cmp::Ordering::Less
                } else if r.lo > lo {
                    std::cmp::Ordering::Greater
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok_and(|k| hi <= self.runs[k].hi)
    }

    /// Iterate over the individual points of the set.
    pub fn iter_points(&self) -> impl Iterator<Item = u64> + '_ {
        self.runs.iter().flat_map(|r| r.lo..r.hi)
    }

    /// Set union.
    pub fn union(&self, other: &IntervalSet) -> IntervalSet {
        Self::from_runs(self.runs.iter().chain(other.runs.iter()).copied())
    }

    /// Set intersection (linear merge over runs).
    pub fn intersect(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.runs.len() && j < other.runs.len() {
            let a = self.runs[i];
            let b = other.runs[j];
            let c = a.intersect(&b);
            if !c.is_empty() {
                out.push(c);
            }
            if a.hi <= b.hi {
                i += 1;
            } else {
                j += 1;
            }
        }
        IntervalSet { runs: out }
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = Vec::new();
        let mut j = 0;
        for &a in &self.runs {
            let mut lo = a.lo;
            while j < other.runs.len() && other.runs[j].hi <= lo {
                j += 1;
            }
            let mut k = j;
            while k < other.runs.len() && other.runs[k].lo < a.hi {
                let b = other.runs[k];
                if b.lo > lo {
                    out.push(Run::new(lo, b.lo.min(a.hi)));
                }
                lo = lo.max(b.hi);
                if b.hi >= a.hi {
                    break;
                }
                k += 1;
            }
            if lo < a.hi {
                out.push(Run::new(lo, a.hi));
            }
        }
        IntervalSet { runs: out }
    }

    /// Complement within `[0, n)`.
    pub fn complement(&self, n: u64) -> IntervalSet {
        IntervalSet::full(n).difference(self)
    }

    /// True if the two sets share no points.
    pub fn is_disjoint(&self, other: &IntervalSet) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.runs.len() && j < other.runs.len() {
            let a = self.runs[i];
            let b = other.runs[j];
            if !a.intersect(&b).is_empty() {
                return false;
            }
            if a.hi <= b.hi {
                i += 1;
            } else {
                j += 1;
            }
        }
        true
    }

    /// True if every point of `self` is in `other`.
    pub fn is_subset_of(&self, other: &IntervalSet) -> bool {
        self.difference(other).is_empty()
    }

    /// Translate every point by a signed offset, dropping points that
    /// leave `[0, limit)`. Used by diagonal (DIA) relations.
    pub fn shift_clamped(&self, offset: i64, limit: u64) -> IntervalSet {
        let mut out = Vec::new();
        for &r in &self.runs {
            let lo = r.lo as i64 + offset;
            let hi = r.hi as i64 + offset;
            let lo = lo.clamp(0, limit as i64) as u64;
            let hi = hi.clamp(0, limit as i64) as u64;
            if lo < hi {
                out.push(Run::new(lo, hi));
            }
        }
        // Shift preserves ordering and disjointness; clamping can only
        // merge at the boundary, which from_runs handles.
        Self::from_runs(out)
    }

    /// Split this set into `pieces` nearly-equal contiguous chunks (by
    /// point count, in index order). Used to subdivide kernel spaces.
    pub fn split_equal(&self, pieces: usize) -> Vec<IntervalSet> {
        assert!(pieces > 0, "cannot split into zero pieces");
        let total = self.cardinality();
        let mut out = Vec::with_capacity(pieces);
        let mut run_idx = 0usize;
        let mut offset = 0u64; // points consumed from runs[run_idx]
        for c in 0..pieces as u64 {
            // points in piece c: balanced remainder distribution
            let want = total / pieces as u64 + u64::from(c < total % pieces as u64);
            let mut need = want;
            let mut runs = Vec::new();
            while need > 0 && run_idx < self.runs.len() {
                let r = self.runs[run_idx];
                let avail = r.len() - offset;
                let take = avail.min(need);
                runs.push(Run::new(r.lo + offset, r.lo + offset + take));
                need -= take;
                offset += take;
                if offset == r.len() {
                    run_idx += 1;
                    offset = 0;
                }
            }
            out.push(IntervalSet { runs });
        }
        out
    }
}

impl FromIterator<u64> for IntervalSet {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        Self::from_points(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_points_coalesces() {
        let s = IntervalSet::from_points([5, 3, 4, 9, 1, 2]);
        assert_eq!(s.runs(), &[Run::new(1, 6), Run::new(9, 10)]);
        assert_eq!(s.cardinality(), 6);
    }

    #[test]
    fn from_runs_merges_overlaps_and_adjacency() {
        let s = IntervalSet::from_runs([Run::new(0, 3), Run::new(3, 5), Run::new(4, 8)]);
        assert_eq!(s.runs(), &[Run::new(0, 8)]);
        let t = IntervalSet::from_runs([Run::new(0, 2), Run::new(3, 5)]);
        assert_eq!(t.runs().len(), 2);
    }

    #[test]
    fn empty_runs_are_dropped() {
        let s = IntervalSet::from_runs([Run::new(3, 3), Run::new(7, 5)]);
        assert!(s.is_empty());
        assert_eq!(s.cardinality(), 0);
    }

    #[test]
    fn contains_and_iter() {
        let s = IntervalSet::from_points([0, 2, 3, 10]);
        assert!(s.contains(0));
        assert!(!s.contains(1));
        assert!(s.contains(2));
        assert!(s.contains(10));
        assert!(!s.contains(11));
        assert_eq!(s.iter_points().collect::<Vec<_>>(), vec![0, 2, 3, 10]);
    }

    #[test]
    fn union_intersect_difference() {
        let a = IntervalSet::from_range(0, 10);
        let b = IntervalSet::from_range(5, 15);
        assert_eq!(a.union(&b), IntervalSet::from_range(0, 15));
        assert_eq!(a.intersect(&b), IntervalSet::from_range(5, 10));
        assert_eq!(a.difference(&b), IntervalSet::from_range(0, 5));
        assert_eq!(b.difference(&a), IntervalSet::from_range(10, 15));
    }

    #[test]
    fn difference_multi_run() {
        let a = IntervalSet::full(20);
        let b = IntervalSet::from_runs([Run::new(2, 4), Run::new(8, 12), Run::new(18, 25)]);
        let d = a.difference(&b);
        assert_eq!(
            d.runs(),
            &[Run::new(0, 2), Run::new(4, 8), Run::new(12, 18)]
        );
    }

    #[test]
    fn complement_roundtrip() {
        let s = IntervalSet::from_runs([Run::new(1, 3), Run::new(6, 9)]);
        let c = s.complement(10);
        assert_eq!(c.union(&s), IntervalSet::full(10));
        assert!(c.is_disjoint(&s));
        assert_eq!(c.complement(10), s);
    }

    #[test]
    fn disjoint_and_subset() {
        let a = IntervalSet::from_range(0, 5);
        let b = IntervalSet::from_range(5, 10);
        assert!(a.is_disjoint(&b));
        assert!(a.is_subset_of(&IntervalSet::full(5)));
        assert!(!IntervalSet::full(6).is_subset_of(&a));
    }

    #[test]
    fn shift_clamped_drops_out_of_range() {
        let s = IntervalSet::from_range(0, 5);
        assert_eq!(s.shift_clamped(-2, 10), IntervalSet::from_range(0, 3));
        assert_eq!(s.shift_clamped(7, 10), IntervalSet::from_range(7, 10));
        assert!(s.shift_clamped(20, 10).is_empty());
        assert!(s.shift_clamped(-20, 10).is_empty());
    }

    #[test]
    fn split_equal_balanced() {
        let s = IntervalSet::full(10);
        let parts = s.split_equal(3);
        assert_eq!(parts.len(), 3);
        assert_eq!(
            parts.iter().map(|p| p.cardinality()).collect::<Vec<_>>(),
            vec![4, 3, 3]
        );
        // Union of parts reconstructs the whole; parts are disjoint.
        let u = parts.iter().fold(IntervalSet::empty(), |a, b| a.union(b));
        assert_eq!(u, s);
        assert!(parts[0].is_disjoint(&parts[1]));
        assert!(parts[1].is_disjoint(&parts[2]));
    }

    #[test]
    fn split_equal_over_gappy_set() {
        let s = IntervalSet::from_runs([Run::new(0, 4), Run::new(10, 14)]);
        let parts = s.split_equal(4);
        assert_eq!(parts.iter().map(|p| p.cardinality()).sum::<u64>(), 8);
        for p in &parts {
            assert!(p.is_subset_of(&s));
            assert_eq!(p.cardinality(), 2);
        }
    }

    #[test]
    fn split_more_pieces_than_points() {
        let s = IntervalSet::full(2);
        let parts = s.split_equal(5);
        assert_eq!(parts.len(), 5);
        assert_eq!(parts.iter().map(|p| p.cardinality()).sum::<u64>(), 2);
        assert!(parts[2].is_empty() && parts[3].is_empty() && parts[4].is_empty());
    }

    #[test]
    fn min_max() {
        let s = IntervalSet::from_runs([Run::new(3, 5), Run::new(8, 9)]);
        assert_eq!(s.min(), Some(3));
        assert_eq!(s.max(), Some(8));
        assert_eq!(IntervalSet::empty().min(), None);
    }
}
