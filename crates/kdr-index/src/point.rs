//! Multi-dimensional points and rectangles with row-major
//! linearization.
//!
//! KDRSolvers index spaces are abstractly flat sets of identifiers;
//! grid-structured problems (stencils, dense matrices, ELL/DIA kernel
//! spaces) give those identifiers 2-D or 3-D structure. These helpers
//! convert between the structured and linearized views.

/// A point in a 2-D grid.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct Point2 {
    /// Grid coordinate along the slow (row) axis.
    pub x: u64,
    /// Grid coordinate along the fast (column) axis.
    pub y: u64,
}

/// A point in a 3-D grid.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct Point3 {
    /// Grid coordinate along the slowest axis.
    pub x: u64,
    /// Grid coordinate along the middle axis.
    pub y: u64,
    /// Grid coordinate along the fastest axis.
    pub z: u64,
}

/// A 1-D rectangle: the half-open range `[lo, hi)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Rect1 {
    /// Inclusive lower bound.
    pub lo: u64,
    /// Exclusive upper bound.
    pub hi: u64,
}

/// A 2-D axis-aligned rectangle with exclusive upper bounds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Rect2 {
    /// Inclusive lower corner.
    pub lo: Point2,
    /// Exclusive upper corner.
    pub hi: Point2,
}

/// A 3-D axis-aligned box with exclusive upper bounds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Rect3 {
    /// Inclusive lower corner.
    pub lo: Point3,
    /// Exclusive upper corner.
    pub hi: Point3,
}

impl Rect1 {
    /// The range `[lo, hi)`.
    pub fn new(lo: u64, hi: u64) -> Self {
        Rect1 { lo, hi }
    }

    /// Number of points in the range (0 when `hi <= lo`).
    pub fn volume(&self) -> u64 {
        self.hi.saturating_sub(self.lo)
    }
}

impl Rect2 {
    /// The rectangle `[lo, hi)` along both axes.
    pub fn new(lo: Point2, hi: Point2) -> Self {
        Rect2 { lo, hi }
    }

    /// The full `nx × ny` grid.
    pub fn full(nx: u64, ny: u64) -> Self {
        Rect2 {
            lo: Point2 { x: 0, y: 0 },
            hi: Point2 { x: nx, y: ny },
        }
    }

    /// Number of grid points inside (0 for inverted bounds).
    pub fn volume(&self) -> u64 {
        self.hi.x.saturating_sub(self.lo.x) * self.hi.y.saturating_sub(self.lo.y)
    }

    /// Whether `p` lies inside the rectangle.
    pub fn contains(&self, p: Point2) -> bool {
        self.lo.x <= p.x && p.x < self.hi.x && self.lo.y <= p.y && p.y < self.hi.y
    }
}

impl Rect3 {
    /// The box `[lo, hi)` along all three axes.
    pub fn new(lo: Point3, hi: Point3) -> Self {
        Rect3 { lo, hi }
    }

    /// The full `nx × ny × nz` grid.
    pub fn full(nx: u64, ny: u64, nz: u64) -> Self {
        Rect3 {
            lo: Point3 { x: 0, y: 0, z: 0 },
            hi: Point3 {
                x: nx,
                y: ny,
                z: nz,
            },
        }
    }

    /// Number of grid points inside (0 for inverted bounds).
    pub fn volume(&self) -> u64 {
        self.hi.x.saturating_sub(self.lo.x)
            * self.hi.y.saturating_sub(self.lo.y)
            * self.hi.z.saturating_sub(self.lo.z)
    }

    /// Whether `p` lies inside the box.
    pub fn contains(&self, p: Point3) -> bool {
        self.lo.x <= p.x
            && p.x < self.hi.x
            && self.lo.y <= p.y
            && p.y < self.hi.y
            && self.lo.z <= p.z
            && p.z < self.hi.z
    }
}

/// Row-major linearization of a 2-D point within an `nx × ny` grid
/// (x is the slow axis).
#[inline]
pub fn linearize2(p: Point2, ny: u64) -> u64 {
    p.x * ny + p.y
}

/// Inverse of [`linearize2`].
#[inline]
pub fn delinearize2(i: u64, ny: u64) -> Point2 {
    Point2 {
        x: i / ny,
        y: i % ny,
    }
}

/// Row-major linearization of a 3-D point within an `nx × ny × nz`
/// grid (x slowest, z fastest).
#[inline]
pub fn linearize3(p: Point3, ny: u64, nz: u64) -> u64 {
    (p.x * ny + p.y) * nz + p.z
}

/// Inverse of [`linearize3`].
#[inline]
pub fn delinearize3(i: u64, ny: u64, nz: u64) -> Point3 {
    Point3 {
        x: i / (ny * nz),
        y: (i / nz) % ny,
        z: i % nz,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linearize2_roundtrip() {
        let (nx, ny) = (7, 5);
        for x in 0..nx {
            for y in 0..ny {
                let p = Point2 { x, y };
                let i = linearize2(p, ny);
                assert!(i < nx * ny);
                assert_eq!(delinearize2(i, ny), p);
            }
        }
    }

    #[test]
    fn linearize3_roundtrip() {
        let (nx, ny, nz) = (3, 4, 5);
        let mut seen = std::collections::HashSet::new();
        for x in 0..nx {
            for y in 0..ny {
                for z in 0..nz {
                    let p = Point3 { x, y, z };
                    let i = linearize3(p, ny, nz);
                    assert!(i < nx * ny * nz);
                    assert!(seen.insert(i), "linearization must be injective");
                    assert_eq!(delinearize3(i, ny, nz), p);
                }
            }
        }
    }

    #[test]
    fn rect_volumes() {
        assert_eq!(Rect1::new(3, 10).volume(), 7);
        assert_eq!(Rect2::full(4, 6).volume(), 24);
        assert_eq!(Rect3::full(2, 3, 4).volume(), 24);
        assert_eq!(Rect1::new(5, 5).volume(), 0);
    }

    #[test]
    fn rect_contains() {
        let r = Rect2::full(4, 4);
        assert!(r.contains(Point2 { x: 0, y: 0 }));
        assert!(r.contains(Point2 { x: 3, y: 3 }));
        assert!(!r.contains(Point2 { x: 4, y: 0 }));
        let b = Rect3::full(2, 2, 2);
        assert!(b.contains(Point3 { x: 1, y: 1, z: 1 }));
        assert!(!b.contains(Point3 { x: 1, y: 2, z: 1 }));
    }
}
