//! Partitions of index spaces.
//!
//! A partition is a function `P : C -> 2^I` from a finite *color
//! space* to subsets of an index space (paper §3.1). Partitions may be
//! incomplete (some points uncolored) and aliased (points colored more
//! than once); [`Partition::is_complete`] and
//! [`Partition::is_disjoint`] test the two properties the paper names.

use crate::interval::IntervalSet;
use crate::point::{Point2, Point3};
use crate::space::{IndexSpace, Shape};

/// A coloring of an index space: one [`IntervalSet`] per color.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    space_size: u64,
    pieces: Vec<IntervalSet>,
}

impl Partition {
    /// Build from explicit pieces. Panics if any piece leaves the
    /// space.
    pub fn new(space_size: u64, pieces: Vec<IntervalSet>) -> Self {
        for (c, p) in pieces.iter().enumerate() {
            if let Some(m) = p.max() {
                assert!(m < space_size, "piece {c} exceeds space size {space_size}");
            }
        }
        Partition { space_size, pieces }
    }

    /// Partition `0..n` into `colors` nearly-equal contiguous blocks.
    pub fn equal_blocks(n: u64, colors: usize) -> Self {
        Partition::new(n, IntervalSet::full(n).split_equal(colors))
    }

    /// Color each point by `color_fn`; colors must be `< colors`.
    pub fn from_color_fn<F: FnMut(u64) -> usize>(n: u64, colors: usize, mut color_fn: F) -> Self {
        let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); colors];
        for i in 0..n {
            let c = color_fn(i);
            assert!(c < colors, "color {c} out of range");
            buckets[c].push(i);
        }
        Partition::new(
            n,
            buckets
                .into_iter()
                .map(|b| IntervalSet::from_sorted_points(&b))
                .collect(),
        )
    }

    /// Cyclic (round-robin) partition: point `i` gets color
    /// `i % colors`. Maximally scattering — the worst case for
    /// interval-set compactness, useful for load-spreading and for
    /// stress-testing projection code.
    pub fn cyclic(n: u64, colors: usize) -> Self {
        Self::block_cyclic(n, colors, 1)
    }

    /// Block-cyclic partition with block size `b`: blocks of `b`
    /// consecutive points are dealt round-robin to colors.
    pub fn block_cyclic(n: u64, colors: usize, b: u64) -> Self {
        assert!(colors > 0 && b > 0);
        let mut pieces: Vec<Vec<crate::interval::Run>> = vec![Vec::new(); colors];
        let mut lo = 0u64;
        let mut color = 0usize;
        while lo < n {
            let hi = (lo + b).min(n);
            pieces[color].push(crate::interval::Run::new(lo, hi));
            color = (color + 1) % colors;
            lo = hi;
        }
        Partition::new(n, pieces.into_iter().map(IntervalSet::from_runs).collect())
    }

    /// Partition a 2-D grid space into `tx × ty` rectangular tiles,
    /// colored row-major over tiles.
    pub fn grid2_tiles(space: &IndexSpace, tx: u64, ty: u64) -> Self {
        let (nx, ny) = match space.shape() {
            Shape::Grid2 { nx, ny } => (nx, ny),
            s => panic!("grid2_tiles on non-2D space {s:?}"),
        };
        assert!(tx > 0 && ty > 0 && tx <= nx && ty <= ny, "bad tile grid");
        let mut pieces = Vec::with_capacity((tx * ty) as usize);
        for bx in 0..tx {
            let x0 = bx * nx / tx;
            let x1 = (bx + 1) * nx / tx;
            for by in 0..ty {
                let y0 = by * ny / ty;
                let y1 = (by + 1) * ny / ty;
                let mut runs = Vec::with_capacity((x1 - x0) as usize);
                for x in x0..x1 {
                    let lo = space.linearize2(Point2 { x, y: y0 });
                    let hi = space.linearize2(Point2 { x, y: y1 - 1 }) + 1;
                    runs.push(crate::interval::Run::new(lo, hi));
                }
                pieces.push(IntervalSet::from_runs(runs));
            }
        }
        Partition::new(space.size(), pieces)
    }

    /// Partition a 3-D grid space into `tx` slabs along the slow axis.
    pub fn grid3_slabs(space: &IndexSpace, tx: u64) -> Self {
        let nx = match space.shape() {
            Shape::Grid3 { nx, .. } => nx,
            s => panic!("grid3_slabs on non-3D space {s:?}"),
        };
        assert!(tx > 0 && tx <= nx, "bad slab count");
        let mut pieces = Vec::with_capacity(tx as usize);
        for bx in 0..tx {
            let x0 = bx * nx / tx;
            let x1 = (bx + 1) * nx / tx;
            let lo = space.linearize3(Point3 { x: x0, y: 0, z: 0 });
            let hi = if x1 == nx {
                space.size()
            } else {
                space.linearize3(Point3 { x: x1, y: 0, z: 0 })
            };
            pieces.push(IntervalSet::from_range(lo, hi));
        }
        Partition::new(space.size(), pieces)
    }

    /// Size of the partitioned space.
    pub fn space_size(&self) -> u64 {
        self.space_size
    }

    /// Number of colors.
    pub fn num_colors(&self) -> usize {
        self.pieces.len()
    }

    /// The subset assigned to color `c`.
    pub fn piece(&self, c: usize) -> &IntervalSet {
        &self.pieces[c]
    }

    /// All pieces in color order.
    pub fn pieces(&self) -> &[IntervalSet] {
        &self.pieces
    }

    /// Union of all pieces.
    pub fn union_all(&self) -> IntervalSet {
        self.pieces
            .iter()
            .fold(IntervalSet::empty(), |a, b| a.union(b))
    }

    /// True if every point of the space has at least one color.
    pub fn is_complete(&self) -> bool {
        self.union_all() == IntervalSet::full(self.space_size)
    }

    /// True if no point has more than one color.
    pub fn is_disjoint(&self) -> bool {
        // Sum of cardinalities equals cardinality of the union iff no
        // point is double-colored.
        let total: u64 = self.pieces.iter().map(IntervalSet::cardinality).sum();
        total == self.union_all().cardinality()
    }

    /// Pointwise intersection with another partition over the same
    /// space and color space — the coarsest common refinement used
    /// when combining constraints from several relations.
    pub fn intersect(&self, other: &Partition) -> Partition {
        assert_eq!(self.space_size, other.space_size);
        assert_eq!(self.num_colors(), other.num_colors());
        Partition::new(
            self.space_size,
            self.pieces
                .iter()
                .zip(&other.pieces)
                .map(|(a, b)| a.intersect(b))
                .collect(),
        )
    }

    /// Pointwise union with another partition over the same space and
    /// color space.
    pub fn union(&self, other: &Partition) -> Partition {
        assert_eq!(self.space_size, other.space_size);
        assert_eq!(self.num_colors(), other.num_colors());
        Partition::new(
            self.space_size,
            self.pieces
                .iter()
                .zip(&other.pieces)
                .map(|(a, b)| a.union(b))
                .collect(),
        )
    }

    /// True if `other` refines `self`: every piece of `other` is
    /// contained in the same-colored piece of `self`.
    pub fn refines(&self, other: &Partition) -> bool {
        self.num_colors() == other.num_colors()
            && other
                .pieces
                .iter()
                .zip(&self.pieces)
                .all(|(o, s)| o.is_subset_of(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_blocks_complete_disjoint() {
        let p = Partition::equal_blocks(10, 3);
        assert!(p.is_complete());
        assert!(p.is_disjoint());
        assert_eq!(p.num_colors(), 3);
        assert_eq!(p.piece(0).cardinality(), 4);
    }

    #[test]
    fn from_color_fn_round_robin() {
        let p = Partition::from_color_fn(9, 3, |i| (i % 3) as usize);
        assert!(p.is_complete());
        assert!(p.is_disjoint());
        assert_eq!(p.piece(1).iter_points().collect::<Vec<_>>(), vec![1, 4, 7]);
    }

    #[test]
    fn aliased_partition_detected() {
        let p = Partition::new(
            4,
            vec![IntervalSet::from_range(0, 3), IntervalSet::from_range(2, 4)],
        );
        assert!(p.is_complete());
        assert!(!p.is_disjoint());
    }

    #[test]
    fn incomplete_partition_detected() {
        let p = Partition::new(
            5,
            vec![IntervalSet::from_range(0, 2), IntervalSet::from_range(3, 5)],
        );
        assert!(!p.is_complete());
        assert!(p.is_disjoint());
    }

    #[test]
    fn grid2_tiles_cover_grid() {
        let s = IndexSpace::grid2(8, 6);
        let p = Partition::grid2_tiles(&s, 2, 3);
        assert_eq!(p.num_colors(), 6);
        assert!(p.is_complete());
        assert!(p.is_disjoint());
        // Top-left tile holds rows 0..4, cols 0..2.
        let tl = p.piece(0);
        assert!(tl.contains(s.linearize2(Point2 { x: 0, y: 0 })));
        assert!(tl.contains(s.linearize2(Point2 { x: 3, y: 1 })));
        assert!(!tl.contains(s.linearize2(Point2 { x: 0, y: 2 })));
        assert!(!tl.contains(s.linearize2(Point2 { x: 4, y: 0 })));
    }

    #[test]
    fn grid3_slabs_cover_grid() {
        let s = IndexSpace::grid3(8, 4, 4);
        let p = Partition::grid3_slabs(&s, 4);
        assert_eq!(p.num_colors(), 4);
        assert!(p.is_complete());
        assert!(p.is_disjoint());
        assert_eq!(p.piece(0), &IntervalSet::from_range(0, 32));
    }

    #[test]
    fn refinement_and_algebra() {
        let coarse = Partition::equal_blocks(12, 2);
        let mut halves = Vec::new();
        for piece in coarse.pieces() {
            let sub = piece.split_equal(2);
            halves.push(sub[0].clone());
        }
        let fine = Partition::new(12, halves);
        assert!(coarse.refines(&fine));
        assert!(!fine.refines(&coarse));
        let i = coarse.intersect(&fine);
        assert_eq!(i.piece(0), fine.piece(0));
        let u = coarse.union(&fine);
        assert_eq!(u.piece(0), coarse.piece(0));
    }

    #[test]
    #[should_panic(expected = "exceeds space size")]
    fn out_of_space_piece_rejected() {
        Partition::new(4, vec![IntervalSet::from_range(0, 5)]);
    }

    #[test]
    fn cyclic_partition_round_robins() {
        let p = Partition::cyclic(10, 3);
        assert!(p.is_complete() && p.is_disjoint());
        assert_eq!(
            p.piece(0).iter_points().collect::<Vec<_>>(),
            vec![0, 3, 6, 9]
        );
        assert_eq!(p.piece(1).iter_points().collect::<Vec<_>>(), vec![1, 4, 7]);
        assert_eq!(p.piece(2).iter_points().collect::<Vec<_>>(), vec![2, 5, 8]);
    }

    #[test]
    fn block_cyclic_deals_blocks() {
        let p = Partition::block_cyclic(14, 2, 3);
        assert!(p.is_complete() && p.is_disjoint());
        // Color 0: blocks [0,3), [6,9), [12,14).
        assert_eq!(p.piece(0).runs().len(), 3);
        assert!(p.piece(0).contains(0) && p.piece(0).contains(7) && p.piece(0).contains(13));
        assert!(p.piece(1).contains(3) && p.piece(1).contains(9));
    }

    #[test]
    fn block_cyclic_with_more_colors_than_blocks() {
        let p = Partition::block_cyclic(4, 8, 2);
        assert!(p.is_complete() && p.is_disjoint());
        assert_eq!(p.num_colors(), 8);
        assert_eq!(p.piece(0).cardinality(), 2);
        assert_eq!(p.piece(1).cardinality(), 2);
        assert!(p.piece(2).is_empty());
    }
}
