#![warn(missing_docs)]
//! # kdr-index
//!
//! Index spaces, partitions, and *dependent partitioning* for the
//! KDRSolvers framework.
//!
//! KDRSolvers describes a sparse linear system through three index
//! spaces — the kernel space `K` (positions of stored nonzeros), the
//! domain space `D` (coordinates of the solution vector) and the range
//! space `R` (coordinates of the right-hand side) — connected by a
//! *column relation* `col ⊆ K × D` and a *row relation* `row ⊆ K × R`.
//!
//! This crate provides the machinery below those ideas:
//!
//! * [`IntervalSet`] — a compact sorted-run representation of a subset
//!   of an index space, the currency of every partitioning operation.
//! * [`IndexSpace`] — a finite set of identifiers, optionally carrying
//!   1-D/2-D/3-D grid structure ([`Shape`]).
//! * [`Partition`] — a coloring `C -> 2^I` of an index space, with
//!   completeness/disjointness queries and common constructors
//!   (equal blocks, grid rows, 2-D/3-D tiles).
//! * [`Relation`] — an abstract binary relation between two index
//!   spaces supporting `image` and `preimage` of subsets; concrete
//!   relations cover every storage format in the paper's Figure 3
//!   (array-backed functions, row-pointer interval maps, implicit
//!   Cartesian projections, diagonal offsets).
//! * [`project()`] / [`project_back`] — the universal co-partitioning
//!   operators: the image/preimage of an entire partition along a
//!   relation, i.e. the `col`/`row` projections of the paper's §3.1.
//!
//! Everything here is storage-format agnostic: formats in `kdr-sparse`
//! merely *produce* relations, and all co-partitioning logic is shared.

pub mod interval;
pub mod partition;
pub mod point;
pub mod project;
pub mod relation;
pub mod space;

pub use interval::IntervalSet;
pub use partition::Partition;
pub use point::{Point2, Point3, Rect1, Rect2, Rect3};
pub use project::{project, project_back, spmv_closure, square_closure};
pub use relation::{
    ComposedRelation, DiagonalRelation, FnRelation, IdentityRelation, IntervalMapRelation,
    ProjectionAxis, ProjectionRelation, Relation, TransposedRelation, UnionRelation,
};
pub use space::{IndexSpace, Shape};
