//! Randomized stress tests: the runtime's parallel execution of an
//! arbitrary task stream must be observationally identical to running
//! the same stream sequentially in submission order, because
//! dependence analysis serializes every conflicting pair.

use kdr_index::IntervalSet;
use kdr_runtime::{Buffer, Runtime, TaskBuilder};
use proptest::prelude::*;

/// One randomly generated task: reads a subset of one buffer, writes
/// a subset of another (possibly the same), combining elements with a
/// deterministic function.
#[derive(Clone, Debug)]
struct Op {
    src: usize,
    dst: usize,
    src_lo: u64,
    dst_lo: u64,
    len: u64,
    scale: i64,
}

const NBUF: usize = 3;
const BUFLEN: u64 = 32;

fn arb_op() -> impl Strategy<Value = Op> {
    (
        0..NBUF,
        0..NBUF,
        0..BUFLEN - 8,
        0..BUFLEN - 8,
        1..8u64,
        -3i64..4,
    )
        .prop_map(|(src, dst, src_lo, dst_lo, len, scale)| Op {
            src,
            dst,
            src_lo,
            dst_lo,
            len,
            scale,
        })
}

/// Sequential reference semantics.
fn run_sequential(ops: &[Op]) -> Vec<Vec<i64>> {
    let mut bufs: Vec<Vec<i64>> = (0..NBUF)
        .map(|b| (0..BUFLEN).map(|i| (b as i64 + 1) * i as i64).collect())
        .collect();
    for op in ops {
        for k in 0..op.len {
            let v = bufs[op.src][(op.src_lo + k) as usize];
            let d = &mut bufs[op.dst][(op.dst_lo + k) as usize];
            *d = d.wrapping_add(v.wrapping_mul(op.scale));
        }
    }
    bufs
}

/// The same ops through the runtime, with per-op subset declarations.
fn run_parallel(ops: &[Op], workers: usize) -> Vec<Vec<i64>> {
    let rt = Runtime::new(workers);
    let bufs: Vec<Buffer<i64>> = (0..NBUF)
        .map(|b| Buffer::from_vec((0..BUFLEN).map(|i| (b as i64 + 1) * i as i64).collect()))
        .collect();
    for op in ops.iter().cloned() {
        let src_set = IntervalSet::from_range(op.src_lo, op.src_lo + op.len);
        let dst_set = IntervalSet::from_range(op.dst_lo, op.dst_lo + op.len);
        let tb = TaskBuilder::new("op")
            .read(&bufs[op.src], src_set)
            .write(&bufs[op.dst], dst_set)
            .body(move |ctx| {
                let src = ctx.read::<i64>(0);
                let dst = ctx.write::<i64>(1);
                for k in 0..op.len {
                    let v = src.get((op.src_lo + k) as usize);
                    let i = (op.dst_lo + k) as usize;
                    dst.set(i, dst.get(i).wrapping_add(v.wrapping_mul(op.scale)));
                }
            });
        rt.submit(tb).unwrap();
    }
    rt.fence().unwrap();
    bufs.iter().map(|b| b.snapshot()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parallel_matches_sequential(ops in prop::collection::vec(arb_op(), 1..60), workers in 1usize..8) {
        // Ops where src and dst buffers are equal and ranges overlap
        // would make a single task read and write through different
        // requirements of the same buffer with a stale view; declare
        // such tasks write-only over the union instead (skip for
        // simplicity — they are covered by the same-buffer test below).
        let ops: Vec<Op> = ops.into_iter().filter(|o| o.src != o.dst).collect();
        prop_assume!(!ops.is_empty());
        let expect = run_sequential(&ops);
        let got = run_parallel(&ops, workers);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn replay_matches_analysis(ops in prop::collection::vec(arb_op(), 1..25)) {
        let ops: Vec<Op> = ops.into_iter().filter(|o| o.src != o.dst).collect();
        prop_assume!(!ops.is_empty());
        // Two iterations of the same op stream: once analyzed + once
        // replayed must equal two analyzed iterations.
        let twice: Vec<Op> = ops.iter().chain(ops.iter()).cloned().collect();
        let expect = run_sequential(&twice);

        let rt = Runtime::new(4);
        let bufs: Vec<Buffer<i64>> = (0..NBUF)
            .map(|b| Buffer::from_vec((0..BUFLEN).map(|i| (b as i64 + 1) * i as i64).collect()))
            .collect();
        let make = |op: Op, bufs: &[Buffer<i64>]| {
            let src_set = IntervalSet::from_range(op.src_lo, op.src_lo + op.len);
            let dst_set = IntervalSet::from_range(op.dst_lo, op.dst_lo + op.len);
            TaskBuilder::new("op")
                .read(&bufs[op.src], src_set)
                .write(&bufs[op.dst], dst_set)
                .body(move |ctx| {
                    let src = ctx.read::<i64>(0);
                    let dst = ctx.write::<i64>(1);
                    for k in 0..op.len {
                        let v = src.get((op.src_lo + k) as usize);
                        let i = (op.dst_lo + k) as usize;
                        dst.set(i, dst.get(i).wrapping_add(v.wrapping_mul(op.scale)));
                    }
                })
        };
        rt.begin_trace().unwrap();
        for op in ops.iter().cloned() {
            rt.submit(make(op, &bufs)).unwrap();
        }
        let trace = rt.end_trace().unwrap();
        rt.replay(&trace, ops.iter().cloned().map(|op| make(op, &bufs)).collect()).unwrap();
        rt.fence().unwrap();
        let got: Vec<Vec<i64>> = bufs.iter().map(|b| b.snapshot()).collect();
        prop_assert_eq!(got, expect);
    }
}

#[test]
fn same_buffer_read_modify_write_chain() {
    // Chained updates within one buffer through write privilege only.
    let rt = Runtime::new(8);
    let b = Buffer::filled(16, 1i64);
    for step in 0..50 {
        let lo = (step % 4) * 4;
        rt.submit(
            TaskBuilder::new("rmw")
                .write(&b, IntervalSet::from_range(lo, lo + 4))
                .body(move |ctx| {
                    let w = ctx.write::<i64>(0);
                    for i in lo as usize..lo as usize + 4 {
                        w.set(i, w.get(i) + 1);
                    }
                }),
        )
        .unwrap();
    }
    rt.fence().unwrap();
    let snap = b.snapshot();
    // Each quarter received ceil/floor(50/4) increments: steps 0..50
    // with step % 4 == q occur 13, 13, 12, 12 times.
    assert_eq!(snap[0], 1 + 13);
    assert_eq!(snap[4], 1 + 13);
    assert_eq!(snap[8], 1 + 12);
    assert_eq!(snap[12], 1 + 12);
}
