//! The DAG executor: a work-stealing worker pool that runs tasks as
//! their dependences resolve.
//!
//! Tasks arrive with a precomputed dependence list (from the analyzer
//! or from a trace replay). Ready tasks are routed by an optional
//! [`Mapper`]: a task mapped to worker `w` goes to
//! `w`'s own queue (processor affinity — data lives where its piece's
//! tasks run); unmapped tasks go to a global injector. Each worker
//! prefers its own queue, then the injector, then steals from peers,
//! so affinity is a locality *hint*, never a throughput constraint.
//! A fence blocks until no task is outstanding. Execution is *eager* —
//! there is no separate "flush" step — so blocking on a
//! [`Future`](crate::Future) from the application thread always makes
//! progress.
//!
//! # Fault tolerance
//!
//! Task bodies run under `catch_unwind`. A panic does not abort the
//! process: the task completes as *poisoned*, its transitive
//! successors are retired without running (their bodies are dropped,
//! which poisons any [`Promise`](crate::Promise) they captured), and
//! the first failure is recorded as a [`TaskError`] that
//! `Executor::fence` keeps returning until
//! `Executor::take_failure` clears it. A seeded `FaultInjector`
//! can plant deterministic panic / stall / corrupted-write faults at
//! submission time, and an optional watchdog thread flags tasks that
//! exceed a configurable stall budget. All of it is pay-as-you-go:
//! with no plan armed and no budget set, the fault layer costs one
//! relaxed atomic load on the submit path and one on the execute
//! path.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::queue::SegQueue;
use parking_lot::{Condvar, Mutex};

use crate::events::{EventSink, TaskOutcome, DEFAULT_RING_CAPACITY};
use crate::fault::{FaultInjector, FaultKind, FaultPlan, TaskError, TaskErrorKind};
use crate::mapper::Mapper;
use crate::task::{Requirement, TaskContext, TaskId, TaskMetaLite};

pub(crate) struct Runnable {
    pub id: TaskId,
    /// Kernel name; keys the per-kernel execution counts.
    pub name: &'static str,
    pub body: Box<dyn FnOnce(&TaskContext) + Send>,
    pub reqs: Arc<Vec<Requirement>>,
    /// Scheduling metadata (mapper input).
    pub meta: TaskMetaLite,
    /// Event-log timestamp: when this task became ready (all
    /// predecessors retired). Zero while event logging is off.
    pub ready_ns: u64,
    /// Fault planted by the injector at submission, if any.
    pub fault: Option<FaultKind>,
    /// Born poisoned: a dependence named a task that had already
    /// retired failed, so the body must be dropped, not run.
    pub poisoned: bool,
}

struct Pending {
    unmet: usize,
    /// Set when a (transitive) predecessor failed: once ready, the
    /// task is retired without running instead of enqueued.
    poisoned: bool,
    runnable: Option<Runnable>,
}

#[derive(Default)]
struct DepState {
    pending: HashMap<TaskId, Pending>,
    successors: HashMap<TaskId, Vec<TaskId>>,
    live: HashSet<TaskId>,
    outstanding: usize,
    shutdown: bool,
    /// First task failure since the last [`Executor::take_failure`];
    /// fences keep reporting it until taken.
    failure: Option<TaskError>,
    /// Tasks that retired failed or poisoned since the last
    /// [`Executor::take_failure`]. A newly submitted task naming one
    /// of these as a dependence is born poisoned — without this,
    /// poison would leak whenever a predecessor finished (panicked)
    /// before its dependent was submitted. Cleared with the failure.
    poisoned_retired: HashSet<TaskId>,
    /// Executed-task tallies keyed by kernel name, bumped under this
    /// lock on the completion path (which already holds it).
    counts: BTreeMap<&'static str, u64>,
    /// Accumulated execution nanoseconds per kernel name; only grows
    /// while event logging or per-kernel timing is enabled (timestamps
    /// are zero otherwise, contributing nothing).
    exec_ns: BTreeMap<&'static str, u64>,
}

/// Per-worker watchdog slot: the task currently executing (id + 1;
/// 0 = idle) and when it started. Published only while a stall budget
/// is armed.
struct WatchSlot {
    task: AtomicU64,
    since_ns: AtomicU64,
}

struct ExecShared {
    state: Mutex<DepState>,
    /// Routing policy; consulted at submit time *and* when a
    /// completion releases successors, so affinity survives into
    /// steady state instead of decaying to the injector.
    mapper: Option<Arc<dyn Mapper>>,
    /// Unpinned ready tasks.
    injector: SegQueue<Runnable>,
    /// Per-worker affinity queues.
    pinned: Vec<SegQueue<Runnable>>,
    /// Express lane for unpinned tasks with `priority > 0`; drained
    /// before every normal-lane queue.
    injector_hi: SegQueue<Runnable>,
    /// Express-lane affinity queues, one per worker.
    pinned_hi: Vec<SegQueue<Runnable>>,
    /// Parking for idle workers.
    sleep_lock: Mutex<()>,
    wake_cv: Condvar,
    idle_cv: Condvar,
    executed: AtomicU64,
    stolen: AtomicU64,
    sleepers: AtomicUsize,
    /// Structured event log (spans + latency histograms). Checked
    /// with one relaxed load per task when disabled.
    events: EventSink,
    /// Deterministic fault injector. Checked with one relaxed load
    /// per task at submission when disarmed.
    faults: FaultInjector,
    /// Per-kernel execution timing without the full event log: when
    /// set, workers stamp task start/end even with logging off, and
    /// retirement accumulates per-kernel-name execute nanoseconds
    /// (the cost catalogue's online observation feed). One relaxed
    /// load per task when off.
    kernel_timing: AtomicBool,
    /// Watchdog stall budget in nanoseconds (0 = watchdog off).
    stall_budget_ns: AtomicU64,
    /// One slot per worker for the watchdog to observe.
    watch: Vec<WatchSlot>,
    /// Task bodies that panicked.
    task_failures: AtomicU64,
    /// Tasks retired-as-poisoned without running.
    tasks_poisoned: AtomicU64,
    /// Tasks the watchdog flagged as exceeding the stall budget.
    tasks_stalled: AtomicU64,
}

pub(crate) struct Executor {
    shared: Arc<ExecShared>,
    workers: Vec<JoinHandle<()>>,
    watchdog: Mutex<Option<JoinHandle<()>>>,
}

impl Executor {
    pub fn new(workers: usize) -> Self {
        Self::with_mapper(workers, None)
    }

    /// Create with an optional mapper routing tasks to workers.
    pub fn with_mapper(workers: usize, mapper: Option<Arc<dyn Mapper>>) -> Self {
        Self::with_config(workers, mapper, DEFAULT_RING_CAPACITY)
    }

    /// Create with a mapper and an explicit per-worker event-ring
    /// capacity (records retained between event-log drains).
    pub fn with_config(
        workers: usize,
        mapper: Option<Arc<dyn Mapper>>,
        ring_capacity: usize,
    ) -> Self {
        assert!(workers > 0, "executor needs at least one worker");
        let shared = Arc::new(ExecShared {
            state: Mutex::new(DepState::default()),
            mapper,
            injector: SegQueue::new(),
            pinned: (0..workers).map(|_| SegQueue::new()).collect(),
            injector_hi: SegQueue::new(),
            pinned_hi: (0..workers).map(|_| SegQueue::new()).collect(),
            sleep_lock: Mutex::new(()),
            wake_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            executed: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
            sleepers: AtomicUsize::new(0),
            events: EventSink::new(workers, ring_capacity),
            faults: FaultInjector::new(),
            kernel_timing: AtomicBool::new(false),
            stall_budget_ns: AtomicU64::new(0),
            watch: (0..workers)
                .map(|_| WatchSlot {
                    task: AtomicU64::new(0),
                    since_ns: AtomicU64::new(0),
                })
                .collect(),
            task_failures: AtomicU64::new(0),
            tasks_poisoned: AtomicU64::new(0),
            tasks_stalled: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("kdr-worker-{w}"))
                    .spawn(move || worker_loop(shared, w))
                    .expect("failed to spawn worker")
            })
            .collect();
        Executor {
            shared,
            workers: handles,
            watchdog: Mutex::new(None),
        }
    }

    fn enqueue(&self, mut runnable: Runnable) {
        if self.shared.events.enabled() {
            runnable.ready_ns = self.shared.events.now_ns();
        }
        route(&self.shared, runnable);
        // Wake one parked worker if any.
        if self.shared.sleepers.load(Ordering::Acquire) > 0 {
            let _g = self.shared.sleep_lock.lock();
            self.shared.wake_cv.notify_one();
        }
    }

    /// Enqueue a task whose dependence list has already been computed.
    /// Dependences on tasks that have already finished are ignored.
    pub fn submit(&self, mut runnable: Runnable, deps: &[TaskId]) {
        // Fault decisions happen here, at submission: the runtime
        // serializes submissions, so a seeded plan reproduces the
        // same injections regardless of worker interleaving.
        runnable.fault = self.shared.faults.decide(runnable.name);
        let mut st = self.shared.state.lock();
        let id = runnable.id;
        let live_deps: Vec<TaskId> = deps
            .iter()
            .copied()
            .filter(|d| st.live.contains(d))
            .collect();
        // A dependence on a task that already retired failed poisons
        // this one at birth; live failed predecessors are handled by
        // the retirement cascade instead.
        let born_poisoned =
            !st.poisoned_retired.is_empty() && deps.iter().any(|d| st.poisoned_retired.contains(d));
        st.live.insert(id);
        st.outstanding += 1;
        if live_deps.is_empty() {
            runnable.poisoned = born_poisoned;
            drop(st);
            self.enqueue(runnable);
        } else {
            for &d in &live_deps {
                st.successors.entry(d).or_default().push(id);
            }
            st.pending.insert(
                id,
                Pending {
                    unmet: live_deps.len(),
                    poisoned: born_poisoned,
                    runnable: Some(runnable),
                },
            );
        }
    }

    /// Block until every submitted task has finished. If any task
    /// failed since the last [`Executor::take_failure`], returns the
    /// first failure (and keeps returning it until taken).
    pub fn fence(&self) -> Result<(), TaskError> {
        let mut st = self.shared.state.lock();
        while st.outstanding > 0 {
            self.shared.idle_cv.wait(&mut st);
        }
        match &st.failure {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    /// Remove and return the recorded failure, re-arming the executor
    /// for further work (subsequent fences return `Ok` again) and
    /// ending submit-time poison propagation from the failed epoch.
    pub fn take_failure(&self) -> Option<TaskError> {
        let mut st = self.shared.state.lock();
        st.poisoned_retired.clear();
        st.failure.take()
    }

    /// Arm (or disarm, with `None`) the deterministic fault injector.
    pub fn set_fault_plan(&self, plan: Option<FaultPlan>) {
        self.shared.faults.install(plan);
    }

    /// Set (or clear, with `None`) the watchdog stall budget. The
    /// watchdog thread starts on the first budget and exits when the
    /// budget is cleared.
    pub fn set_stall_budget(&self, budget: Option<Duration>) {
        let ns = budget.map(|d| d.as_nanos() as u64).unwrap_or(0);
        self.shared.stall_budget_ns.store(ns, Ordering::Relaxed);
        let mut guard = self.watchdog.lock();
        if ns == 0 {
            if let Some(h) = guard.take() {
                let _ = h.join();
            }
        } else if guard.is_none() {
            let shared = Arc::clone(&self.shared);
            *guard = Some(
                std::thread::Builder::new()
                    .name("kdr-watchdog".into())
                    .spawn(move || watchdog_loop(shared))
                    .expect("failed to spawn watchdog"),
            );
        }
    }

    /// Total task bodies executed.
    pub fn executed(&self) -> u64 {
        self.shared.executed.load(Ordering::Relaxed)
    }

    /// Tasks a worker executed from another worker's affinity queue.
    pub fn stolen(&self) -> u64 {
        self.shared.stolen.load(Ordering::Relaxed)
    }

    /// Task bodies that panicked (caught, not process aborts).
    pub fn task_failures(&self) -> u64 {
        self.shared.task_failures.load(Ordering::Relaxed)
    }

    /// Tasks retired-as-poisoned without running.
    pub fn tasks_poisoned(&self) -> u64 {
        self.shared.tasks_poisoned.load(Ordering::Relaxed)
    }

    /// Tasks the watchdog flagged for exceeding the stall budget.
    pub fn tasks_stalled(&self) -> u64 {
        self.shared.tasks_stalled.load(Ordering::Relaxed)
    }

    /// Faults planted by the injector.
    pub fn faults_injected(&self) -> u64 {
        self.shared.faults.injected()
    }

    /// Number of worker threads.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Tasks submitted but not yet retired. A snapshot: racing
    /// submitters can change it immediately, so callers needing a
    /// stable answer must hold their own serialization (the runtime's
    /// state lock serializes submissions).
    pub fn outstanding(&self) -> usize {
        self.shared.state.lock().outstanding
    }

    /// Executed-task tallies keyed by kernel name.
    pub fn task_counts(&self) -> BTreeMap<&'static str, u64> {
        self.shared.state.lock().counts.clone()
    }

    /// Accumulated execution nanoseconds per kernel name (only grows
    /// while event logging or per-kernel timing is on).
    pub fn task_execute_ns(&self) -> BTreeMap<&'static str, u64> {
        self.shared.state.lock().exec_ns.clone()
    }

    /// Enable or disable per-kernel execution timing independently of
    /// the event log.
    pub fn set_kernel_timing(&self, on: bool) {
        self.shared.kernel_timing.store(on, Ordering::Relaxed);
    }

    /// The executor's event sink (spans, histograms, enable flag).
    pub fn events(&self) -> &EventSink {
        &self.shared.events
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
        }
        {
            let _g = self.shared.sleep_lock.lock();
            self.shared.wake_cv.notify_all();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.shared.stall_budget_ns.store(0, Ordering::Relaxed);
        if let Some(h) = self.watchdog.lock().take() {
            let _ = h.join();
        }
    }
}

/// Push a ready runnable to its mapped worker's affinity queue, or to
/// the injector when no mapper is installed. Tasks with `priority > 0`
/// go to the express-lane twins of those queues instead.
fn route(shared: &ExecShared, runnable: Runnable) {
    let express = runnable.meta.priority > 0;
    match &shared.mapper {
        Some(m) => {
            let w = m.map_task(&runnable.meta.to_meta()) % shared.pinned.len();
            if express {
                shared.pinned_hi[w].push(runnable);
            } else {
                shared.pinned[w].push(runnable);
            }
        }
        None if express => shared.injector_hi.push(runnable),
        None => shared.injector.push(runnable),
    }
}

/// Pop the next runnable for worker `me`: the express lanes first
/// (own queue, injector, then steal), then the same order through the
/// normal lanes.
fn find_work(shared: &ExecShared, me: usize) -> Option<(Runnable, bool)> {
    let n = shared.pinned.len();
    if let Some(r) = shared.pinned_hi[me].pop() {
        return Some((r, false));
    }
    if let Some(r) = shared.injector_hi.pop() {
        return Some((r, false));
    }
    for off in 1..n {
        if let Some(r) = shared.pinned_hi[(me + off) % n].pop() {
            return Some((r, true));
        }
    }
    if let Some(r) = shared.pinned[me].pop() {
        return Some((r, false));
    }
    if let Some(r) = shared.injector.pop() {
        return Some((r, false));
    }
    for off in 1..n {
        if let Some(r) = shared.pinned[(me + off) % n].pop() {
            return Some((r, true));
        }
    }
    None
}

/// Extract a readable message from a `catch_unwind` payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One retirement to process under the state lock: either a task a
/// worker just finished (completed or panicked) or a poisoned task
/// being retired without running.
struct Retirement {
    id: TaskId,
    name: &'static str,
    outcome: TaskOutcome,
    ready_ns: u64,
    start_ns: u64,
    end_ns: u64,
}

/// Retire `first` and cascade poison through the DAG: successors of a
/// failed task are marked poisoned; any that become ready while
/// poisoned are retired in turn (their bodies dropped, not run, which
/// poisons any promise the body captured). Runs entirely under the
/// state lock, so fences observing `outstanding == 0` see every span
/// and counter of the cascade.
fn retire_locked(
    shared: &ExecShared,
    st: &mut DepState,
    first: Retirement,
    ready: &mut Vec<Runnable>,
    me: usize,
    logging: bool,
) {
    let mut work = vec![first];
    while let Some(rec) = work.pop() {
        let poison = rec.outcome != TaskOutcome::Completed;
        if poison {
            st.poisoned_retired.insert(rec.id);
        }
        if let Some(succs) = st.successors.remove(&rec.id) {
            for s in succs {
                let done = {
                    let p = st.pending.get_mut(&s).expect("successor must be pending");
                    if poison {
                        p.poisoned = true;
                    }
                    p.unmet -= 1;
                    p.unmet == 0
                };
                if done {
                    let p = st.pending.remove(&s).unwrap();
                    let r = p.runnable.expect("pending task must hold its runnable");
                    if p.poisoned {
                        shared.tasks_poisoned.fetch_add(1, Ordering::Relaxed);
                        let now = if logging { shared.events.now_ns() } else { 0 };
                        work.push(Retirement {
                            id: r.id,
                            name: r.name,
                            outcome: TaskOutcome::Poisoned,
                            ready_ns: now,
                            start_ns: now,
                            end_ns: now,
                        });
                        // Dropping the runnable drops its body; any
                        // captured Promise poisons its Future here.
                        drop(r);
                    } else {
                        ready.push(r);
                    }
                }
            }
        }
        st.live.remove(&rec.id);
        if rec.outcome != TaskOutcome::Poisoned {
            *st.counts.entry(rec.name).or_insert(0) += 1;
        }
        if rec.outcome == TaskOutcome::Completed {
            // Zero when neither logging nor kernel timing stamped the
            // task, so the map stays cost-free on the disabled path.
            let dt = rec.end_ns.saturating_sub(rec.start_ns);
            if dt > 0 {
                *st.exec_ns.entry(rec.name).or_insert(0) += dt;
            }
        }
        // Record the span while the task still counts as
        // outstanding: a fence observing `outstanding == 0` then
        // implies every executed task's span has landed, so
        // fence-then-snapshot sequences (take_spans, metrics)
        // never see a straggler.
        if logging {
            let retire_ns = shared.events.now_ns();
            shared.events.record_exec(
                me,
                rec.id,
                rec.ready_ns,
                rec.start_ns,
                rec.end_ns,
                retire_ns,
                rec.outcome,
            );
        }
        st.outstanding -= 1;
        if st.outstanding == 0 {
            shared.idle_cv.notify_all();
        }
    }
}

fn worker_loop(shared: Arc<ExecShared>, me: usize) {
    loop {
        let runnable = loop {
            if let Some((r, was_steal)) = find_work(&shared, me) {
                if was_steal {
                    shared.stolen.fetch_add(1, Ordering::Relaxed);
                }
                break r;
            }
            // Park until woken; re-check shutdown under the state
            // lock to avoid missing the final wakeup.
            {
                let st = shared.state.lock();
                if st.shutdown {
                    return;
                }
            }
            shared.sleepers.fetch_add(1, Ordering::AcqRel);
            {
                let mut g = shared.sleep_lock.lock();
                // Double-check: work may have arrived between the
                // last probe and parking.
                if find_probe(&shared) {
                    shared.sleepers.fetch_sub(1, Ordering::AcqRel);
                    continue;
                }
                shared
                    .wake_cv
                    .wait_for(&mut g, std::time::Duration::from_millis(5));
            }
            shared.sleepers.fetch_sub(1, Ordering::AcqRel);
        };

        // One relaxed load each when logging and kernel timing are
        // off — the entire cost those layers add to the disabled
        // execute path.
        let logging = shared.events.enabled();
        let timing = logging || shared.kernel_timing.load(Ordering::Relaxed);
        if runnable.poisoned {
            // Born poisoned (a dependence had already retired
            // failed): retire without running. Dropping the body
            // poisons any Promise it captured.
            shared.tasks_poisoned.fetch_add(1, Ordering::Relaxed);
            let now = if logging { shared.events.now_ns() } else { 0 };
            let mut ready = Vec::new();
            {
                let mut st = shared.state.lock();
                retire_locked(
                    &shared,
                    &mut st,
                    Retirement {
                        id: runnable.id,
                        name: runnable.name,
                        outcome: TaskOutcome::Poisoned,
                        ready_ns: runnable.ready_ns,
                        start_ns: now,
                        end_ns: now,
                    },
                    &mut ready,
                    me,
                    logging,
                );
            }
            drop(runnable);
            release_ready(&shared, ready, logging);
            continue;
        }
        let ctx = TaskContext {
            reqs: Arc::clone(&runnable.reqs),
        };
        let start_ns = if timing { shared.events.now_ns() } else { 0 };
        // One relaxed load when the watchdog is off — the fault
        // layer's entire cost on the disabled execute path (the
        // injected-fault check below is a plain field read).
        let budget = shared.stall_budget_ns.load(Ordering::Relaxed);
        if budget > 0 {
            let slot = &shared.watch[me];
            slot.since_ns
                .store(shared.events.now_ns(), Ordering::Relaxed);
            slot.task.store(runnable.id + 1, Ordering::Release);
        }
        let fault = runnable.fault;
        let name = runnable.name;
        let body = runnable.body;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || match fault {
            Some(FaultKind::Panic) => {
                panic!("injected fault: forced panic in '{name}'")
            }
            Some(FaultKind::Stall { millis }) => {
                std::thread::sleep(Duration::from_millis(millis));
                body(&ctx)
            }
            _ => body(&ctx),
        }));
        if budget > 0 {
            shared.watch[me].task.store(0, Ordering::Release);
        }
        if result.is_ok() && fault == Some(FaultKind::CorruptWrite) {
            // Silent corruption: flip the first element of the first
            // writable requirement to an all-ones pattern (NaN for
            // floats) after the body completed normally.
            if let Some(req) = runnable
                .reqs
                .iter()
                .find(|r| r.privilege == crate::task::Privilege::Write)
            {
                (req.corrupt)(req);
            }
        }
        shared.executed.fetch_add(1, Ordering::Relaxed);
        let end_ns = if timing { shared.events.now_ns() } else { 0 };

        // Retire: record any failure, then release (or poison)
        // successors.
        let mut ready = Vec::new();
        {
            let mut st = shared.state.lock();
            let outcome = match &result {
                Ok(()) => TaskOutcome::Completed,
                Err(payload) => {
                    shared.task_failures.fetch_add(1, Ordering::Relaxed);
                    if st.failure.is_none() {
                        st.failure = Some(TaskError {
                            task: runnable.id,
                            name: runnable.name,
                            kind: TaskErrorKind::Panicked(panic_message(payload.as_ref())),
                        });
                    }
                    TaskOutcome::Panicked
                }
            };
            retire_locked(
                &shared,
                &mut st,
                Retirement {
                    id: runnable.id,
                    name: runnable.name,
                    outcome,
                    ready_ns: runnable.ready_ns,
                    start_ns,
                    end_ns,
                },
                &mut ready,
                me,
                logging,
            );
        }
        release_ready(&shared, ready, logging);
    }
}

/// Route tasks a retirement made ready and wake parked workers.
fn release_ready(shared: &Arc<ExecShared>, ready: Vec<Runnable>, logging: bool) {
    let n_ready = ready.len();
    let ready_stamp = if logging && n_ready > 0 {
        shared.events.now_ns()
    } else {
        0
    };
    for mut r in ready {
        // Successors route through the mapper too — otherwise
        // affinity only applies to tasks that were ready at
        // submit time, and steady-state iterations (where almost
        // every task waits on a predecessor) lose all locality.
        r.ready_ns = ready_stamp;
        route(shared, r);
    }
    if n_ready > 0 && shared.sleepers.load(Ordering::Acquire) > 0 {
        let _g = shared.sleep_lock.lock();
        for _ in 0..n_ready {
            shared.wake_cv.notify_one();
        }
    }
}

/// The watchdog: periodically scans every worker's watch slot and
/// counts tasks that have been executing longer than the stall
/// budget. Exits when the budget is cleared or the executor shuts
/// down. Each (worker, task) pair is flagged at most once.
fn watchdog_loop(shared: Arc<ExecShared>) {
    let mut flagged: HashMap<usize, u64> = HashMap::new();
    loop {
        let budget = shared.stall_budget_ns.load(Ordering::Relaxed);
        if budget == 0 {
            return;
        }
        {
            let st = shared.state.lock();
            if st.shutdown {
                return;
            }
        }
        let poll_ns = (budget / 4).clamp(1_000_000, 50_000_000);
        std::thread::sleep(Duration::from_nanos(poll_ns));
        let now = shared.events.now_ns();
        for (w, slot) in shared.watch.iter().enumerate() {
            let t = slot.task.load(Ordering::Acquire);
            if t == 0 {
                flagged.remove(&w);
                continue;
            }
            let since = slot.since_ns.load(Ordering::Relaxed);
            if now.saturating_sub(since) > budget && flagged.get(&w) != Some(&t) {
                flagged.insert(w, t);
                shared.tasks_stalled.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Cheap emptiness probe across all queues.
fn find_probe(shared: &ExecShared) -> bool {
    if !shared.injector.is_empty() || !shared.injector_hi.is_empty() {
        return true;
    }
    shared.pinned.iter().any(|q| !q.is_empty()) || shared.pinned_hi.iter().any(|q| !q.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultSpec, FireSchedule};
    use crate::mapper::RoundRobinMapper;

    fn runnable(id: TaskId, f: impl FnOnce() + Send + 'static) -> Runnable {
        Runnable {
            id,
            name: "test",
            body: Box::new(move |_| f()),
            reqs: Arc::new(Vec::new()),
            meta: TaskMetaLite::default(),
            ready_ns: 0,
            fault: None,
            poisoned: false,
        }
    }

    fn runnable_colored(id: TaskId, color: usize, f: impl FnOnce() + Send + 'static) -> Runnable {
        Runnable {
            id,
            name: "test",
            body: Box::new(move |_| f()),
            reqs: Arc::new(Vec::new()),
            meta: TaskMetaLite {
                color: Some(color),
                ..TaskMetaLite::default()
            },
            ready_ns: 0,
            fault: None,
            poisoned: false,
        }
    }

    #[test]
    fn runs_independent_tasks() {
        let ex = Executor::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for id in 0..32 {
            let c = Arc::clone(&counter);
            ex.submit(
                runnable(id, move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }),
                &[],
            );
        }
        ex.fence().unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 32);
        assert_eq!(ex.executed(), 32);
    }

    #[test]
    fn honors_dependences() {
        let ex = Executor::new(4);
        let log = Arc::new(Mutex::new(Vec::new()));
        for id in 0..10u64 {
            let l = Arc::clone(&log);
            let deps: Vec<TaskId> = if id == 0 { vec![] } else { vec![id - 1] };
            ex.submit(
                runnable(id, move || {
                    l.lock().push(id);
                }),
                &deps,
            );
        }
        ex.fence().unwrap();
        assert_eq!(*log.lock(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn diamond_dag() {
        let ex = Executor::new(4);
        let log = Arc::new(Mutex::new(Vec::new()));
        let push = |id: TaskId| {
            let l = Arc::clone(&log);
            runnable(id, move || {
                l.lock().push(id);
            })
        };
        ex.submit(push(0), &[]);
        ex.submit(push(1), &[0]);
        ex.submit(push(2), &[0]);
        ex.submit(push(3), &[1, 2]);
        ex.fence().unwrap();
        let order = log.lock().clone();
        assert_eq!(order.len(), 4);
        assert_eq!(order[0], 0);
        assert_eq!(order[3], 3);
    }

    #[test]
    fn deps_on_finished_tasks_ignored() {
        let ex = Executor::new(2);
        ex.submit(runnable(0, || {}), &[]);
        ex.fence().unwrap();
        ex.submit(runnable(1, || {}), &[0]);
        ex.fence().unwrap();
        assert_eq!(ex.executed(), 2);
    }

    #[test]
    fn fence_with_nothing_outstanding() {
        let ex = Executor::new(1);
        ex.fence().unwrap();
        ex.fence().unwrap();
    }

    #[test]
    fn task_panic_surfaces_as_error_not_abort() {
        let ex = Executor::new(2);
        ex.submit(runnable(0, || panic!("boom")), &[]);
        let err = ex.fence().unwrap_err();
        assert_eq!(err.task, 0);
        assert_eq!(err.kind, TaskErrorKind::Panicked("boom".into()));
        // The failure sticks until taken...
        assert!(ex.fence().is_err());
        let taken = ex.take_failure().unwrap();
        assert_eq!(taken.task, 0);
        // ...and the executor keeps working afterwards.
        ex.submit(runnable(1, || {}), &[]);
        ex.fence().unwrap();
        assert_eq!(ex.executed(), 2);
        assert_eq!(ex.task_failures(), 1);
    }

    #[test]
    fn poison_retires_transitive_successors_without_running() {
        let ex = Executor::new(4);
        let ran = Arc::new(AtomicUsize::new(0));
        ex.submit(runnable(0, || panic!("root failure")), &[]);
        for id in 1..=3u64 {
            let r = Arc::clone(&ran);
            ex.submit(
                runnable(id, move || {
                    r.fetch_add(1, Ordering::SeqCst);
                }),
                &[id - 1],
            );
        }
        // An independent task must still run.
        let r = Arc::clone(&ran);
        ex.submit(
            runnable(10, move || {
                r.fetch_add(100, Ordering::SeqCst);
            }),
            &[],
        );
        let err = ex.fence().unwrap_err();
        assert_eq!(err.task, 0);
        assert_eq!(ran.load(Ordering::SeqCst), 100, "successors must not run");
        assert_eq!(ex.tasks_poisoned(), 3);
        assert_eq!(ex.task_failures(), 1);
        // Only the root body and the independent task executed.
        assert_eq!(ex.executed(), 2);
    }

    #[test]
    fn poison_with_partially_failed_predecessors() {
        // A successor with one healthy and one failing predecessor
        // must still be retired-as-poisoned.
        let ex = Executor::new(2);
        let ran = Arc::new(AtomicUsize::new(0));
        ex.submit(runnable(0, || {}), &[]);
        ex.submit(runnable(1, || panic!("half")), &[]);
        let r = Arc::clone(&ran);
        ex.submit(
            runnable(2, move || {
                r.fetch_add(1, Ordering::SeqCst);
            }),
            &[0, 1],
        );
        assert!(ex.fence().is_err());
        assert_eq!(ran.load(Ordering::SeqCst), 0);
        assert_eq!(ex.tasks_poisoned(), 1);
    }

    #[test]
    fn injected_panic_is_deterministic() {
        let run = || {
            let ex = Executor::new(2);
            ex.set_fault_plan(Some(FaultPlan::seeded(7).with(FaultSpec {
                name_contains: "test".into(),
                kind: FaultKind::Panic,
                schedule: FireSchedule::Nth(5),
                max_fires: 0,
            })));
            for id in 0..10 {
                ex.submit(runnable(id, || {}), &[]);
            }
            let err = ex.fence().unwrap_err();
            (err.task, ex.faults_injected(), ex.task_failures())
        };
        assert_eq!(run(), (4, 1, 1), "5th submitted task must panic");
        assert_eq!(run(), run(), "identical plans give identical failures");
    }

    #[test]
    fn watchdog_flags_stalled_task() {
        let ex = Executor::new(2);
        ex.set_stall_budget(Some(Duration::from_millis(5)));
        ex.submit(
            runnable(0, || std::thread::sleep(Duration::from_millis(60))),
            &[],
        );
        ex.fence().unwrap();
        assert!(
            ex.tasks_stalled() >= 1,
            "a 60ms task must trip a 5ms stall budget"
        );
        ex.set_stall_budget(None);
        // Fast tasks after disarming don't add flags.
        ex.submit(runnable(1, || {}), &[]);
        ex.fence().unwrap();
        assert_eq!(ex.tasks_stalled(), 1);
    }

    #[test]
    fn mapper_affinity_prefers_pinned_worker() {
        // Two workers, tasks pinned by color; with balanced load, the
        // pinned worker should execute most of its own tasks. We only
        // assert functional completion plus *some* locality (stealing
        // keeps this from being deterministic).
        let ex = Executor::with_mapper(2, Some(Arc::new(RoundRobinMapper::new(2))));
        let hits: Arc<[AtomicUsize; 2]> = Arc::new([AtomicUsize::new(0), AtomicUsize::new(0)]);
        for id in 0..200u64 {
            let hits = Arc::clone(&hits);
            let color = (id % 2) as usize;
            ex.submit(
                runnable_colored(id, color, move || {
                    let name = std::thread::current().name().unwrap_or("").to_string();
                    let me: usize = name.trim_start_matches("kdr-worker-").parse().unwrap();
                    if me == color {
                        hits[color].fetch_add(1, Ordering::Relaxed);
                    }
                    // A little work so queues actually fill.
                    std::hint::black_box((0..100).sum::<u64>());
                }),
                &[],
            );
        }
        ex.fence().unwrap();
        assert_eq!(ex.executed(), 200);
        let local = hits[0].load(Ordering::Relaxed) + hits[1].load(Ordering::Relaxed);
        assert!(local > 0, "affinity must route at least some tasks home");
    }

    #[test]
    fn stress_many_waves() {
        let ex = Executor::new(8);
        let counter = Arc::new(AtomicUsize::new(0));
        let mut id = 0u64;
        for _wave in 0..50 {
            for _ in 0..20 {
                let c = Arc::clone(&counter);
                ex.submit(
                    runnable(id, move || {
                        c.fetch_add(1, Ordering::SeqCst);
                    }),
                    &[],
                );
                id += 1;
            }
            ex.fence().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 1000);
    }

    #[test]
    fn meta_lite_roundtrip() {
        let lite = TaskMetaLite {
            color: Some(3),
            flops: 10,
            bytes: 20,
            priority: 1,
        };
        let m = lite.to_meta();
        assert_eq!(m.color, Some(3));
        assert_eq!(m.flops, 10);
        assert_eq!(m.priority, 1);
    }

    #[test]
    fn express_lane_runs_before_normal_backlog() {
        // One worker, blocked on a gate while we build a backlog of
        // normal-lane tasks and one express task. When the gate
        // opens, the express task must run before any backlog task.
        let ex = Executor::new(1);
        let gate = Arc::new(AtomicUsize::new(0));
        let order = Arc::new(Mutex::new(Vec::new()));
        let g = Arc::clone(&gate);
        ex.submit(
            runnable(0, move || {
                while g.load(Ordering::Acquire) == 0 {
                    std::thread::yield_now();
                }
            }),
            &[],
        );
        for id in 1..=8u64 {
            let o = Arc::clone(&order);
            ex.submit(
                runnable(id, move || {
                    o.lock().push(id);
                }),
                &[],
            );
        }
        let o = Arc::clone(&order);
        let mut hi = runnable(99, move || {
            o.lock().push(99);
        });
        hi.meta.priority = 1;
        ex.submit(hi, &[]);
        gate.store(1, Ordering::Release);
        ex.fence().unwrap();
        let seen = order.lock().clone();
        assert_eq!(seen.len(), 9);
        assert_eq!(seen[0], 99, "express task must jump the backlog");
    }
}
