//! The DAG executor: a work-stealing worker pool that runs tasks as
//! their dependences resolve.
//!
//! Tasks arrive with a precomputed dependence list (from the analyzer
//! or from a trace replay). Ready tasks are routed by an optional
//! [`Mapper`]: a task mapped to worker `w` goes to
//! `w`'s own queue (processor affinity — data lives where its piece's
//! tasks run); unmapped tasks go to a global injector. Each worker
//! prefers its own queue, then the injector, then steals from peers,
//! so affinity is a locality *hint*, never a throughput constraint.
//! A fence blocks until no task is outstanding. Execution is *eager* —
//! there is no separate "flush" step — so blocking on a
//! [`Future`](crate::Future) from the application thread always makes
//! progress.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::queue::SegQueue;
use parking_lot::{Condvar, Mutex};

use crate::events::{EventSink, DEFAULT_RING_CAPACITY};
use crate::mapper::Mapper;
use crate::task::{Requirement, TaskContext, TaskId, TaskMetaLite};

pub(crate) struct Runnable {
    pub id: TaskId,
    /// Kernel name; keys the per-kernel execution counts.
    pub name: &'static str,
    pub body: Box<dyn FnOnce(&TaskContext) + Send>,
    pub reqs: Arc<Vec<Requirement>>,
    /// Scheduling metadata (mapper input).
    pub meta: TaskMetaLite,
    /// Event-log timestamp: when this task became ready (all
    /// predecessors retired). Zero while event logging is off.
    pub ready_ns: u64,
}

struct Pending {
    unmet: usize,
    runnable: Option<Runnable>,
}

#[derive(Default)]
struct DepState {
    pending: HashMap<TaskId, Pending>,
    successors: HashMap<TaskId, Vec<TaskId>>,
    live: HashSet<TaskId>,
    outstanding: usize,
    shutdown: bool,
    /// Executed-task tallies keyed by kernel name, bumped under this
    /// lock on the completion path (which already holds it).
    counts: BTreeMap<&'static str, u64>,
}

struct ExecShared {
    state: Mutex<DepState>,
    /// Routing policy; consulted at submit time *and* when a
    /// completion releases successors, so affinity survives into
    /// steady state instead of decaying to the injector.
    mapper: Option<Arc<dyn Mapper>>,
    /// Unpinned ready tasks.
    injector: SegQueue<Runnable>,
    /// Per-worker affinity queues.
    pinned: Vec<SegQueue<Runnable>>,
    /// Parking for idle workers.
    sleep_lock: Mutex<()>,
    wake_cv: Condvar,
    idle_cv: Condvar,
    executed: AtomicU64,
    stolen: AtomicU64,
    panicked: AtomicBool,
    sleepers: AtomicUsize,
    /// Structured event log (spans + latency histograms). Checked
    /// with one relaxed load per task when disabled.
    events: EventSink,
}

pub(crate) struct Executor {
    shared: Arc<ExecShared>,
    workers: Vec<JoinHandle<()>>,
}

impl Executor {
    pub fn new(workers: usize) -> Self {
        Self::with_mapper(workers, None)
    }

    /// Create with an optional mapper routing tasks to workers.
    pub fn with_mapper(workers: usize, mapper: Option<Arc<dyn Mapper>>) -> Self {
        Self::with_config(workers, mapper, DEFAULT_RING_CAPACITY)
    }

    /// Create with a mapper and an explicit per-worker event-ring
    /// capacity (records retained between event-log drains).
    pub fn with_config(
        workers: usize,
        mapper: Option<Arc<dyn Mapper>>,
        ring_capacity: usize,
    ) -> Self {
        assert!(workers > 0, "executor needs at least one worker");
        let shared = Arc::new(ExecShared {
            state: Mutex::new(DepState::default()),
            mapper,
            injector: SegQueue::new(),
            pinned: (0..workers).map(|_| SegQueue::new()).collect(),
            sleep_lock: Mutex::new(()),
            wake_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            executed: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
            panicked: AtomicBool::new(false),
            sleepers: AtomicUsize::new(0),
            events: EventSink::new(workers, ring_capacity),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("kdr-worker-{w}"))
                    .spawn(move || worker_loop(shared, w))
                    .expect("failed to spawn worker")
            })
            .collect();
        Executor {
            shared,
            workers: handles,
        }
    }

    fn enqueue(&self, mut runnable: Runnable) {
        if self.shared.events.enabled() {
            runnable.ready_ns = self.shared.events.now_ns();
        }
        route(&self.shared, runnable);
        // Wake one parked worker if any.
        if self.shared.sleepers.load(Ordering::Acquire) > 0 {
            let _g = self.shared.sleep_lock.lock();
            self.shared.wake_cv.notify_one();
        }
    }

    /// Enqueue a task whose dependence list has already been computed.
    /// Dependences on tasks that have already finished are ignored.
    pub fn submit(&self, runnable: Runnable, deps: &[TaskId]) {
        let mut st = self.shared.state.lock();
        let id = runnable.id;
        let live_deps: Vec<TaskId> = deps.iter().copied().filter(|d| st.live.contains(d)).collect();
        st.live.insert(id);
        st.outstanding += 1;
        if live_deps.is_empty() {
            drop(st);
            self.enqueue(runnable);
        } else {
            for &d in &live_deps {
                st.successors.entry(d).or_default().push(id);
            }
            st.pending.insert(
                id,
                Pending {
                    unmet: live_deps.len(),
                    runnable: Some(runnable),
                },
            );
        }
    }

    /// Block until every submitted task has finished. Panics if any
    /// task body panicked.
    pub fn fence(&self) {
        let mut st = self.shared.state.lock();
        while st.outstanding > 0 {
            self.shared.idle_cv.wait(&mut st);
        }
        drop(st);
        if self.shared.panicked.load(Ordering::Acquire) {
            panic!("a task body panicked during execution");
        }
    }

    /// Total task bodies executed.
    pub fn executed(&self) -> u64 {
        self.shared.executed.load(Ordering::Relaxed)
    }

    /// Tasks a worker executed from another worker's affinity queue.
    pub fn stolen(&self) -> u64 {
        self.shared.stolen.load(Ordering::Relaxed)
    }

    /// Number of worker threads.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Executed-task tallies keyed by kernel name.
    pub fn task_counts(&self) -> BTreeMap<&'static str, u64> {
        self.shared.state.lock().counts.clone()
    }

    /// The executor's event sink (spans, histograms, enable flag).
    pub fn events(&self) -> &EventSink {
        &self.shared.events
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
        }
        {
            let _g = self.shared.sleep_lock.lock();
            self.shared.wake_cv.notify_all();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Push a ready runnable to its mapped worker's affinity queue, or to
/// the injector when no mapper is installed.
fn route(shared: &ExecShared, runnable: Runnable) {
    match &shared.mapper {
        Some(m) => {
            let w = m.map_task(&runnable.meta.to_meta()) % shared.pinned.len();
            shared.pinned[w].push(runnable);
        }
        None => shared.injector.push(runnable),
    }
}

/// Pop the next runnable for worker `me`: own queue, injector, then
/// steal (round-robin from the next worker up).
fn find_work(shared: &ExecShared, me: usize) -> Option<(Runnable, bool)> {
    if let Some(r) = shared.pinned[me].pop() {
        return Some((r, false));
    }
    if let Some(r) = shared.injector.pop() {
        return Some((r, false));
    }
    let n = shared.pinned.len();
    for off in 1..n {
        if let Some(r) = shared.pinned[(me + off) % n].pop() {
            return Some((r, true));
        }
    }
    None
}

fn worker_loop(shared: Arc<ExecShared>, me: usize) {
    loop {
        let runnable = loop {
            if let Some((r, was_steal)) = find_work(&shared, me) {
                if was_steal {
                    shared.stolen.fetch_add(1, Ordering::Relaxed);
                }
                break r;
            }
            // Park until woken; re-check shutdown under the state
            // lock to avoid missing the final wakeup.
            {
                let st = shared.state.lock();
                if st.shutdown {
                    return;
                }
            }
            shared.sleepers.fetch_add(1, Ordering::AcqRel);
            {
                let mut g = shared.sleep_lock.lock();
                // Double-check: work may have arrived between the
                // last probe and parking.
                if find_probe(&shared) {
                    shared.sleepers.fetch_sub(1, Ordering::AcqRel);
                    continue;
                }
                shared
                    .wake_cv
                    .wait_for(&mut g, std::time::Duration::from_millis(5));
            }
            shared.sleepers.fetch_sub(1, Ordering::AcqRel);
        };

        let ctx = TaskContext {
            reqs: Arc::clone(&runnable.reqs),
        };
        // One relaxed load when logging is off — the entire cost the
        // event layer adds to the disabled execute path.
        let logging = shared.events.enabled();
        let start_ns = if logging { shared.events.now_ns() } else { 0 };
        let body = runnable.body;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || body(&ctx)));
        if result.is_err() {
            shared.panicked.store(true, Ordering::Release);
        }
        shared.executed.fetch_add(1, Ordering::Relaxed);
        let end_ns = if logging { shared.events.now_ns() } else { 0 };

        // Release successors.
        let mut ready = Vec::new();
        {
            let mut st = shared.state.lock();
            if let Some(succs) = st.successors.remove(&runnable.id) {
                for s in succs {
                    let done = {
                        let p = st.pending.get_mut(&s).expect("successor must be pending");
                        p.unmet -= 1;
                        p.unmet == 0
                    };
                    if done {
                        let p = st.pending.remove(&s).unwrap();
                        ready.push(p.runnable.unwrap());
                    }
                }
            }
            st.live.remove(&runnable.id);
            *st.counts.entry(runnable.name).or_insert(0) += 1;
            // Record the span while the task still counts as
            // outstanding: a fence observing `outstanding == 0` then
            // implies every executed task's span has landed, so
            // fence-then-snapshot sequences (take_spans, metrics)
            // never see a straggler.
            if logging {
                let retire_ns = shared.events.now_ns();
                shared
                    .events
                    .record_exec(me, runnable.id, runnable.ready_ns, start_ns, end_ns, retire_ns);
            }
            st.outstanding -= 1;
            if st.outstanding == 0 {
                shared.idle_cv.notify_all();
            }
        }
        let n_ready = ready.len();
        let ready_stamp = if logging && n_ready > 0 {
            shared.events.now_ns()
        } else {
            0
        };
        for mut r in ready {
            // Successors route through the mapper too — otherwise
            // affinity only applies to tasks that were ready at
            // submit time, and steady-state iterations (where almost
            // every task waits on a predecessor) lose all locality.
            r.ready_ns = ready_stamp;
            route(&shared, r);
        }
        if n_ready > 0 && shared.sleepers.load(Ordering::Acquire) > 0 {
            let _g = shared.sleep_lock.lock();
            for _ in 0..n_ready {
                shared.wake_cv.notify_one();
            }
        }
    }
}

/// Cheap emptiness probe across all queues.
fn find_probe(shared: &ExecShared) -> bool {
    if !shared.injector.is_empty() {
        return true;
    }
    shared.pinned.iter().any(|q| !q.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::RoundRobinMapper;

    fn runnable(id: TaskId, f: impl FnOnce() + Send + 'static) -> Runnable {
        Runnable {
            id,
            name: "test",
            body: Box::new(move |_| f()),
            reqs: Arc::new(Vec::new()),
            meta: TaskMetaLite::default(),
            ready_ns: 0,
        }
    }

    fn runnable_colored(id: TaskId, color: usize, f: impl FnOnce() + Send + 'static) -> Runnable {
        Runnable {
            id,
            name: "test",
            body: Box::new(move |_| f()),
            reqs: Arc::new(Vec::new()),
            meta: TaskMetaLite {
                color: Some(color),
                ..TaskMetaLite::default()
            },
            ready_ns: 0,
        }
    }

    #[test]
    fn runs_independent_tasks() {
        let ex = Executor::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for id in 0..32 {
            let c = Arc::clone(&counter);
            ex.submit(
                runnable(id, move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }),
                &[],
            );
        }
        ex.fence();
        assert_eq!(counter.load(Ordering::SeqCst), 32);
        assert_eq!(ex.executed(), 32);
    }

    #[test]
    fn honors_dependences() {
        let ex = Executor::new(4);
        let log = Arc::new(Mutex::new(Vec::new()));
        for id in 0..10u64 {
            let l = Arc::clone(&log);
            let deps: Vec<TaskId> = if id == 0 { vec![] } else { vec![id - 1] };
            ex.submit(
                runnable(id, move || {
                    l.lock().push(id);
                }),
                &deps,
            );
        }
        ex.fence();
        assert_eq!(*log.lock(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn diamond_dag() {
        let ex = Executor::new(4);
        let log = Arc::new(Mutex::new(Vec::new()));
        let push = |id: TaskId| {
            let l = Arc::clone(&log);
            runnable(id, move || {
                l.lock().push(id);
            })
        };
        ex.submit(push(0), &[]);
        ex.submit(push(1), &[0]);
        ex.submit(push(2), &[0]);
        ex.submit(push(3), &[1, 2]);
        ex.fence();
        let order = log.lock().clone();
        assert_eq!(order.len(), 4);
        assert_eq!(order[0], 0);
        assert_eq!(order[3], 3);
    }

    #[test]
    fn deps_on_finished_tasks_ignored() {
        let ex = Executor::new(2);
        ex.submit(runnable(0, || {}), &[]);
        ex.fence();
        ex.submit(runnable(1, || {}), &[0]);
        ex.fence();
        assert_eq!(ex.executed(), 2);
    }

    #[test]
    fn fence_with_nothing_outstanding() {
        let ex = Executor::new(1);
        ex.fence();
        ex.fence();
    }

    #[test]
    #[should_panic(expected = "task body panicked")]
    fn task_panic_surfaces_at_fence() {
        let ex = Executor::new(2);
        ex.submit(runnable(0, || panic!("boom")), &[]);
        ex.fence();
    }

    #[test]
    fn mapper_affinity_prefers_pinned_worker() {
        // Two workers, tasks pinned by color; with balanced load, the
        // pinned worker should execute most of its own tasks. We only
        // assert functional completion plus *some* locality (stealing
        // keeps this from being deterministic).
        let ex = Executor::with_mapper(2, Some(Arc::new(RoundRobinMapper::new(2))));
        let hits: Arc<[AtomicUsize; 2]> =
            Arc::new([AtomicUsize::new(0), AtomicUsize::new(0)]);
        for id in 0..200u64 {
            let hits = Arc::clone(&hits);
            let color = (id % 2) as usize;
            ex.submit(
                runnable_colored(id, color, move || {
                    let name = std::thread::current().name().unwrap_or("").to_string();
                    let me: usize = name.trim_start_matches("kdr-worker-").parse().unwrap();
                    if me == color {
                        hits[color].fetch_add(1, Ordering::Relaxed);
                    }
                    // A little work so queues actually fill.
                    std::hint::black_box((0..100).sum::<u64>());
                }),
                &[],
            );
        }
        ex.fence();
        assert_eq!(ex.executed(), 200);
        let local = hits[0].load(Ordering::Relaxed) + hits[1].load(Ordering::Relaxed);
        assert!(local > 0, "affinity must route at least some tasks home");
    }

    #[test]
    fn stress_many_waves() {
        let ex = Executor::new(8);
        let counter = Arc::new(AtomicUsize::new(0));
        let mut id = 0u64;
        for _wave in 0..50 {
            for _ in 0..20 {
                let c = Arc::clone(&counter);
                ex.submit(
                    runnable(id, move || {
                        c.fetch_add(1, Ordering::SeqCst);
                    }),
                    &[],
                );
                id += 1;
            }
            ex.fence();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 1000);
    }

    #[test]
    fn meta_lite_roundtrip() {
        let lite = TaskMetaLite {
            color: Some(3),
            flops: 10,
            bytes: 20,
        };
        let m = lite.to_meta();
        assert_eq!(m.color, Some(3));
        assert_eq!(m.flops, 10);
    }
}
