//! Scalar futures.
//!
//! Krylov iterations thread scalars (dot products, norms) between
//! tasks and the driving thread. A [`Future`] is a one-shot,
//! blocking-read cell: tasks fill it through the paired [`Promise`],
//! and `get()` parks the caller until the value arrives. Because the
//! executor runs continuously on worker threads, blocking on a future
//! from the application thread cannot deadlock.

use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

struct Shared<T> {
    slot: Mutex<Option<T>>,
    cv: Condvar,
}

/// The write end of a one-shot scalar channel.
pub struct Promise<T> {
    shared: Arc<Shared<T>>,
}

/// The read end of a one-shot scalar channel. Cloneable; every clone
/// observes the same value.
pub struct Future<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for Future<T> {
    fn clone(&self) -> Self {
        Future {
            shared: Arc::clone(&self.shared),
        }
    }
}

/// Create a connected promise/future pair.
pub fn promise<T>() -> (Promise<T>, Future<T>) {
    let shared = Arc::new(Shared {
        slot: Mutex::new(None),
        cv: Condvar::new(),
    });
    (
        Promise {
            shared: Arc::clone(&shared),
        },
        Future { shared },
    )
}

impl<T> Promise<T> {
    /// Fill the future. Panics if already filled.
    pub fn set(self, value: T) {
        let mut slot = self.shared.slot.lock();
        assert!(slot.is_none(), "promise set twice");
        *slot = Some(value);
        self.shared.cv.notify_all();
    }
}

impl<T: Clone> Future<T> {
    /// Block until the value arrives, then return a clone of it.
    pub fn get(&self) -> T {
        let mut slot = self.shared.slot.lock();
        while slot.is_none() {
            self.shared.cv.wait(&mut slot);
        }
        slot.as_ref().unwrap().clone()
    }

    /// Non-blocking probe.
    pub fn try_get(&self) -> Option<T> {
        self.shared.slot.lock().as_ref().cloned()
    }

    /// True once the promise has been fulfilled.
    pub fn is_ready(&self) -> bool {
        self.shared.slot.lock().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn set_then_get() {
        let (p, f) = promise();
        assert!(!f.is_ready());
        assert_eq!(f.try_get(), None);
        p.set(42u64);
        assert!(f.is_ready());
        assert_eq!(f.get(), 42);
        assert_eq!(f.clone().get(), 42);
    }

    #[test]
    fn get_blocks_until_set() {
        let (p, f) = promise();
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            p.set(7.5f64);
        });
        assert_eq!(f.get(), 7.5);
        h.join().unwrap();
    }

    #[test]
    #[should_panic(expected = "set twice")]
    fn double_set_panics() {
        let shared = Arc::new(Shared {
            slot: Mutex::new(Some(1u32)),
            cv: Condvar::new(),
        });
        let p = Promise { shared };
        p.set(2);
    }
}
