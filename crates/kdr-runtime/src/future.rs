//! Scalar futures.
//!
//! Krylov iterations thread scalars (dot products, norms) between
//! tasks and the driving thread. A [`Future`] is a one-shot,
//! blocking-read cell: tasks fill it through the paired [`Promise`],
//! and `get()` parks the caller until the value arrives. Because the
//! executor runs continuously on worker threads, blocking on a future
//! from the application thread cannot deadlock.
//!
//! # Poisoning
//!
//! If a promise is dropped without being fulfilled — the producing
//! task panicked, or was retired-as-poisoned because a predecessor
//! failed — the future is *poisoned*: [`Future::wait`] wakes every
//! blocked reader with [`PromiseDropped`] instead of parking them
//! forever. This is the piece that turns a mid-solve task failure
//! into a structured error rather than a deadlocked application
//! thread.

use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

enum Slot<T> {
    Empty,
    Ready(T),
    /// The promise was dropped unfulfilled (producing task failed).
    Poisoned,
}

struct Shared<T> {
    slot: Mutex<Slot<T>>,
    cv: Condvar,
}

/// Error returned by [`Future::wait`] when the paired [`Promise`] was
/// dropped without ever being set — the producing task panicked or
/// was retired-as-poisoned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PromiseDropped;

impl std::fmt::Display for PromiseDropped {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "promise dropped without a value (producing task failed)")
    }
}

impl std::error::Error for PromiseDropped {}

/// The write end of a one-shot scalar channel. Dropping it unfulfilled
/// poisons the paired [`Future`].
pub struct Promise<T> {
    shared: Arc<Shared<T>>,
    fulfilled: bool,
}

/// The read end of a one-shot scalar channel. Cloneable; every clone
/// observes the same value.
pub struct Future<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for Future<T> {
    fn clone(&self) -> Self {
        Future {
            shared: Arc::clone(&self.shared),
        }
    }
}

/// Create a connected promise/future pair.
pub fn promise<T>() -> (Promise<T>, Future<T>) {
    let shared = Arc::new(Shared {
        slot: Mutex::new(Slot::Empty),
        cv: Condvar::new(),
    });
    (
        Promise {
            shared: Arc::clone(&shared),
            fulfilled: false,
        },
        Future { shared },
    )
}

impl<T> Promise<T> {
    /// Fill the future. Panics if already filled.
    pub fn set(mut self, value: T) {
        let mut slot = self.shared.slot.lock();
        assert!(matches!(*slot, Slot::Empty), "promise set twice");
        *slot = Slot::Ready(value);
        self.fulfilled = true;
        self.shared.cv.notify_all();
    }
}

impl<T> Drop for Promise<T> {
    fn drop(&mut self) {
        if self.fulfilled {
            return;
        }
        let mut slot = self.shared.slot.lock();
        if matches!(*slot, Slot::Empty) {
            *slot = Slot::Poisoned;
            self.shared.cv.notify_all();
        }
    }
}

impl<T: Clone> Future<T> {
    /// Block until the value arrives, then return a clone of it.
    /// Panics if the promise was dropped unfulfilled; use
    /// [`Future::wait`] to observe that as an error instead.
    pub fn get(&self) -> T {
        self.wait()
            .expect("promise dropped without a value (producing task failed)")
    }

    /// Block until the value arrives or the promise is dropped
    /// unfulfilled. Never deadlocks on a failed producer.
    pub fn wait(&self) -> Result<T, PromiseDropped> {
        let mut slot = self.shared.slot.lock();
        loop {
            match &*slot {
                Slot::Ready(v) => return Ok(v.clone()),
                Slot::Poisoned => return Err(PromiseDropped),
                Slot::Empty => self.shared.cv.wait(&mut slot),
            }
        }
    }

    /// Non-blocking probe; `None` while unfulfilled or poisoned.
    pub fn try_get(&self) -> Option<T> {
        match &*self.shared.slot.lock() {
            Slot::Ready(v) => Some(v.clone()),
            _ => None,
        }
    }

    /// True once the promise has been fulfilled.
    pub fn is_ready(&self) -> bool {
        matches!(*self.shared.slot.lock(), Slot::Ready(_))
    }

    /// True if the promise was dropped without a value.
    pub fn is_poisoned(&self) -> bool {
        matches!(*self.shared.slot.lock(), Slot::Poisoned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn set_then_get() {
        let (p, f) = promise();
        assert!(!f.is_ready());
        assert_eq!(f.try_get(), None);
        p.set(42u64);
        assert!(f.is_ready());
        assert_eq!(f.get(), 42);
        assert_eq!(f.clone().get(), 42);
    }

    #[test]
    fn get_blocks_until_set() {
        let (p, f) = promise();
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            p.set(7.5f64);
        });
        assert_eq!(f.get(), 7.5);
        h.join().unwrap();
    }

    #[test]
    #[should_panic(expected = "set twice")]
    fn double_set_panics() {
        let (p, f) = promise();
        p.set(1u32);
        let again = Promise {
            shared: Arc::clone(&f.shared),
            fulfilled: false,
        };
        again.set(2);
    }

    #[test]
    fn dropped_promise_poisons_blocked_reader() {
        let (p, f) = promise::<f64>();
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            drop(p); // task "failed" without producing a value
        });
        assert_eq!(f.wait(), Err(PromiseDropped));
        assert!(f.is_poisoned());
        assert!(!f.is_ready());
        assert_eq!(f.try_get(), None);
        h.join().unwrap();
    }

    #[test]
    fn fulfilled_promise_does_not_poison_on_drop() {
        let (p, f) = promise();
        p.set(3u8);
        assert_eq!(f.wait(), Ok(3));
        assert!(!f.is_poisoned());
    }

    #[test]
    #[should_panic(expected = "promise dropped")]
    fn get_panics_on_poison() {
        let (p, f) = promise::<u32>();
        drop(p);
        f.get();
    }
}
