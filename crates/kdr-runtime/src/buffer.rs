//! Typed shared buffers and subset-scoped views.
//!
//! A [`Buffer`] is the runtime's physical storage unit (one field of
//! one logical region, in Legion terms). Tasks never hold `&[T]` or
//! `&mut [T]` into a buffer; they hold [`ReadView`]/[`WriteView`]
//! accessors that perform raw-pointer element accesses. This is the
//! *only* module in the crate containing `unsafe`.
//!
//! # Safety argument
//!
//! * Every view is created by the executor from a task's declared
//!   requirements (or by [`Buffer::snapshot`]/[`Buffer::fill_from`] on a
//!   quiesced runtime).
//! * Dependence analysis serializes any two tasks whose declared
//!   subsets of a buffer overlap when at least one holds
//!   [`Privilege::Write`](crate::task::Privilege). Hence at any
//!   instant, for each buffer element, either all live accessors are
//!   reads, or exactly one running task may touch it — no data race.
//! * Views never create references into the buffer, so no aliasing
//!   invariants of `&`/`&mut` are asserted; all element traffic is
//!   `ptr::read`/`ptr::write` on `Copy` data.
//! * Debug builds assert each access lies inside the declared subset,
//!   catching tasks that under-declare their footprint.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use kdr_index::IntervalSet;

static NEXT_BUFFER_ID: AtomicU64 = AtomicU64::new(1);

pub(crate) struct BufferInner<T> {
    id: u64,
    /// `UnsafeCell` per element: the slice metadata is freely
    /// shareable, only element contents are interior-mutable.
    data: Box<[UnsafeCell<T>]>,
}

// SAFETY: concurrent access to the UnsafeCell contents is mediated by
// the runtime's dependence analysis (see module docs); the cell itself
// is shared freely.
unsafe impl<T: Send> Send for BufferInner<T> {}
unsafe impl<T: Send> Sync for BufferInner<T> {}

/// A typed, shareable storage buffer. Cloning is shallow (`Arc`).
pub struct Buffer<T> {
    inner: Arc<BufferInner<T>>,
}

impl<T> Clone for Buffer<T> {
    fn clone(&self) -> Self {
        Buffer {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Copy + Send + 'static> Buffer<T> {
    /// Allocate from an initial vector.
    pub fn from_vec(data: Vec<T>) -> Self {
        // SAFETY: UnsafeCell<T> is repr(transparent) over T, so the
        // allocation can be reinterpreted in place.
        let boxed: Box<[T]> = data.into_boxed_slice();
        let data = unsafe { Box::from_raw(Box::into_raw(boxed) as *mut [UnsafeCell<T>]) };
        Buffer {
            inner: Arc::new(BufferInner {
                id: NEXT_BUFFER_ID.fetch_add(1, Ordering::Relaxed),
                data,
            }),
        }
    }

    /// Allocate `len` copies of `init`.
    pub fn filled(len: usize, init: T) -> Self {
        Self::from_vec(vec![init; len])
    }

    /// Stable identifier used by dependence analysis.
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.inner.data.len()
    }

    /// True if the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn base_ptr(&self) -> *mut T {
        // UnsafeCell<T> is repr(transparent); the slice base doubles
        // as the element base.
        self.inner.data.as_ptr() as *mut T
    }

    /// Overwrite element `i` with an all-ones bit pattern (NaN for
    /// IEEE floats) — the fault injector's silent-corruption
    /// primitive. Called by the worker that just finished the task
    /// declaring this element writable, so exclusivity holds exactly
    /// as it did for the body's own writes.
    pub(crate) fn corrupt_element(&self, i: usize) {
        if i >= self.len() {
            return;
        }
        // SAFETY: in bounds; T is Copy (no drop) and any bit pattern
        // is tolerable for the numeric payload types the runtime
        // stores; exclusivity per the dependence discipline.
        unsafe { std::ptr::write_bytes(self.base_ptr().add(i), 0xFF, 1) };
    }

    /// Copy out the entire contents.
    ///
    /// Must only be called when no task writing this buffer is in
    /// flight (e.g. after [`Runtime::fence`](crate::Runtime::fence)).
    pub fn snapshot(&self) -> Vec<T> {
        let len = self.len();
        let mut out = Vec::with_capacity(len);
        let ptr = self.base_ptr();
        for i in 0..len {
            // SAFETY: in bounds; caller guarantees quiescence.
            out.push(unsafe { std::ptr::read(ptr.add(i)) });
        }
        out
    }

    /// Overwrite the entire contents from a slice.
    ///
    /// Must only be called on a quiesced runtime (see
    /// [`Buffer::snapshot`]).
    pub fn fill_from(&self, src: &[T]) {
        assert_eq!(src.len(), self.len());
        let ptr = self.base_ptr();
        for (i, &v) in src.iter().enumerate() {
            // SAFETY: in bounds; caller guarantees quiescence.
            unsafe { std::ptr::write(ptr.add(i), v) };
        }
    }

    /// Create a read view over `subset`.
    ///
    /// Safe to *create*; soundness of subsequent `get` calls relies on
    /// the runtime contract in the module docs. Prefer obtaining views
    /// through [`TaskContext`](crate::task::TaskContext).
    pub fn read_view(&self, subset: Arc<IntervalSet>) -> ReadView<T> {
        ReadView {
            ptr: self.base_ptr(),
            len: self.len(),
            subset,
            _keep: Arc::clone(&self.inner),
        }
    }

    /// Create a write view over `subset` (see [`Buffer::read_view`]).
    pub fn write_view(&self, subset: Arc<IntervalSet>) -> WriteView<T> {
        WriteView {
            ptr: self.base_ptr(),
            len: self.len(),
            subset,
            _keep: Arc::clone(&self.inner),
        }
    }
}

/// Read-only element access into a buffer, scoped to a declared
/// subset.
pub struct ReadView<T> {
    ptr: *const T,
    len: usize,
    subset: Arc<IntervalSet>,
    _keep: Arc<BufferInner<T>>,
}

// SAFETY: views carry a raw pointer plus a keep-alive Arc; sending
// them between threads is safe because all element access is mediated
// by the runtime discipline.
unsafe impl<T: Send> Send for ReadView<T> {}
unsafe impl<T: Send> Sync for ReadView<T> {}

impl<T: Copy> ReadView<T> {
    /// Read element `i`.
    #[inline]
    pub fn get(&self, i: usize) -> T {
        debug_assert!(i < self.len, "index {i} out of bounds {}", self.len);
        debug_assert!(
            self.subset.contains(i as u64),
            "read of undeclared element {i}"
        );
        // SAFETY: in bounds; data-race freedom per module docs.
        unsafe { std::ptr::read(self.ptr.add(i)) }
    }

    /// Borrow the contiguous elements `[lo, lo + n)` as a slice, for
    /// vectorized kernel sweeps. Same access discipline as
    /// [`ReadView::get`], asserted once for the whole range in debug
    /// builds instead of per element.
    #[inline]
    pub fn range(&self, lo: usize, n: usize) -> &[T] {
        debug_assert!(
            lo + n <= self.len,
            "range [{lo}, {}) out of bounds {}",
            lo + n,
            self.len
        );
        debug_assert!(
            self.subset.contains_range(lo as u64, (lo + n) as u64),
            "read of undeclared range [{lo}, {})",
            lo + n
        );
        // SAFETY: in bounds; data-race freedom per module docs.
        unsafe { std::slice::from_raw_parts(self.ptr.add(lo), n) }
    }

    /// The declared subset of this view.
    pub fn subset(&self) -> &IntervalSet {
        &self.subset
    }

    /// Buffer length (not subset cardinality).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the underlying buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Copy the elements of a contiguous range into `dst`.
    pub fn copy_range(&self, lo: usize, dst: &mut [T]) {
        for (off, d) in dst.iter_mut().enumerate() {
            *d = self.get(lo + off);
        }
    }
}

/// Read-write element access into a buffer, scoped to a declared
/// subset.
pub struct WriteView<T> {
    ptr: *mut T,
    len: usize,
    subset: Arc<IntervalSet>,
    _keep: Arc<BufferInner<T>>,
}

// SAFETY: see ReadView.
unsafe impl<T: Send> Send for WriteView<T> {}
unsafe impl<T: Send> Sync for WriteView<T> {}

impl<T: Copy> WriteView<T> {
    /// Read element `i`.
    #[inline]
    pub fn get(&self, i: usize) -> T {
        debug_assert!(i < self.len, "index {i} out of bounds {}", self.len);
        debug_assert!(
            self.subset.contains(i as u64),
            "read of undeclared element {i}"
        );
        // SAFETY: in bounds; data-race freedom per module docs.
        unsafe { std::ptr::read(self.ptr.add(i)) }
    }

    /// Write element `i`.
    #[inline]
    pub fn set(&self, i: usize, v: T) {
        debug_assert!(i < self.len, "index {i} out of bounds {}", self.len);
        debug_assert!(
            self.subset.contains(i as u64),
            "write of undeclared element {i}"
        );
        // SAFETY: in bounds; exclusivity per module docs.
        unsafe { std::ptr::write(self.ptr.add(i), v) };
    }

    /// Borrow the contiguous elements `[lo, lo + n)` as a mutable
    /// slice, for vectorized kernel sweeps. Same access discipline as
    /// [`WriteView::set`], asserted once for the whole range in debug
    /// builds instead of per element.
    #[inline]
    pub fn range_mut(&mut self, lo: usize, n: usize) -> &mut [T] {
        debug_assert!(
            lo + n <= self.len,
            "range [{lo}, {}) out of bounds {}",
            lo + n,
            self.len
        );
        debug_assert!(
            self.subset.contains_range(lo as u64, (lo + n) as u64),
            "write of undeclared range [{lo}, {})",
            lo + n
        );
        // SAFETY: in bounds; exclusivity per module docs (the runtime
        // hands each task disjoint write subsets, so no two slices
        // returned here alias live mutable access).
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(lo), n) }
    }

    /// The declared subset of this view.
    pub fn subset(&self) -> &IntervalSet {
        &self.subset
    }

    /// Buffer length (not subset cardinality).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the underlying buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn whole(n: u64) -> Arc<IntervalSet> {
        Arc::new(IntervalSet::full(n))
    }

    #[test]
    fn snapshot_roundtrip() {
        let b = Buffer::from_vec(vec![1.0f64, 2.0, 3.0]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.snapshot(), vec![1.0, 2.0, 3.0]);
        b.fill_from(&[4.0, 5.0, 6.0]);
        assert_eq!(b.snapshot(), vec![4.0, 5.0, 6.0]);
    }

    #[test]
    fn views_read_and_write() {
        let b = Buffer::filled(4, 0.0f64);
        let w = b.write_view(whole(4));
        w.set(1, 7.5);
        w.set(3, -2.0);
        assert_eq!(w.get(1), 7.5);
        let r = b.read_view(whole(4));
        assert_eq!(r.get(0), 0.0);
        assert_eq!(r.get(3), -2.0);
    }

    #[test]
    fn ids_are_unique() {
        let a = Buffer::filled(1, 0u64);
        let b = Buffer::filled(1, 0u64);
        assert_ne!(a.id(), b.id());
        // Clones share identity.
        assert_eq!(a.id(), a.clone().id());
    }

    #[test]
    fn copy_range() {
        let b = Buffer::from_vec((0..10).map(|i| i as f64).collect());
        let r = b.read_view(whole(10));
        let mut dst = [0.0; 4];
        r.copy_range(3, &mut dst);
        assert_eq!(dst, [3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "undeclared element")]
    fn subset_violation_caught_in_debug() {
        let b = Buffer::filled(8, 0.0f64);
        let r = b.read_view(Arc::new(IntervalSet::from_range(0, 4)));
        r.get(5);
    }
}
