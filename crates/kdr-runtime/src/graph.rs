//! Dynamic dependence analysis.
//!
//! For each buffer the analyzer keeps a *frontier* of recent accesses.
//! A newly submitted task conflicts with a frontier entry when their
//! subsets overlap and at least one of the two writes — the classic
//! RAW/WAR/WAW rules at interval-set granularity. Writers prune
//! dominated entries, keeping the frontier small for the streaming
//! access patterns of iterative solvers.

use std::collections::HashMap;
use std::sync::Arc;

use kdr_index::IntervalSet;

use crate::task::{ReqLite, TaskId};

#[derive(Clone, Debug)]
pub(crate) struct FrontierEntry {
    pub task: TaskId,
    pub subset: Arc<IntervalSet>,
    pub write: bool,
}

/// Per-buffer access frontier.
#[derive(Default, Clone, Debug)]
pub(crate) struct Frontier {
    pub entries: Vec<FrontierEntry>,
}

/// The analyzer: buffer id → frontier.
#[derive(Default)]
pub(crate) struct Analyzer {
    frontiers: HashMap<u64, Frontier>,
    pub edges_created: u64,
}

impl Analyzer {
    pub fn new() -> Self {
        Analyzer::default()
    }

    /// Analyze one task's requirements; returns the set of earlier
    /// tasks it must wait for (deduplicated, unordered).
    pub fn analyze(&mut self, task: TaskId, reqs: &[ReqLite]) -> Vec<TaskId> {
        let mut deps: Vec<TaskId> = Vec::new();
        for req in reqs {
            let frontier = self.frontiers.entry(req.buffer_id).or_default();
            for e in &frontier.entries {
                let conflict = (req.write || e.write) && !e.subset.is_disjoint(&req.subset);
                if conflict {
                    deps.push(e.task);
                }
            }
            if req.write {
                // A writer dominates everything inside its subset.
                frontier
                    .entries
                    .retain(|e| !e.subset.is_subset_of(&req.subset));
            }
            frontier.entries.push(FrontierEntry {
                task,
                subset: Arc::clone(&req.subset),
                write: req.write,
            });
        }
        deps.sort_unstable();
        deps.dedup();
        self.edges_created += deps.len() as u64;
        deps
    }

    /// Drop every frontier (used at trace-replay fences, where the
    /// runtime is quiescent and recorded frontiers are installed
    /// instead).
    pub fn clear(&mut self) {
        self.frontiers.clear();
    }

    /// Snapshot the current frontiers (trace capture).
    pub fn snapshot(&self) -> Vec<(u64, Frontier)> {
        self.frontiers
            .iter()
            .map(|(&id, f)| (id, f.clone()))
            .collect()
    }

    /// Install previously captured frontiers with task ids remapped by
    /// `remap` (trace replay).
    pub fn install(&mut self, snap: &[(u64, Frontier)], remap: impl Fn(TaskId) -> TaskId) {
        self.frontiers.clear();
        for (id, f) in snap {
            let entries = f
                .entries
                .iter()
                .map(|e| FrontierEntry {
                    task: remap(e.task),
                    subset: Arc::clone(&e.subset),
                    write: e.write,
                })
                .collect();
            self.frontiers.insert(*id, Frontier { entries });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(buf: u64, lo: u64, hi: u64, write: bool) -> ReqLite {
        ReqLite {
            buffer_id: buf,
            subset: Arc::new(IntervalSet::from_range(lo, hi)),
            write,
        }
    }

    #[test]
    fn raw_dependence() {
        let mut a = Analyzer::new();
        assert!(a.analyze(1, &[req(10, 0, 4, true)]).is_empty());
        assert_eq!(a.analyze(2, &[req(10, 0, 4, false)]), vec![1]);
    }

    #[test]
    fn war_and_waw() {
        let mut a = Analyzer::new();
        a.analyze(1, &[req(10, 0, 4, false)]);
        // WAR: writer after reader.
        assert_eq!(a.analyze(2, &[req(10, 2, 6, true)]), vec![1]);
        // WAW: writer after writer.
        assert_eq!(a.analyze(3, &[req(10, 0, 8, true)]), vec![1, 2]);
    }

    #[test]
    fn disjoint_subsets_run_in_parallel() {
        let mut a = Analyzer::new();
        a.analyze(1, &[req(10, 0, 4, true)]);
        assert!(a.analyze(2, &[req(10, 4, 8, true)]).is_empty());
        assert!(a.analyze(3, &[req(11, 0, 4, true)]).is_empty());
    }

    #[test]
    fn readers_share() {
        let mut a = Analyzer::new();
        a.analyze(1, &[req(10, 0, 8, true)]);
        assert_eq!(a.analyze(2, &[req(10, 0, 4, false)]), vec![1]);
        assert_eq!(a.analyze(3, &[req(10, 2, 6, false)]), vec![1]);
        // A later writer waits on both readers (and the dominated
        // writer entry was pruned when... it wasn't: subset 0..8 not
        // inside 0..8? it is; pruned at task 3? task 3 is a reader;
        // entry pruning happens only on writers).
        let deps = a.analyze(4, &[req(10, 0, 8, true)]);
        assert_eq!(deps, vec![1, 2, 3]);
    }

    #[test]
    fn writer_prunes_dominated_entries() {
        let mut a = Analyzer::new();
        a.analyze(1, &[req(10, 0, 4, true)]);
        a.analyze(2, &[req(10, 0, 8, true)]); // dominates task 1's entry
        let deps = a.analyze(3, &[req(10, 0, 2, false)]);
        assert_eq!(deps, vec![2], "pruned entry must not generate edges");
    }

    #[test]
    fn multi_requirement_tasks() {
        let mut a = Analyzer::new();
        a.analyze(1, &[req(10, 0, 4, true), req(11, 0, 4, true)]);
        let deps = a.analyze(2, &[req(10, 0, 4, false), req(11, 0, 4, false)]);
        assert_eq!(deps, vec![1], "duplicate deps deduplicated");
    }

    #[test]
    fn snapshot_install_roundtrip() {
        let mut a = Analyzer::new();
        a.analyze(7, &[req(10, 0, 4, true)]);
        let snap = a.snapshot();
        let mut b = Analyzer::new();
        b.install(&snap, |t| t + 100);
        assert_eq!(b.analyze(200, &[req(10, 0, 4, false)]), vec![107]);
    }
}
