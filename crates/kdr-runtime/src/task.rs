//! Task descriptions: privileges, requirements, builders, and the
//! context handed to a running task.

use std::any::Any;
use std::sync::Arc;

use kdr_index::IntervalSet;

use crate::buffer::{Buffer, ReadView, WriteView};
use crate::mapper::TaskMeta;

/// Copyable scheduling metadata carried into the executor (the
/// name-free core of [`TaskMeta`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct TaskMetaLite {
    /// Partition color the task belongs to, if it is a point task of
    /// an index launch (the mapper's affinity key).
    pub color: Option<usize>,
    /// Estimated floating-point work, for cost-aware mappers.
    pub flops: u64,
    /// Estimated bytes moved, for cost-aware mappers.
    pub bytes: u64,
    /// Scheduling priority (0 = normal lane, >0 = express lane).
    pub priority: u8,
}

impl TaskMetaLite {
    /// Re-expand for mapper calls.
    pub fn to_meta(self) -> TaskMeta {
        TaskMeta {
            name: "",
            color: self.color,
            flops: self.flops,
            bytes: self.bytes,
            priority: self.priority,
        }
    }

    pub(crate) fn from_meta(m: &TaskMeta) -> Self {
        TaskMetaLite {
            color: m.color,
            flops: m.flops,
            bytes: m.bytes,
            priority: m.priority,
        }
    }
}

/// Unique task identifier, in submission order.
pub type TaskId = u64;

/// What a task is allowed to do with a declared buffer subset.
///
/// `Write` subsumes read-modify-write; reductions are expressed as
/// `Write` because the executor serializes overlapping accumulations
/// (the paper's "interference analysis" for multiply-adds into the
/// same component, §4.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Privilege {
    /// Read the declared subset.
    Read,
    /// Read and write the declared subset.
    Write,
}

/// One declared access of a task.
pub(crate) struct Requirement {
    pub buffer_id: u64,
    /// Type-erased `Buffer<T>` for view construction.
    pub handle: Arc<dyn Any + Send + Sync>,
    pub subset: Arc<IntervalSet>,
    pub privilege: Privilege,
    /// Monomorphized corruption hook for the fault injector's
    /// `CorruptWrite` fault: overwrites the first element of the
    /// declared subset with an all-ones bit pattern (NaN for floats).
    /// Captured at build time, where the element type is known.
    pub corrupt: fn(&Requirement),
}

/// The monomorphized body of [`Requirement::corrupt`].
fn corrupt_requirement<T: Copy + Send + 'static>(req: &Requirement) {
    if let (Some(buf), Some(i)) = (req.handle.downcast_ref::<Buffer<T>>(), req.subset.min()) {
        buf.corrupt_element(i as usize);
    }
}

/// A lightweight copy of a requirement for dependence analysis.
#[derive(Clone)]
pub(crate) struct ReqLite {
    pub buffer_id: u64,
    pub subset: Arc<IntervalSet>,
    pub write: bool,
}

/// A task's executable payload.
pub(crate) type TaskBody = Box<dyn FnOnce(&TaskContext) + Send>;

/// Builder for a task: name, declared accesses, metadata and body.
pub struct TaskBuilder {
    pub(crate) name: &'static str,
    pub(crate) reqs: Vec<Requirement>,
    pub(crate) body: Option<TaskBody>,
    pub(crate) meta: TaskMeta,
}

impl TaskBuilder {
    /// Start a task description.
    pub fn new(name: &'static str) -> Self {
        TaskBuilder {
            name,
            reqs: Vec::new(),
            body: None,
            meta: TaskMeta::new(name),
        }
    }

    /// Declare a read of `subset` of `buffer`. Returns the requirement
    /// index used with [`TaskContext::read`].
    pub fn read<T: Copy + Send + 'static>(
        mut self,
        buffer: &Buffer<T>,
        subset: IntervalSet,
    ) -> Self {
        self.push(buffer, subset, Privilege::Read);
        self
    }

    /// Declare a read-write of `subset` of `buffer`.
    pub fn write<T: Copy + Send + 'static>(
        mut self,
        buffer: &Buffer<T>,
        subset: IntervalSet,
    ) -> Self {
        self.push(buffer, subset, Privilege::Write);
        self
    }

    /// Declare a read of the whole buffer.
    pub fn read_all<T: Copy + Send + 'static>(self, buffer: &Buffer<T>) -> Self {
        let s = IntervalSet::full(buffer.len() as u64);
        self.read(buffer, s)
    }

    /// Declare a read-write of the whole buffer.
    pub fn write_all<T: Copy + Send + 'static>(self, buffer: &Buffer<T>) -> Self {
        let s = IntervalSet::full(buffer.len() as u64);
        self.write(buffer, s)
    }

    fn push<T: Copy + Send + 'static>(
        &mut self,
        buffer: &Buffer<T>,
        subset: IntervalSet,
        privilege: Privilege,
    ) {
        self.reqs.push(Requirement {
            buffer_id: buffer.id(),
            handle: Arc::new(buffer.clone()),
            subset: Arc::new(subset),
            privilege,
            corrupt: corrupt_requirement::<T>,
        });
    }

    /// Attach scheduling metadata (cost estimates, color).
    pub fn meta(mut self, meta: TaskMeta) -> Self {
        self.meta = meta;
        self
    }

    /// Set the scheduling priority without replacing the rest of the
    /// metadata (0 = normal lane, >0 = express lane).
    pub fn priority(mut self, priority: u8) -> Self {
        self.meta.priority = priority;
        self
    }

    /// Provide the task body. The closure receives a [`TaskContext`]
    /// from which it obtains views onto its declared requirements.
    pub fn body(mut self, f: impl FnOnce(&TaskContext) + Send + 'static) -> Self {
        self.body = Some(Box::new(f));
        self
    }

    pub(crate) fn req_lites(&self) -> Vec<ReqLite> {
        self.reqs
            .iter()
            .map(|r| ReqLite {
                buffer_id: r.buffer_id,
                subset: Arc::clone(&r.subset),
                write: r.privilege == Privilege::Write,
            })
            .collect()
    }
}

/// Handed to a running task body: resolves requirement indices to
/// typed views.
pub struct TaskContext {
    pub(crate) reqs: Arc<Vec<Requirement>>,
}

impl TaskContext {
    /// A read view of requirement `idx`; panics on privilege or type
    /// mismatch.
    pub fn read<T: Copy + Send + 'static>(&self, idx: usize) -> ReadView<T> {
        let req = &self.reqs[idx];
        let buf = req
            .handle
            .downcast_ref::<Buffer<T>>()
            .unwrap_or_else(|| panic!("requirement {idx}: type mismatch"));
        buf.read_view(Arc::clone(&req.subset))
    }

    /// A write view of requirement `idx`; panics unless the
    /// requirement was declared with write privilege.
    pub fn write<T: Copy + Send + 'static>(&self, idx: usize) -> WriteView<T> {
        let req = &self.reqs[idx];
        assert_eq!(
            req.privilege,
            Privilege::Write,
            "requirement {idx} was not declared writable"
        );
        let buf = req
            .handle
            .downcast_ref::<Buffer<T>>()
            .unwrap_or_else(|| panic!("requirement {idx}: type mismatch"));
        buf.write_view(Arc::clone(&req.subset))
    }

    /// The declared subset of requirement `idx`.
    pub fn subset(&self, idx: usize) -> &IntervalSet {
        &self.reqs[idx].subset
    }

    /// Number of declared requirements.
    pub fn num_requirements(&self) -> usize {
        self.reqs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collects_requirements() {
        let a = Buffer::filled(4, 0.0f64);
        let b = Buffer::filled(4, 0.0f64);
        let t = TaskBuilder::new("axpy")
            .read_all(&a)
            .write(&b, IntervalSet::from_range(0, 2))
            .body(|_| {});
        assert_eq!(t.reqs.len(), 2);
        let lites = t.req_lites();
        assert!(!lites[0].write);
        assert!(lites[1].write);
        assert_eq!(lites[1].subset.cardinality(), 2);
    }

    #[test]
    fn context_resolves_views() {
        let a = Buffer::from_vec(vec![1.0f64, 2.0]);
        let t = TaskBuilder::new("t").write_all(&a);
        let ctx = TaskContext {
            reqs: Arc::new(t.reqs),
        };
        let w = ctx.write::<f64>(0);
        w.set(0, 9.0);
        assert_eq!(ctx.read::<f64>(0).get(0), 9.0);
        assert_eq!(ctx.num_requirements(), 1);
    }

    #[test]
    #[should_panic(expected = "not declared writable")]
    fn write_on_read_requirement_panics() {
        let a = Buffer::filled(2, 0.0f64);
        let t = TaskBuilder::new("t").read_all(&a);
        let ctx = TaskContext {
            reqs: Arc::new(t.reqs),
        };
        let _ = ctx.write::<f64>(0);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn type_mismatch_panics() {
        let a = Buffer::filled(2, 0.0f64);
        let t = TaskBuilder::new("t").read_all(&a);
        let ctx = TaskContext {
            reqs: Arc::new(t.reqs),
        };
        let _ = ctx.read::<f32>(0);
    }
}
