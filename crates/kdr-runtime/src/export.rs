//! Exporters for the event log: Chrome `trace_event` JSON, a
//! per-phase text summary, and a critical-path estimator.
//!
//! The JSON produced by [`chrome_trace_json`] follows the Trace Event
//! Format's "X" (complete) events and loads directly in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`: each task span
//! becomes one slice on the track of the worker that executed it,
//! with `args` carrying the provenance and queue-wait so slices can
//! be queried in the UI.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::events::{Provenance, TaskSpan};

/// Render spans as Chrome `trace_event` JSON (the
/// `{"traceEvents": [...]}` object form).
///
/// One `"X"` (complete) event per span: `ts`/`dur` are microseconds
/// (the format's unit) with three decimal places to retain the
/// underlying nanosecond resolution, `pid` is 0, `tid` is the worker
/// id. `"M"` metadata events name each worker track. Events are
/// emitted in span (task-id) order.
pub fn chrome_trace_json(spans: &[TaskSpan]) -> String {
    let mut workers: Vec<usize> = spans.iter().map(|s| s.worker).collect();
    workers.sort_unstable();
    workers.dedup();

    let mut out = String::with_capacity(128 + spans.len() * 160);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for w in &workers {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{w},\
             \"args\":{{\"name\":\"worker {w}\"}}}}"
        );
    }
    for s in spans {
        if !first {
            out.push(',');
        }
        first = false;
        let prov = match s.provenance {
            Provenance::Analyzed => "analyzed",
            Provenance::Replayed => "replayed",
        };
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\
             \"ts\":{}.{:03},\"dur\":{}.{:03},\
             \"args\":{{\"task\":{},\"provenance\":\"{}\",\"queue_wait_us\":{}.{:03}}}}}",
            escape_json(s.name),
            s.worker,
            s.start_ns / 1000,
            s.start_ns % 1000,
            s.execute_ns() / 1000,
            s.execute_ns() % 1000,
            s.id,
            prov,
            s.queue_wait_ns() / 1000,
            s.queue_wait_ns() % 1000,
        );
    }
    out.push_str("]}");
    out
}

/// Render labeled span groups as Chrome `trace_event` JSON, one
/// *process* per group.
///
/// Same event shape as [`chrome_trace_json`], but each `(label,
/// spans)` pair is assigned its own `pid` (the group index) with a
/// `process_name` metadata record, so Perfetto shows one collapsible
/// track group per label. The solve service uses this to emit
/// tenant-tagged traces: one process per tenant, worker tracks
/// within.
pub fn chrome_trace_json_grouped(groups: &[(String, Vec<TaskSpan>)]) -> String {
    let total: usize = groups.iter().map(|(_, s)| s.len()).sum();
    let mut out = String::with_capacity(256 + total * 160);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for (pid, (label, spans)) in groups.iter().enumerate() {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape_json(label)
        );
        let mut workers: Vec<usize> = spans.iter().map(|s| s.worker).collect();
        workers.sort_unstable();
        workers.dedup();
        for w in &workers {
            let _ = write!(
                out,
                ",{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{w},\
                 \"args\":{{\"name\":\"worker {w}\"}}}}"
            );
        }
        for s in spans {
            let prov = match s.provenance {
                Provenance::Analyzed => "analyzed",
                Provenance::Replayed => "replayed",
            };
            let _ = write!(
                out,
                ",{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{},\
                 \"ts\":{}.{:03},\"dur\":{}.{:03},\
                 \"args\":{{\"task\":{},\"provenance\":\"{}\",\"queue_wait_us\":{}.{:03}}}}}",
                escape_json(s.name),
                s.worker,
                s.start_ns / 1000,
                s.start_ns % 1000,
                s.execute_ns() / 1000,
                s.execute_ns() % 1000,
                s.id,
                prov,
                s.queue_wait_ns() / 1000,
                s.queue_wait_ns() % 1000,
            );
        }
    }
    out.push_str("]}");
    out
}

/// Render labeled span groups plus named counter samples as Chrome
/// `trace_event` JSON.
///
/// Same shape as [`chrome_trace_json_grouped`], with one `"C"`
/// (counter) event appended per `(name, value)` pair — Perfetto shows
/// them as counter tracks alongside the slices. The solve service
/// uses this to surface runtime-wide fence accounting
/// (`reduction_stages`, `reduction_stall_ms`) next to the
/// tenant-tagged task spans.
pub fn chrome_trace_json_with_counters(
    groups: &[(String, Vec<TaskSpan>)],
    counters: &[(&str, f64)],
) -> String {
    let mut out = chrome_trace_json_grouped(groups);
    // Splice counter events in before the closing "]}" of the
    // grouped render.
    out.truncate(out.len() - 2);
    let had_events = !out.ends_with('[');
    for (i, (name, value)) in counters.iter().enumerate() {
        if had_events || i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":0,\
             \"args\":{{\"value\":{value}}}}}",
            escape_json(name)
        );
    }
    out.push_str("]}");
    out
}

/// Escape a string for inclusion in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Aggregate statistics for one task name ("phase") in a
/// [`phase_summary`].
#[derive(Clone, Debug, Default)]
pub struct PhaseRow {
    /// Task name the row aggregates.
    pub name: String,
    /// Number of spans with this name.
    pub count: u64,
    /// Total execute time across those spans, ns.
    pub total_execute_ns: u64,
    /// Total ready-queue wait across those spans, ns.
    pub total_queue_wait_ns: u64,
    /// Spans whose dependences were replayed from a trace.
    pub replayed: u64,
}

/// Group spans by task name and return rows sorted by descending
/// total execute time — the "where did the time go" table.
pub fn phase_rows(spans: &[TaskSpan]) -> Vec<PhaseRow> {
    let mut by_name: HashMap<&str, PhaseRow> = HashMap::new();
    for s in spans {
        let row = by_name.entry(s.name).or_insert_with(|| PhaseRow {
            name: s.name.to_string(),
            ..PhaseRow::default()
        });
        row.count += 1;
        row.total_execute_ns += s.execute_ns();
        row.total_queue_wait_ns += s.queue_wait_ns();
        if s.provenance == Provenance::Replayed {
            row.replayed += 1;
        }
    }
    let mut rows: Vec<PhaseRow> = by_name.into_values().collect();
    rows.sort_by(|a, b| {
        b.total_execute_ns
            .cmp(&a.total_execute_ns)
            .then(a.name.cmp(&b.name))
    });
    rows
}

/// Render a human-readable per-phase summary table: one row per task
/// name, sorted by total execute time, plus a totals line.
pub fn phase_summary(spans: &[TaskSpan]) -> String {
    let rows = phase_rows(spans);
    let total_exec: u64 = rows.iter().map(|r| r.total_execute_ns).sum();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:>8} {:>12} {:>8} {:>12} {:>9}",
        "phase", "count", "execute_us", "exec_%", "queue_us", "replayed"
    );
    for r in &rows {
        let pct = if total_exec == 0 {
            0.0
        } else {
            100.0 * r.total_execute_ns as f64 / total_exec as f64
        };
        let _ = writeln!(
            out,
            "{:<16} {:>8} {:>12.1} {:>7.1}% {:>12.1} {:>9}",
            r.name,
            r.count,
            r.total_execute_ns as f64 / 1000.0,
            pct,
            r.total_queue_wait_ns as f64 / 1000.0,
            r.replayed,
        );
    }
    let count: u64 = rows.iter().map(|r| r.count).sum();
    let _ = writeln!(
        out,
        "{:<16} {:>8} {:>12.1}",
        "TOTAL",
        count,
        total_exec as f64 / 1000.0
    );
    out
}

/// Result of [`critical_path`]: the longest execute-time-weighted
/// chain through the recorded task DAG.
#[derive(Clone, Debug, Default)]
pub struct CriticalPath {
    /// Sum of execute times along the heaviest dependence chain, ns.
    pub length_ns: u64,
    /// Total execute time across all spans, ns.
    pub total_work_ns: u64,
    /// Task ids along the critical path, in execution order.
    pub path: Vec<u64>,
}

impl CriticalPath {
    /// Average available parallelism, `total_work / critical_path`
    /// (the DAG's "span law" bound on speedup). 1.0 for an empty log.
    pub fn parallelism(&self) -> f64 {
        if self.length_ns == 0 {
            1.0
        } else {
            self.total_work_ns as f64 / self.length_ns as f64
        }
    }
}

/// Estimate the critical path of the recorded task DAG: the longest
/// path where each node costs its measured execute time and edges are
/// the recorded dependences. Spans arrive id-sorted (submission
/// order), which is a valid topological order because dependences
/// only point at earlier submissions.
pub fn critical_path(spans: &[TaskSpan]) -> CriticalPath {
    let index: HashMap<u64, usize> = spans.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
    // dist[i]: heaviest chain ending at (and including) span i.
    let mut dist: Vec<u64> = vec![0; spans.len()];
    let mut pred: Vec<Option<usize>> = vec![None; spans.len()];
    let mut best = 0usize;
    let mut total = 0u64;
    for (i, s) in spans.iter().enumerate() {
        let mut base = 0u64;
        for d in &s.deps {
            if let Some(&j) = index.get(d) {
                if dist[j] > base {
                    base = dist[j];
                    pred[i] = Some(j);
                }
            }
        }
        dist[i] = base + s.execute_ns();
        total += s.execute_ns();
        if dist[i] > dist[best] {
            best = i;
        }
    }
    if spans.is_empty() {
        return CriticalPath::default();
    }
    let mut path = Vec::new();
    let mut cur = Some(best);
    while let Some(i) = cur {
        path.push(spans[i].id);
        cur = pred[i];
    }
    path.reverse();
    CriticalPath {
        length_ns: dist[best],
        total_work_ns: total,
        path,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, name: &'static str, start: u64, end: u64, deps: Vec<u64>) -> TaskSpan {
        TaskSpan {
            id,
            name,
            provenance: if id % 2 == 0 {
                Provenance::Analyzed
            } else {
                Provenance::Replayed
            },
            worker: (id % 2) as usize,
            submit_ns: 0,
            ready_ns: start,
            start_ns: start,
            end_ns: end,
            retire_ns: end,
            outcome: crate::events::TaskOutcome::Completed,
            deps,
        }
    }

    #[test]
    fn chrome_json_shape() {
        let spans = vec![
            span(0, "spmv_tile", 1000, 3000, vec![]),
            span(1, "dot_partial", 3000, 4000, vec![0]),
        ];
        let json = chrome_trace_json(&spans);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"name\":\"spmv_tile\""));
        assert!(json.contains("\"provenance\":\"replayed\""));
        // ts is µs with ns fraction: 1000 ns -> 1.000 µs.
        assert!(json.contains("\"ts\":1.000"), "{json}");
    }

    #[test]
    fn grouped_json_assigns_one_pid_per_group() {
        let groups = vec![
            ("tenant 0".to_string(), vec![span(0, "spmv", 0, 100, vec![])]),
            ("tenant 1".to_string(), vec![span(1, "dot", 0, 50, vec![])]),
        ];
        let json = chrome_trace_json_grouped(&groups);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0"));
        assert!(json.contains("\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1"));
        assert!(json.contains("\"args\":{\"name\":\"tenant 1\"}"));
        assert!(json.contains("\"name\":\"dot\",\"ph\":\"X\",\"pid\":1"));
    }

    #[test]
    fn counters_append_c_events() {
        let groups = vec![("tenant 0".to_string(), vec![span(0, "spmv", 0, 100, vec![])])];
        let json = chrome_trace_json_with_counters(&groups, &[("reduction_stages", 42.0)]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"reduction_stages\",\"ph\":\"C\""));
        assert!(json.contains("\"args\":{\"value\":42}"));
        // Counters on an empty group list still produce valid JSON.
        let empty = chrome_trace_json_with_counters(&[], &[("x", 1.5)]);
        assert!(empty.contains("\"ph\":\"C\""));
        assert!(!empty.contains("[,"), "{empty}");
    }

    #[test]
    fn escape_handles_controls() {
        assert_eq!(escape_json("a\"b\\c\n"), "a\\\"b\\\\c\\u000a");
    }

    #[test]
    fn summary_orders_by_execute_time() {
        let spans = vec![
            span(0, "small", 0, 10, vec![]),
            span(1, "big", 0, 1000, vec![]),
            span(2, "big", 0, 1000, vec![]),
        ];
        let rows = phase_rows(&spans);
        assert_eq!(rows[0].name, "big");
        assert_eq!(rows[0].count, 2);
        assert_eq!(rows[0].total_execute_ns, 2000);
        let text = phase_summary(&spans);
        assert!(text.contains("big"));
        assert!(text.contains("TOTAL"));
    }

    #[test]
    fn critical_path_diamond() {
        // 0 -> {1, 2} -> 3; the heavier branch (2) is the path.
        let spans = vec![
            span(0, "a", 0, 100, vec![]),
            span(1, "b", 100, 150, vec![0]),
            span(2, "c", 100, 400, vec![0]),
            span(3, "d", 400, 500, vec![1, 2]),
        ];
        let cp = critical_path(&spans);
        assert_eq!(cp.length_ns, 100 + 300 + 100);
        assert_eq!(cp.path, vec![0, 2, 3]);
        assert_eq!(cp.total_work_ns, 100 + 50 + 300 + 100);
        assert!(cp.parallelism() > 1.0);
    }

    #[test]
    fn critical_path_empty() {
        let cp = critical_path(&[]);
        assert_eq!(cp.length_ns, 0);
        assert_eq!(cp.parallelism(), 1.0);
        assert!(cp.path.is_empty());
    }
}
