//! # kdr-runtime
//!
//! A task-oriented runtime in the mold of Legion, built from scratch
//! as the execution substrate for KDRSolvers.
//!
//! The programming model: the application submits *tasks*, each
//! declaring the data it touches as *(buffer, subset, privilege)*
//! requirements. The runtime performs *dependence analysis* — two
//! tasks conflict when their declared subsets of the same buffer
//! overlap and at least one writes — and executes the resulting DAG on
//! a pool of worker threads, overlapping everything the analysis
//! proves independent. Scalars flow between tasks and the main thread
//! through [`Future`]s, *index launches* spray one task per color of a
//! partition, and *dynamic tracing* memoizes the dependence analysis
//! of a repeated task sequence (after Lee et al., SC'18, which the
//! paper cites for exactly this purpose).
//!
//! ## Safety model
//!
//! Buffers hand out [`ReadView`]/[`WriteView`] accessors that perform
//! raw-pointer element reads and writes rather than materializing
//! `&[T]`/`&mut [T]`. Dependence analysis guarantees that no two
//! *concurrently running* tasks hold overlapping views of the same
//! buffer with a writer among them — the same discipline Legion
//! enforces — which makes the raw accesses data-race free. Debug
//! builds additionally assert that every access stays inside the
//! subset the task declared. All `unsafe` in this crate lives in
//! [`buffer`].

pub mod buffer;
pub mod executor;
pub mod future;
pub mod graph;
pub mod mapper;
pub mod runtime;
pub mod task;
pub mod trace;

pub use buffer::{Buffer, ReadView, WriteView};
pub use future::{promise, Future, Promise};
pub use mapper::{Mapper, RoundRobinMapper, TaskMeta};
pub use runtime::{Runtime, RuntimeStats};
pub use task::{Privilege, TaskBuilder, TaskContext, TaskId, TaskMetaLite};
pub use trace::{ShapeSig, Trace, TraceCache};
