#![warn(missing_docs)]
//! # kdr-runtime
//!
//! A task-oriented runtime in the mold of Legion, built from scratch
//! as the execution substrate for KDRSolvers.
//!
//! The programming model: the application submits *tasks*, each
//! declaring the data it touches as *(buffer, subset, privilege)*
//! requirements. The runtime performs *dependence analysis* — two
//! tasks conflict when their declared subsets of the same buffer
//! overlap and at least one writes — and executes the resulting DAG on
//! a pool of worker threads, overlapping everything the analysis
//! proves independent. Scalars flow between tasks and the main thread
//! through [`Future`]s, *index launches* spray one task per color of a
//! partition, and *dynamic tracing* memoizes the dependence analysis
//! of a repeated task sequence (after Lee et al., SC'18, which the
//! paper cites for exactly this purpose).
//!
//! ## Safety model
//!
//! Buffers hand out [`ReadView`]/[`WriteView`] accessors that perform
//! raw-pointer element reads and writes rather than materializing
//! `&[T]`/`&mut [T]`. Dependence analysis guarantees that no two
//! *concurrently running* tasks hold overlapping views of the same
//! buffer with a writer among them — the same discipline Legion
//! enforces — which makes the raw accesses data-race free. Debug
//! builds additionally assert that every access stays inside the
//! subset the task declared. All `unsafe` in this crate lives in
//! [`buffer`].
//!
//! ## Observability
//!
//! The runtime can explain where time goes: [`Runtime::enable_events`]
//! turns on a lock-free structured event log ([`events`]) recording
//! one [`TaskSpan`] per task (submit → ready → execute → retire, with
//! analyzed-vs-replayed [`Provenance`]); [`Runtime::metrics`] returns
//! a [`MetricsSnapshot`] of counters and latency histograms
//! ([`metrics`]); and [`export`] renders spans as Chrome
//! `trace_event` JSON (Perfetto-loadable), a per-phase summary table,
//! and a critical-path estimate. Logging is off by default and costs
//! one relaxed atomic load per task while off.
//!
//! ## Fault tolerance
//!
//! A task panic never aborts the process: the body runs under
//! `catch_unwind`, the task completes as *poisoned*, its transitive
//! successors are retired without running, and the first failure
//! surfaces as a structured [`TaskError`] at
//! [`Runtime::fence`] / [`Runtime::take_failure`] and as a poisoned
//! [`Future`] ([`Future::wait`]). [`Runtime::set_fault_plan`] arms a
//! seeded, deterministic fault injector (see [`FaultPlan`]) for
//! testing recovery paths, and [`Runtime::set_stall_budget`] starts a
//! watchdog that counts tasks exceeding a stall budget. Disabled,
//! the whole layer costs one relaxed atomic load per task on each of
//! the submit and execute paths — the same contract as the event
//! log.

pub mod buffer;
pub mod events;
pub mod executor;
pub mod export;
pub mod fault;
pub mod future;
pub mod graph;
pub mod mapper;
pub mod metrics;
pub mod runtime;
pub mod task;
pub mod trace;

pub use buffer::{Buffer, ReadView, WriteView};
pub use events::{Provenance, TaskOutcome, TaskSpan, DEFAULT_RING_CAPACITY};
pub use export::{
    chrome_trace_json, chrome_trace_json_grouped, chrome_trace_json_with_counters, critical_path,
    phase_rows, phase_summary,
    CriticalPath, PhaseRow,
};
pub use fault::{
    FaultKind, FaultPlan, FaultSpec, FireSchedule, RuntimeError, TaskError, TaskErrorKind,
};
pub use future::{promise, Future, Promise, PromiseDropped};
pub use mapper::{ColorAffinityMapper, Mapper, RoundRobinMapper, TaskMeta};
pub use metrics::{AtomicHistogram, HistogramSnapshot, MetricsSnapshot};
pub use runtime::Runtime;
pub use task::{Privilege, TaskBuilder, TaskContext, TaskId, TaskMetaLite};
pub use trace::{ShapeSig, Trace, TraceCache};
