//! Structured task-event log: per-task spans with lock-free recording.
//!
//! When enabled (see [`Runtime::enable_events`](crate::Runtime::enable_events)),
//! the runtime records one [`TaskSpan`] per executed task covering the
//! full lifecycle — **submit** (dependence analysis or trace replay) →
//! **ready** (all predecessors retired, pushed onto a ready queue) →
//! **start** / **end** (body execution on a worker) → **retire**
//! (successors released). Spans carry the task name, the worker that
//! ran it, and whether its dependences were *analyzed* or *replayed*
//! from a captured trace ([`Provenance`]).
//!
//! # Hot-path design
//!
//! Workers write fixed-size execution records into a private ring buffer
//! (one per worker, single producer) guarded only by an atomic head
//! index: no locks, no allocation, overwrite-on-wrap. A full ring
//! therefore **never blocks** task execution — the oldest records are
//! dropped instead, and the drop count is surfaced in
//! [`MetricsSnapshot::events_dropped`](crate::MetricsSnapshot::events_dropped).
//! Submit-side records are appended under a mutex, which is free of
//! contention because submission is already serialized by the runtime
//! state lock. Rings are drained only at quiescence (after a fence),
//! so the drain never races a writer.
//!
//! When event logging is disabled, the only cost on the execute path
//! is one relaxed atomic load per task, preserving the traced-replay
//! fast path's advantage (see `BENCH_tracing.json`).

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

use crate::metrics::AtomicHistogram;
use crate::task::TaskId;

/// How a task's dependences were obtained at submission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Provenance {
    /// Dependences computed by full dynamic dependence analysis.
    Analyzed,
    /// Dependences installed from a captured trace (analysis skipped).
    Replayed,
}

/// How a task's lifecycle ended.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TaskOutcome {
    /// The body ran to completion.
    #[default]
    Completed,
    /// The body panicked (caught; the failure is surfaced as a
    /// [`TaskError`](crate::TaskError), not a process abort).
    Panicked,
    /// A predecessor failed, so the task was retired without running.
    Poisoned,
}

/// One complete task lifecycle, assembled when the event log is
/// drained. All timestamps are nanoseconds since the runtime's event
/// epoch (the moment the sink was created), so spans from different
/// workers share one clock.
#[derive(Clone, Debug)]
pub struct TaskSpan {
    /// Task id (submission order).
    pub id: TaskId,
    /// Static task name (e.g. `"spmv_tile"`, `"dot_partial"`).
    pub name: &'static str,
    /// Analyzed vs. replayed dependence provenance.
    pub provenance: Provenance,
    /// Worker that executed the body.
    pub worker: usize,
    /// When the task was submitted (analysis/replay happened here).
    pub submit_ns: u64,
    /// When the last predecessor retired and the task became ready.
    pub ready_ns: u64,
    /// When a worker began executing the body.
    pub start_ns: u64,
    /// When the body returned.
    pub end_ns: u64,
    /// When successors had been released (task fully retired).
    pub retire_ns: u64,
    /// How the task's lifecycle ended (completed / panicked /
    /// poisoned). Poisoned tasks never ran: their start/end stamps
    /// equal the retire stamp.
    pub outcome: TaskOutcome,
    /// Ids of the tasks this one waited on.
    pub deps: Vec<TaskId>,
}

impl TaskSpan {
    /// Time spent waiting in a ready queue (ready → start), ns.
    pub fn queue_wait_ns(&self) -> u64 {
        self.start_ns.saturating_sub(self.ready_ns)
    }

    /// Body execution time (start → end), ns.
    pub fn execute_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Submission-side half of a span, recorded under the runtime state
/// lock (submission is already serialized there, so this adds no new
/// contention).
#[derive(Clone, Debug)]
pub(crate) struct SubmitRecord {
    pub id: TaskId,
    pub name: &'static str,
    pub provenance: Provenance,
    pub submit_ns: u64,
    pub deps: Vec<TaskId>,
}

/// Execution-side half of a span, written by exactly one worker into
/// its private ring.
#[derive(Clone, Copy, Debug, Default)]
struct ExecRecord {
    id: TaskId,
    ready_ns: u64,
    start_ns: u64,
    end_ns: u64,
    retire_ns: u64,
    outcome: TaskOutcome,
}

/// A single-producer ring of `ExecRecord`s. The owning worker is
/// the only writer; readers drain only at quiescence (no concurrent
/// writer), so the `UnsafeCell` access is race-free by protocol.
struct WorkerRing {
    slots: Box<[UnsafeCell<ExecRecord>]>,
    /// Monotone count of records ever written; slot = head % capacity.
    head: AtomicUsize,
}

// Safety: writes happen only from the owning worker thread; reads
// happen only after a fence guarantees that worker is idle. The
// Release store on `head` publishes the slot contents to the
// Acquire-loading drainer.
unsafe impl Sync for WorkerRing {}

impl WorkerRing {
    fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        let slots = (0..cap)
            .map(|_| UnsafeCell::new(ExecRecord::default()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        WorkerRing {
            slots,
            head: AtomicUsize::new(0),
        }
    }

    /// Push one record, overwriting the oldest if full. Wait-free.
    #[inline]
    fn push(&self, rec: ExecRecord) {
        let head = self.head.load(Ordering::Relaxed);
        let slot = head % self.slots.len();
        // Safety: single producer — only the owning worker calls push.
        unsafe { *self.slots[slot].get() = rec };
        self.head.store(head + 1, Ordering::Release);
    }

    /// Copy out all retained records (oldest first) and the number of
    /// records lost to wraparound, then reset. Caller must guarantee
    /// the producer is quiescent.
    fn drain(&self) -> (Vec<ExecRecord>, u64) {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len();
        let retained = head.min(cap);
        let dropped = (head - retained) as u64;
        let mut out = Vec::with_capacity(retained);
        for i in (head - retained)..head {
            // Safety: producer is quiescent (post-fence) by contract.
            out.push(unsafe { *self.slots[i % cap].get() });
        }
        self.head.store(0, Ordering::Release);
        (out, dropped)
    }
}

/// Default per-worker ring capacity (records). At ~40 bytes per
/// record this is ~2.6 MB per worker — enough for tens of CG steps
/// between drains on the benchmark problems.
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

/// The shared event sink: one ring per worker, a submit log, the
/// enable flag, and the latency histograms workers feed directly (so
/// metrics survive ring wraparound).
pub(crate) struct EventSink {
    enabled: AtomicBool,
    epoch: Instant,
    rings: Vec<WorkerRing>,
    submits: Mutex<Vec<SubmitRecord>>,
    dropped: AtomicU64,
    recorded: AtomicU64,
    pub(crate) queue_wait_ns: AtomicHistogram,
    pub(crate) execute_ns: AtomicHistogram,
}

impl EventSink {
    pub(crate) fn new(workers: usize, ring_capacity: usize) -> Self {
        EventSink {
            enabled: AtomicBool::new(false),
            epoch: Instant::now(),
            rings: (0..workers)
                .map(|_| WorkerRing::new(ring_capacity))
                .collect(),
            submits: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
            queue_wait_ns: AtomicHistogram::new(),
            execute_ns: AtomicHistogram::new(),
        }
    }

    #[inline]
    pub(crate) fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    pub(crate) fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Nanoseconds since the sink's epoch.
    #[inline]
    pub(crate) fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Record the submission half of a span (called under the runtime
    /// state lock).
    pub(crate) fn record_submit(&self, rec: SubmitRecord) {
        self.submits.lock().push(rec);
    }

    /// Record the execution half of a span into `worker`'s ring and
    /// feed the latency histograms. Lock-free.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record_exec(
        &self,
        worker: usize,
        id: TaskId,
        ready_ns: u64,
        start_ns: u64,
        end_ns: u64,
        retire_ns: u64,
        outcome: TaskOutcome,
    ) {
        // Poisoned tasks never executed; keep their zero-length
        // "execution" out of the latency distributions.
        if outcome != TaskOutcome::Poisoned {
            self.queue_wait_ns.record(start_ns.saturating_sub(ready_ns));
            self.execute_ns.record(end_ns.saturating_sub(start_ns));
        }
        self.recorded.fetch_add(1, Ordering::Relaxed);
        self.rings[worker].push(ExecRecord {
            id,
            ready_ns,
            start_ns,
            end_ns,
            retire_ns,
            outcome,
        });
    }

    pub(crate) fn events_recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    pub(crate) fn events_dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Join submit records with per-worker exec records into complete
    /// spans, sorted by task id. Caller must have fenced: every
    /// worker must be idle so ring drains don't race producers.
    /// Records whose other half is missing (dropped to wraparound, or
    /// submitted but not yet executed) are discarded.
    pub(crate) fn drain_spans(&self) -> Vec<TaskSpan> {
        let submits = std::mem::take(&mut *self.submits.lock());
        let mut spans = Vec::new();
        let mut execs: std::collections::HashMap<TaskId, (usize, ExecRecord)> =
            std::collections::HashMap::new();
        for (worker, ring) in self.rings.iter().enumerate() {
            let (recs, dropped) = ring.drain();
            self.dropped.fetch_add(dropped, Ordering::Relaxed);
            for r in recs {
                execs.insert(r.id, (worker, r));
            }
        }
        for s in submits {
            if let Some(&(worker, e)) = execs.get(&s.id) {
                spans.push(TaskSpan {
                    id: s.id,
                    name: s.name,
                    provenance: s.provenance,
                    worker,
                    submit_ns: s.submit_ns,
                    ready_ns: e.ready_ns,
                    start_ns: e.start_ns,
                    end_ns: e.end_ns,
                    retire_ns: e.retire_ns,
                    outcome: e.outcome,
                    deps: s.deps,
                });
            }
        }
        spans.sort_by_key(|s| s.id);
        spans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_overwrites_without_blocking() {
        let ring = WorkerRing::new(4);
        for i in 0..10u64 {
            ring.push(ExecRecord {
                id: i,
                ..ExecRecord::default()
            });
        }
        let (recs, dropped) = ring.drain();
        assert_eq!(dropped, 6);
        assert_eq!(recs.len(), 4);
        let ids: Vec<u64> = recs.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![6, 7, 8, 9]);
        // Drained ring starts fresh.
        let (recs, dropped) = ring.drain();
        assert!(recs.is_empty());
        assert_eq!(dropped, 0);
    }

    #[test]
    fn sink_joins_submit_and_exec_halves() {
        let sink = EventSink::new(2, 16);
        sink.set_enabled(true);
        for id in 0..3u64 {
            sink.record_submit(SubmitRecord {
                id,
                name: "t",
                provenance: Provenance::Analyzed,
                submit_ns: id * 10,
                deps: if id == 0 { vec![] } else { vec![id - 1] },
            });
        }
        // Task 2 never executes: its span must be discarded.
        sink.record_exec(0, 0, 11, 12, 13, 14, TaskOutcome::Completed);
        sink.record_exec(1, 1, 21, 22, 23, 24, TaskOutcome::Panicked);
        let spans = sink.drain_spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].id, 0);
        assert_eq!(spans[0].outcome, TaskOutcome::Completed);
        assert_eq!(spans[1].outcome, TaskOutcome::Panicked);
        assert_eq!(spans[0].worker, 0);
        assert_eq!(spans[1].worker, 1);
        assert_eq!(spans[1].deps, vec![0]);
        assert_eq!(spans[1].queue_wait_ns(), 1);
        assert_eq!(spans[1].execute_ns(), 1);
    }

    #[test]
    fn span_durations_saturate() {
        let s = TaskSpan {
            id: 0,
            name: "t",
            provenance: Provenance::Replayed,
            worker: 0,
            submit_ns: 0,
            ready_ns: 100,
            start_ns: 50, // clock skew shouldn't underflow
            end_ns: 60,
            retire_ns: 70,
            outcome: TaskOutcome::Completed,
            deps: vec![],
        };
        assert_eq!(s.queue_wait_ns(), 0);
        assert_eq!(s.execute_ns(), 10);
    }
}
