//! The metrics registry: lock-free counters and latency histograms.
//!
//! Workers update [`AtomicHistogram`]s with relaxed atomic adds — no
//! locks, no allocation — so metrics collection rides along with event
//! logging at negligible cost. [`Runtime::metrics`](crate::Runtime::metrics)
//! freezes everything into a [`MetricsSnapshot`]: activity counters,
//! fault-tolerance counters (failures, poisonings, injected faults,
//! stalls), the queue-wait and execute latency distributions, and
//! event-log health — safe to take at any time (no fence required).
//!
//! Latencies are bucketed by powers of two of nanoseconds, giving
//! ~2× resolution over the full range from 1 ns to ~584 years with a
//! fixed 64-slot footprint.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two buckets in a histogram (one per possible
/// `u64` bit position).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A lock-free histogram of `u64` samples in power-of-two buckets.
///
/// `record` is wait-free (three relaxed atomic RMWs) and is safe to
/// call from any number of threads concurrently; [`AtomicHistogram::snapshot`]
/// produces a plain [`HistogramSnapshot`] for analysis.
pub struct AtomicHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// A histogram with every bucket empty.
    pub fn new() -> Self {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Index of the bucket holding `value`: the position of its
    /// highest set bit (0 maps to bucket 0).
    #[inline]
    fn bucket_of(value: u64) -> usize {
        (63 - value.max(1).leading_zeros()) as usize
    }

    /// Record one sample. Wait-free; relaxed ordering is sufficient
    /// because snapshots are statistical, not synchronizing.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Freeze the current contents into a plain value.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(&self.buckets) {
            *dst = src.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }

    /// Reset every bucket and counter to zero.
    pub fn clear(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// A frozen copy of an [`AtomicHistogram`].
#[derive(Clone, Copy, Debug)]
pub struct HistogramSnapshot {
    /// Sample counts per power-of-two bucket: `buckets[i]` counts
    /// samples in `[2^i, 2^(i+1))` (bucket 0 also holds zero).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all recorded sample values.
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Arithmetic mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate `q`-quantile (`0.0 ..= 1.0`): the upper bound of
    /// the bucket containing the `ceil(q·count)`-th sample. Accurate
    /// to within the 2× bucket resolution; returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Upper bound of bucket i is 2^(i+1) - 1.
                return if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
            }
        }
        u64::MAX
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// A point-in-time aggregate of everything the runtime knows about
/// its own activity.
///
/// Counter fields cover the whole runtime lifetime; histogram fields
/// only accumulate while event logging is enabled (see
/// [`Runtime::enable_events`](crate::Runtime::enable_events)).
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Tasks submitted (analyzed or replayed).
    pub tasks_submitted: u64,
    /// Task bodies actually executed.
    pub tasks_executed: u64,
    /// Tasks that went through dependence analysis (not replayed).
    pub tasks_analyzed: u64,
    /// Tasks submitted through trace replay (analysis skipped).
    pub tasks_replayed: u64,
    /// Tasks executed by a worker other than their affinity target.
    pub tasks_stolen: u64,
    /// Dependence edges created by analysis.
    pub edges_created: u64,
    /// Nanoseconds spent in dependence analysis.
    pub analysis_ns: u64,
    /// Task bodies that panicked (caught and converted to poisoned
    /// completions, never a process abort).
    pub task_failures: u64,
    /// Tasks retired without running because a (transitive)
    /// predecessor failed.
    pub tasks_poisoned: u64,
    /// Tasks flagged by the watchdog for exceeding the configured
    /// stall budget.
    pub tasks_stalled: u64,
    /// Faults planted by the deterministic injector.
    pub faults_injected: u64,
    /// Task spans recorded by the event log (lifetime total).
    pub events_recorded: u64,
    /// Spans lost to ring-buffer wraparound (recording never blocks;
    /// the oldest records are overwritten instead).
    pub events_dropped: u64,
    /// Global reduction stages launched (each `dot`/`dot_many` call
    /// counts as one stage regardless of how many scalars it fuses).
    pub reduction_stages: u64,
    /// Nanoseconds the driver spent blocked waiting for a reduction
    /// result (`scalar_get` wait time) — the fence tax.
    pub reduction_stall_ns: u64,
    /// Distribution of ready-queue wait times (ready → start), ns.
    pub queue_wait_ns: HistogramSnapshot,
    /// Distribution of task execution times (start → end), ns.
    pub execute_ns: HistogramSnapshot,
    /// Executed-task tallies keyed by kernel name (e.g.
    /// `spmv_dia` vs `spmv_csr`), so backends can report which
    /// specialized kernels actually ran.
    pub task_counts: BTreeMap<&'static str, u64>,
    /// Accumulated execution nanoseconds per kernel name — the
    /// per-kernel companion of [`MetricsSnapshot::execute_ns`]. Only
    /// populated while event logging or per-kernel timing is on (see
    /// [`Runtime::enable_kernel_timing`](crate::Runtime::enable_kernel_timing));
    /// cost catalogues divide these by [`MetricsSnapshot::task_counts`]
    /// to refine per-kernel latency estimates online.
    pub task_execute_ns: BTreeMap<&'static str, u64>,
    /// Cost-catalogue predictions served from observed samples
    /// (incremented by the service layer at admission).
    pub catalogue_hits: u64,
    /// Cost-catalogue predictions that fell back to the roofline
    /// prior (no observed samples for the key).
    pub catalogue_misses: u64,
}

impl MetricsSnapshot {
    /// Fraction of submitted tasks whose dependence analysis was
    /// skipped via trace replay (`0.0` when nothing was submitted).
    pub fn replay_fraction(&self) -> f64 {
        if self.tasks_submitted == 0 {
            0.0
        } else {
            self.tasks_replayed as f64 / self.tasks_submitted as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_of_maps_powers_of_two() {
        assert_eq!(AtomicHistogram::bucket_of(0), 0);
        assert_eq!(AtomicHistogram::bucket_of(1), 0);
        assert_eq!(AtomicHistogram::bucket_of(2), 1);
        assert_eq!(AtomicHistogram::bucket_of(3), 1);
        assert_eq!(AtomicHistogram::bucket_of(1024), 10);
        assert_eq!(AtomicHistogram::bucket_of(u64::MAX), 63);
    }

    #[test]
    fn record_and_snapshot() {
        let h = AtomicHistogram::new();
        for v in [1u64, 2, 3, 1000, 1000, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1 + 2 + 3 + 1000 + 1000 + 1_000_000);
        assert!((s.mean() - s.sum as f64 / 6.0).abs() < 1e-9);
        // Median lands in the bucket holding 3 (bucket 1, upper 3).
        assert!(s.quantile(0.5) <= 1023, "median {}", s.quantile(0.5));
        // p99 lands in the bucket holding the millisecond outlier.
        assert!(s.quantile(0.99) >= 1_000_000);
        h.clear();
        assert!(h.snapshot().is_empty());
    }

    #[test]
    fn empty_snapshot_quantiles() {
        let s = HistogramSnapshot::default();
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
        assert!(s.is_empty());
    }

    #[test]
    fn replay_fraction() {
        let m = MetricsSnapshot {
            tasks_submitted: 10,
            tasks_replayed: 7,
            ..MetricsSnapshot::default()
        };
        assert!((m.replay_fraction() - 0.7).abs() < 1e-12);
        assert_eq!(MetricsSnapshot::default().replay_fraction(), 0.0);
    }
}
