//! Dynamic tracing: memoization of dependence analysis.
//!
//! Iterative solvers submit the same task sequence every iteration.
//! Capturing one iteration as a [`Trace`] records the intra-trace
//! dependence edges and the final access frontier; replaying it
//! re-submits a same-shaped task list with the recorded edges,
//! skipping interval-set intersection work entirely. This reproduces
//! the dynamic-tracing optimization of Lee et al. (SC '18) that the
//! paper's implementation relies on.
//!
//! Both capture and replay begin from a quiescent runtime (the
//! runtime fences internally), so a trace's first tasks have no
//! external dependences and the recorded frontier fully describes the
//! post-trace access state.

use std::hash::{Hash, Hasher};
use std::sync::Arc;

use kdr_index::IntervalSet;

use crate::graph::Frontier;
use crate::task::TaskBuilder;

/// A captured task sequence: per-task dependence lists (as indices
/// into the trace) plus the access frontier left behind.
#[derive(Debug)]
pub struct Trace {
    /// `deps[i]` = indices `< i` of tasks that task `i` waits on.
    pub(crate) deps: Vec<Vec<usize>>,
    /// Final analyzer frontiers with trace-local task indices.
    pub(crate) frontier: Vec<(u64, Frontier)>,
}

impl Trace {
    /// Number of tasks in the trace.
    pub fn len(&self) -> usize {
        self.deps.len()
    }

    /// True if the trace recorded no tasks.
    pub fn is_empty(&self) -> bool {
        self.deps.is_empty()
    }

    /// Total recorded dependence edges.
    pub fn num_edges(&self) -> usize {
        self.deps.iter().map(Vec::len).sum()
    }
}

/// The dependence-relevant shape of one task: its name plus each
/// declared access as (buffer id, subset, writable).
#[derive(Clone)]
struct TaskShape {
    name: &'static str,
    accesses: Vec<(u64, Arc<IntervalSet>, bool)>,
}

impl PartialEq for TaskShape {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.accesses.len() == other.accesses.len()
            && self
                .accesses
                .iter()
                .zip(&other.accesses)
                .all(|(a, b)| a.0 == b.0 && a.2 == b.2 && *a.1 == *b.1)
    }
}

/// Shape signature of one step's task list; the key under which its
/// captured trace is cached. Two steps with equal signatures declare
/// identical access patterns, so dependence analysis of one is valid
/// for the other.
#[derive(Clone)]
pub struct ShapeSig {
    hash: u64,
    shapes: Vec<TaskShape>,
}

impl ShapeSig {
    /// Compute the signature of a task list.
    pub fn of_tasks(tasks: &[TaskBuilder]) -> ShapeSig {
        let shapes: Vec<TaskShape> = tasks
            .iter()
            .map(|t| TaskShape {
                name: t.name,
                accesses: t
                    .req_lites()
                    .into_iter()
                    .map(|r| (r.buffer_id, r.subset, r.write))
                    .collect(),
            })
            .collect();
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for s in &shapes {
            s.name.hash(&mut h);
            for (buf, subset, write) in &s.accesses {
                buf.hash(&mut h);
                subset.hash(&mut h);
                write.hash(&mut h);
            }
        }
        ShapeSig {
            hash: h.finish(),
            shapes,
        }
    }

    /// Number of tasks covered by the signature.
    pub fn len(&self) -> usize {
        self.shapes.len()
    }

    /// True when the signature covers no tasks.
    pub fn is_empty(&self) -> bool {
        self.shapes.is_empty()
    }
}

impl PartialEq for ShapeSig {
    fn eq(&self, other: &Self) -> bool {
        // Hash first: almost every mismatch dies here without walking
        // interval sets.
        self.hash == other.hash && self.shapes == other.shapes
    }
}

impl Eq for ShapeSig {}

/// A small signature-keyed store of captured traces.
///
/// Solvers whose step shape cycles through a few variants (e.g. a
/// carried scalar slot alternating between two pool slots, or GMRES
/// growing its basis) get one trace per variant. The cache never
/// evicts: once full, unknown shapes simply run analyzed, which
/// bounds capture overhead for genuinely non-repeating workloads.
pub struct TraceCache {
    entries: Vec<(ShapeSig, Trace)>,
    cap: usize,
}

impl TraceCache {
    /// A cache holding at most `cap` traces.
    pub fn new(cap: usize) -> Self {
        TraceCache {
            entries: Vec::new(),
            cap,
        }
    }

    /// Look up the trace captured for `sig`, if any.
    pub fn get(&self, sig: &ShapeSig) -> Option<&Trace> {
        self.entries.iter().find(|(s, _)| s == sig).map(|(_, t)| t)
    }

    /// True while a new signature can still be captured.
    pub fn has_room(&self) -> bool {
        self.entries.len() < self.cap
    }

    /// Store the trace captured for `sig`. No-op when full or when
    /// the signature is already present.
    pub fn insert(&mut self, sig: ShapeSig, trace: Trace) {
        if self.has_room() && self.get(&sig).is_none() {
            self.entries.push((sig, trace));
        }
    }

    /// Number of cached traces.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Buffer;

    fn sig_of(subsets: &[(u64, u64)], buf: &Buffer<f64>, write: bool) -> ShapeSig {
        let tasks: Vec<TaskBuilder> = subsets
            .iter()
            .map(|&(lo, hi)| {
                let t = TaskBuilder::new("t");
                if write {
                    t.write(buf, IntervalSet::from_range(lo, hi))
                } else {
                    t.read(buf, IntervalSet::from_range(lo, hi))
                }
            })
            .collect();
        ShapeSig::of_tasks(&tasks)
    }

    #[test]
    fn equal_shapes_equal_sigs() {
        let b = Buffer::filled(32, 0.0f64);
        let a = sig_of(&[(0, 8), (8, 16)], &b, true);
        let c = sig_of(&[(0, 8), (8, 16)], &b, true);
        assert!(a == c);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn differing_subset_name_privilege_or_buffer_changes_sig() {
        let b = Buffer::filled(32, 0.0f64);
        let b2 = Buffer::filled(32, 0.0f64);
        let base = sig_of(&[(0, 8)], &b, true);
        assert!(base != sig_of(&[(0, 9)], &b, true), "subset");
        assert!(base != sig_of(&[(0, 8)], &b, false), "privilege");
        assert!(base != sig_of(&[(0, 8)], &b2, true), "buffer");
        let renamed = ShapeSig::of_tasks(&[
            TaskBuilder::new("other").write(&b, IntervalSet::from_range(0, 8))
        ]);
        assert!(base != renamed, "name");
    }

    #[test]
    fn cache_is_keyed_and_bounded() {
        let b = Buffer::filled(64, 0.0f64);
        let mut cache = TraceCache::new(2);
        let s1 = sig_of(&[(0, 8)], &b, true);
        let s2 = sig_of(&[(8, 16)], &b, true);
        let s3 = sig_of(&[(16, 24)], &b, true);
        cache.insert(
            s1.clone(),
            Trace {
                deps: vec![vec![]],
                frontier: Vec::new(),
            },
        );
        assert!(cache.get(&s1).is_some());
        assert!(cache.get(&s2).is_none());
        cache.insert(
            s2.clone(),
            Trace {
                deps: vec![vec![]],
                frontier: Vec::new(),
            },
        );
        assert!(!cache.has_room());
        cache.insert(
            s3.clone(),
            Trace {
                deps: vec![vec![]],
                frontier: Vec::new(),
            },
        );
        assert!(cache.get(&s3).is_none(), "full cache must not evict");
        assert_eq!(cache.len(), 2);
    }
}
