//! Dynamic tracing: memoization of dependence analysis.
//!
//! Iterative solvers submit the same task sequence every iteration.
//! Capturing one iteration as a [`Trace`] records the intra-trace
//! dependence edges and the final access frontier; replaying it
//! re-submits a same-shaped task list with the recorded edges,
//! skipping interval-set intersection work entirely. This reproduces
//! the dynamic-tracing optimization of Lee et al. (SC '18) that the
//! paper's implementation relies on.
//!
//! Both capture and replay begin from a quiescent runtime (the
//! runtime fences internally), so a trace's first tasks have no
//! external dependences and the recorded frontier fully describes the
//! post-trace access state.

use crate::graph::Frontier;

/// A captured task sequence: per-task dependence lists (as indices
/// into the trace) plus the access frontier left behind.
pub struct Trace {
    /// `deps[i]` = indices `< i` of tasks that task `i` waits on.
    pub(crate) deps: Vec<Vec<usize>>,
    /// Final analyzer frontiers with trace-local task indices.
    pub(crate) frontier: Vec<(u64, Frontier)>,
}

impl Trace {
    /// Number of tasks in the trace.
    pub fn len(&self) -> usize {
        self.deps.len()
    }

    /// True if the trace recorded no tasks.
    pub fn is_empty(&self) -> bool {
        self.deps.is_empty()
    }

    /// Total recorded dependence edges.
    pub fn num_edges(&self) -> usize {
        self.deps.iter().map(Vec::len).sum()
    }
}
