//! Fault tolerance: structured task errors, typed runtime errors, and
//! a seeded, deterministic fault injector.
//!
//! # Panic isolation and poison
//!
//! Every task body runs under `catch_unwind`. A panicking body does
//! not abort the process: the task completes as *poisoned*, and the
//! poison propagates through the dependence DAG — transitive
//! successors are retired-as-poisoned without running, so no task
//! ever observes the panicked task's half-written data. The first
//! failure is recorded as a [`TaskError`] and surfaced by
//! [`Runtime::fence`](crate::Runtime::fence) (which keeps returning
//! the error until [`Runtime::take_failure`](crate::Runtime::take_failure)
//! clears it) and by [`Future::wait`](crate::Future::wait) (a dropped
//! task body poisons any promise it captured, so a blocked reader
//! wakes with an error instead of deadlocking).
//!
//! # Deterministic fault injection
//!
//! A [`FaultPlan`] arms the injector with a list of [`FaultSpec`]s:
//! each matches tasks by name substring and fires on a deterministic
//! [`FireSchedule`]. Decisions are made at *submission* time, which
//! the runtime serializes, so a fixed seed reproduces the exact same
//! faults run-to-run regardless of worker interleaving. While no plan
//! is armed the injector costs one relaxed atomic load per task on
//! the submit path — the same contract as the event log on the
//! execute path.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::task::TaskId;

/// Why a task failed to complete normally.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TaskErrorKind {
    /// The task body panicked; carries the panic payload's message.
    Panicked(String),
    /// A (transitive) predecessor failed, so this task was retired
    /// without running.
    Poisoned {
        /// The task whose panic started the poison cascade.
        root: TaskId,
        /// Kernel name of the root task.
        root_name: &'static str,
    },
}

/// A structured description of a task failure, surfaced at fences and
/// futures instead of aborting the process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskError {
    /// The failing task's id.
    pub task: TaskId,
    /// The failing task's kernel name.
    pub name: &'static str,
    /// What went wrong.
    pub kind: TaskErrorKind,
}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            TaskErrorKind::Panicked(msg) => {
                write!(f, "task {} ('{}') panicked: {msg}", self.task, self.name)
            }
            TaskErrorKind::Poisoned { root, root_name } => write!(
                f,
                "task {} ('{}') poisoned by failed predecessor {} ('{}')",
                self.task, self.name, root, root_name
            ),
        }
    }
}

impl std::error::Error for TaskError {}

/// Typed errors returned by user-reachable [`Runtime`](crate::Runtime)
/// entry points, replacing the former in-runtime panics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RuntimeError {
    /// A task was submitted without a body (`TaskBuilder::body` was
    /// never called).
    MissingBody {
        /// Name of the body-less task.
        task: &'static str,
    },
    /// `begin_trace` was called while another capture was active.
    NestedTrace,
    /// `end_trace` was called with no capture active.
    NoActiveTrace,
    /// `replay` was handed a task list whose length differs from the
    /// captured trace.
    ReplayLengthMismatch {
        /// Tasks recorded in the trace.
        expected: usize,
        /// Tasks supplied for replay.
        got: usize,
    },
    /// A task failed while the runtime was quiescing for this call.
    TaskFailed(TaskError),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::MissingBody { task } => {
                write!(f, "task '{task}' submitted without a body; call .body(..)")
            }
            RuntimeError::NestedTrace => write!(f, "begin_trace while a capture is active"),
            RuntimeError::NoActiveTrace => write!(f, "end_trace without begin_trace"),
            RuntimeError::ReplayLengthMismatch { expected, got } => write!(
                f,
                "replay task list length {got} does not match trace length {expected}"
            ),
            RuntimeError::TaskFailed(e) => write!(f, "task failed: {e}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// The kind of fault the injector plants in a matched task.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside the task body (exercises poison propagation).
    Panic,
    /// Sleep this long before running the body (exercises the
    /// watchdog's stall detection).
    Stall {
        /// Artificial delay in milliseconds.
        millis: u64,
    },
    /// Run the body, then overwrite the first element of the task's
    /// first writable requirement with an all-ones bit pattern (NaN
    /// for floating-point buffers) — a silent data corruption that
    /// only checkpoint validation can catch.
    CorruptWrite,
}

/// When a [`FaultSpec`] fires, counted over the tasks it matches (in
/// deterministic submission order).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FireSchedule {
    /// Fire on exactly the `n`-th match (1-based), once.
    Nth(u64),
    /// Fire on every `n`-th match.
    EveryNth(u64),
    /// Fire on each match with probability `millionths / 1e6`, drawn
    /// from a SplitMix64 stream keyed on the plan seed, the spec
    /// index, and the match ordinal — fully reproducible for a fixed
    /// seed.
    Random {
        /// Firing probability in millionths (1_000_000 = always).
        millionths: u32,
    },
}

/// One fault-injection rule: which tasks, what fault, when.
#[derive(Clone, Debug)]
pub struct FaultSpec {
    /// Substring matched against task names (e.g. `"dot_partial"`).
    pub name_contains: String,
    /// The fault to plant.
    pub kind: FaultKind,
    /// The firing schedule over matched tasks.
    pub schedule: FireSchedule,
    /// Stop firing after this many injections (0 = unlimited).
    pub max_fires: u64,
}

/// A seeded set of fault-injection rules.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Seed for the `Random` schedules' deterministic stream.
    pub seed: u64,
    /// The rules; the first matching spec decides a task's fate.
    pub specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// A plan with the given seed and no rules yet.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            specs: Vec::new(),
        }
    }

    /// Append a rule.
    pub fn with(mut self, spec: FaultSpec) -> Self {
        self.specs.push(spec);
        self
    }
}

/// SplitMix64: a tiny, high-quality mixing function — enough PRNG for
/// reproducible fault scheduling without external dependencies.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

struct ArmedPlan {
    plan: FaultPlan,
    /// Per-spec count of tasks matched so far.
    matches: Vec<u64>,
    /// Per-spec count of faults fired so far.
    fires: Vec<u64>,
}

/// The injector: holds the armed plan and decides, at submission
/// time, whether each task carries a fault. Disabled cost is one
/// relaxed atomic load per submitted task.
pub(crate) struct FaultInjector {
    armed: AtomicBool,
    injected: AtomicU64,
    state: Mutex<Option<ArmedPlan>>,
}

impl FaultInjector {
    pub(crate) fn new() -> Self {
        FaultInjector {
            armed: AtomicBool::new(false),
            injected: AtomicU64::new(0),
            state: Mutex::new(None),
        }
    }

    /// Arm (or disarm, with `None`) the injector. Resets all match
    /// and fire counters.
    pub(crate) fn install(&self, plan: Option<FaultPlan>) {
        let mut st = self.state.lock();
        match plan {
            Some(p) => {
                let n = p.specs.len();
                *st = Some(ArmedPlan {
                    plan: p,
                    matches: vec![0; n],
                    fires: vec![0; n],
                });
                self.armed.store(true, Ordering::Relaxed);
            }
            None => {
                *st = None;
                self.armed.store(false, Ordering::Relaxed);
            }
        }
    }

    /// Total faults injected since the injector was created.
    pub(crate) fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Decide whether the task named `name` (submitted now, in
    /// deterministic submission order) carries a fault.
    pub(crate) fn decide(&self, name: &str) -> Option<FaultKind> {
        // The entire disabled-path cost: one relaxed load.
        if !self.armed.load(Ordering::Relaxed) {
            return None;
        }
        let mut st = self.state.lock();
        let armed = st.as_mut()?;
        for (i, spec) in armed.plan.specs.iter().enumerate() {
            if !name.contains(spec.name_contains.as_str()) {
                continue;
            }
            armed.matches[i] += 1;
            if spec.max_fires != 0 && armed.fires[i] >= spec.max_fires {
                return None;
            }
            let m = armed.matches[i];
            let fire = match spec.schedule {
                FireSchedule::Nth(n) => m == n.max(1),
                FireSchedule::EveryNth(n) => m % n.max(1) == 0,
                FireSchedule::Random { millionths } => {
                    let draw = splitmix64(armed.plan.seed ^ ((i as u64) << 32).wrapping_add(m))
                        % 1_000_000;
                    draw < u64::from(millionths)
                }
            };
            if fire {
                armed.fires[i] += 1;
                self.injected.fetch_add(1, Ordering::Relaxed);
                return Some(spec.kind);
            }
            // First matching spec decides, fire or not.
            return None;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(schedule: FireSchedule) -> FaultPlan {
        FaultPlan::seeded(42).with(FaultSpec {
            name_contains: "dot".into(),
            kind: FaultKind::Panic,
            schedule,
            max_fires: 0,
        })
    }

    #[test]
    fn disarmed_injector_never_fires() {
        let inj = FaultInjector::new();
        for _ in 0..100 {
            assert_eq!(inj.decide("dot_partial"), None);
        }
        assert_eq!(inj.injected(), 0);
    }

    #[test]
    fn nth_fires_exactly_once() {
        let inj = FaultInjector::new();
        inj.install(Some(plan(FireSchedule::Nth(3))));
        let fired: Vec<bool> = (0..6)
            .map(|_| inj.decide("dot_partial").is_some())
            .collect();
        assert_eq!(fired, vec![false, false, true, false, false, false]);
        assert_eq!(inj.injected(), 1);
    }

    #[test]
    fn every_nth_respects_max_fires() {
        let inj = FaultInjector::new();
        let mut p = plan(FireSchedule::EveryNth(2));
        p.specs[0].max_fires = 2;
        inj.install(Some(p));
        let fired: Vec<bool> = (0..8).map(|_| inj.decide("dot_reduce").is_some()).collect();
        assert_eq!(
            fired,
            vec![false, true, false, true, false, false, false, false]
        );
    }

    #[test]
    fn non_matching_names_ignored() {
        let inj = FaultInjector::new();
        inj.install(Some(plan(FireSchedule::Nth(1))));
        assert_eq!(inj.decide("axpy"), None);
        assert!(inj.decide("dot_partial").is_some());
    }

    #[test]
    fn random_schedule_is_reproducible() {
        let run = || {
            let inj = FaultInjector::new();
            inj.install(Some(plan(FireSchedule::Random {
                millionths: 300_000,
            })));
            (0..64)
                .map(|_| inj.decide("dot_partial").is_some())
                .collect::<Vec<_>>()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed must reproduce the same firing pattern");
        assert!(
            a.iter().any(|&f| f),
            "30% over 64 draws should fire at least once"
        );
        assert!(a.iter().any(|&f| !f));
    }

    #[test]
    fn error_displays_are_informative() {
        let e = TaskError {
            task: 7,
            name: "spmv_csr",
            kind: TaskErrorKind::Panicked("boom".into()),
        };
        assert!(e.to_string().contains("spmv_csr"));
        assert!(e.to_string().contains("boom"));
        let p = TaskError {
            task: 9,
            name: "axpy",
            kind: TaskErrorKind::Poisoned {
                root: 7,
                root_name: "spmv_csr",
            },
        };
        assert!(p.to_string().contains("poisoned"));
        let r = RuntimeError::ReplayLengthMismatch {
            expected: 4,
            got: 2,
        };
        assert!(r.to_string().contains("does not match trace length"));
        assert!(RuntimeError::NoActiveTrace
            .to_string()
            .contains("end_trace"));
    }
}
