//! Mappers: policy objects that assign tasks to processors.
//!
//! In Legion, mapping decisions (which processor runs a task, where
//! instances live) are delegated to an application-replaceable
//! *mapper*. Our thread-pool executor is symmetric shared memory, so
//! mapping is advisory there; the machine simulator in `kdr-machine`
//! honors it exactly, and the dynamic load-balancing experiment
//! (paper §6.3) is implemented as a custom mapper that migrates
//! matrix tiles between nodes.

/// Scheduling metadata attached to a task.
#[derive(Clone, Debug)]
pub struct TaskMeta {
    /// Human-readable kernel name.
    pub name: &'static str,
    /// Color within an index launch, if any.
    pub color: Option<usize>,
    /// Estimated floating-point operations.
    pub flops: u64,
    /// Estimated bytes of memory traffic.
    pub bytes: u64,
}

impl TaskMeta {
    /// Metadata with the given kernel name and no color or cost
    /// estimates.
    pub fn new(name: &'static str) -> Self {
        TaskMeta {
            name,
            color: None,
            flops: 0,
            bytes: 0,
        }
    }

    /// Attach an index-launch color.
    pub fn with_color(mut self, color: usize) -> Self {
        self.color = Some(color);
        self
    }

    /// Attach cost estimates (used by simulators and mappers).
    pub fn with_cost(mut self, flops: u64, bytes: u64) -> Self {
        self.flops = flops;
        self.bytes = bytes;
        self
    }
}

/// Assigns each task a processor index in `0..num_procs`.
pub trait Mapper: Send + Sync {
    /// Number of processors this mapper targets.
    fn num_procs(&self) -> usize;

    /// Pick a processor for a task.
    fn map_task(&self, meta: &TaskMeta) -> usize;
}

/// Spreads index-launch colors round-robin over processors; tasks
/// without a color go to processor 0.
pub struct RoundRobinMapper {
    procs: usize,
}

impl RoundRobinMapper {
    /// A round-robin mapper over `procs` processors (must be nonzero).
    pub fn new(procs: usize) -> Self {
        assert!(procs > 0);
        RoundRobinMapper { procs }
    }
}

impl Mapper for RoundRobinMapper {
    fn num_procs(&self) -> usize {
        self.procs
    }

    fn map_task(&self, meta: &TaskMeta) -> usize {
        meta.color.map_or(0, |c| c % self.procs)
    }
}

/// Pins every task of a partition color to one stable worker, so a
/// tile's kernel payload (CSR/DIA/ELL/BCSR arrays) and the vector
/// piece it touches stay hot in a single worker's cache across traced
/// iterations instead of migrating via steals.
///
/// The contract an execution backend relies on:
///
/// 1. **Stability** — `map_task` is a pure function of the color:
///    color `c` always maps to worker `c % num_procs`, across the
///    whole lifetime of the mapper. Tile tasks *and* elementwise /
///    dot-partial tasks over the same piece carry the same color, so
///    everything touching one piece lands on one worker.
/// 2. **Colorless spread** — tasks without a color (scalar
///    reductions, bookkeeping) are dealt round-robin from an atomic
///    cursor rather than piling onto worker 0.
/// 3. **Advisory only** — idle workers still steal, so a pinned
///    queue never becomes a throughput bottleneck; affinity is a
///    locality hint, not a placement constraint.
pub struct ColorAffinityMapper {
    procs: usize,
    /// Cursor for dealing colorless tasks.
    next_uncolored: std::sync::atomic::AtomicUsize,
}

impl ColorAffinityMapper {
    /// A color-affinity mapper over `procs` workers (must be nonzero).
    pub fn new(procs: usize) -> Self {
        assert!(procs > 0);
        ColorAffinityMapper {
            procs,
            next_uncolored: std::sync::atomic::AtomicUsize::new(0),
        }
    }
}

impl Mapper for ColorAffinityMapper {
    fn num_procs(&self) -> usize {
        self.procs
    }

    fn map_task(&self, meta: &TaskMeta) -> usize {
        match meta.color {
            Some(c) => c % self.procs,
            None => {
                self.next_uncolored
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
                    % self.procs
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_spreads_colors() {
        let m = RoundRobinMapper::new(4);
        assert_eq!(m.num_procs(), 4);
        let mk = |c| TaskMeta::new("t").with_color(c);
        assert_eq!(m.map_task(&mk(0)), 0);
        assert_eq!(m.map_task(&mk(5)), 1);
        assert_eq!(m.map_task(&TaskMeta::new("t")), 0);
    }

    #[test]
    fn color_affinity_is_stable_and_spreads_uncolored() {
        let m = ColorAffinityMapper::new(3);
        let mk = |c| TaskMeta::new("t").with_color(c);
        // Same color → same worker, every time.
        for _ in 0..4 {
            assert_eq!(m.map_task(&mk(7)), 1);
            assert_eq!(m.map_task(&mk(2)), 2);
        }
        // Colorless tasks are dealt round-robin, not piled on 0.
        let picks: Vec<usize> = (0..6).map(|_| m.map_task(&TaskMeta::new("t"))).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn meta_builders() {
        let m = TaskMeta::new("spmv").with_color(3).with_cost(100, 800);
        assert_eq!(m.name, "spmv");
        assert_eq!(m.color, Some(3));
        assert_eq!(m.flops, 100);
        assert_eq!(m.bytes, 800);
    }
}
