//! Mappers: policy objects that assign tasks to processors.
//!
//! In Legion, mapping decisions (which processor runs a task, where
//! instances live) are delegated to an application-replaceable
//! *mapper*. Our thread-pool executor is symmetric shared memory, so
//! mapping is advisory there; the machine simulator in `kdr-machine`
//! honors it exactly, and the dynamic load-balancing experiment
//! (paper §6.3) is implemented as a custom mapper that migrates
//! matrix tiles between nodes.

/// Scheduling metadata attached to a task.
#[derive(Clone, Debug)]
pub struct TaskMeta {
    /// Human-readable kernel name.
    pub name: &'static str,
    /// Color within an index launch, if any.
    pub color: Option<usize>,
    /// Estimated floating-point operations.
    pub flops: u64,
    /// Estimated bytes of memory traffic.
    pub bytes: u64,
}

impl TaskMeta {
    /// Metadata with the given kernel name and no color or cost
    /// estimates.
    pub fn new(name: &'static str) -> Self {
        TaskMeta {
            name,
            color: None,
            flops: 0,
            bytes: 0,
        }
    }

    /// Attach an index-launch color.
    pub fn with_color(mut self, color: usize) -> Self {
        self.color = Some(color);
        self
    }

    /// Attach cost estimates (used by simulators and mappers).
    pub fn with_cost(mut self, flops: u64, bytes: u64) -> Self {
        self.flops = flops;
        self.bytes = bytes;
        self
    }
}

/// Assigns each task a processor index in `0..num_procs`.
pub trait Mapper: Send + Sync {
    /// Number of processors this mapper targets.
    fn num_procs(&self) -> usize;

    /// Pick a processor for a task.
    fn map_task(&self, meta: &TaskMeta) -> usize;
}

/// Spreads index-launch colors round-robin over processors; tasks
/// without a color go to processor 0.
pub struct RoundRobinMapper {
    procs: usize,
}

impl RoundRobinMapper {
    /// A round-robin mapper over `procs` processors (must be nonzero).
    pub fn new(procs: usize) -> Self {
        assert!(procs > 0);
        RoundRobinMapper { procs }
    }
}

impl Mapper for RoundRobinMapper {
    fn num_procs(&self) -> usize {
        self.procs
    }

    fn map_task(&self, meta: &TaskMeta) -> usize {
        meta.color.map_or(0, |c| c % self.procs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_spreads_colors() {
        let m = RoundRobinMapper::new(4);
        assert_eq!(m.num_procs(), 4);
        let mk = |c| TaskMeta::new("t").with_color(c);
        assert_eq!(m.map_task(&mk(0)), 0);
        assert_eq!(m.map_task(&mk(5)), 1);
        assert_eq!(m.map_task(&TaskMeta::new("t")), 0);
    }

    #[test]
    fn meta_builders() {
        let m = TaskMeta::new("spmv").with_color(3).with_cost(100, 800);
        assert_eq!(m.name, "spmv");
        assert_eq!(m.color, Some(3));
        assert_eq!(m.flops, 100);
        assert_eq!(m.bytes, 800);
    }
}
