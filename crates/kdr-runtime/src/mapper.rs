//! Mappers: policy objects that assign tasks to processors.
//!
//! In Legion, mapping decisions (which processor runs a task, where
//! instances live) are delegated to an application-replaceable
//! *mapper*. Our thread-pool executor is symmetric shared memory, so
//! mapping is advisory there; the machine simulator in `kdr-machine`
//! honors it exactly, and the dynamic load-balancing experiment
//! (paper §6.3) is implemented as a custom mapper that migrates
//! matrix tiles between nodes.

/// Scheduling metadata attached to a task.
#[derive(Clone, Debug)]
pub struct TaskMeta {
    /// Human-readable kernel name.
    pub name: &'static str,
    /// Color within an index launch, if any.
    pub color: Option<usize>,
    /// Estimated floating-point operations.
    pub flops: u64,
    /// Estimated bytes of memory traffic.
    pub bytes: u64,
    /// Scheduling priority: 0 is the normal lane, anything greater
    /// routes the task through the executor's express lane, which
    /// workers drain before normal work.
    pub priority: u8,
}

impl TaskMeta {
    /// Metadata with the given kernel name and no color or cost
    /// estimates.
    pub fn new(name: &'static str) -> Self {
        TaskMeta {
            name,
            color: None,
            flops: 0,
            bytes: 0,
            priority: 0,
        }
    }

    /// Attach an index-launch color.
    pub fn with_color(mut self, color: usize) -> Self {
        self.color = Some(color);
        self
    }

    /// Attach cost estimates (used by simulators and mappers).
    pub fn with_cost(mut self, flops: u64, bytes: u64) -> Self {
        self.flops = flops;
        self.bytes = bytes;
        self
    }

    /// Attach a scheduling priority (0 = normal lane, >0 = express
    /// lane drained ahead of normal work).
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }
}

/// Assigns each task a processor index in `0..num_procs`.
pub trait Mapper: Send + Sync {
    /// Number of processors this mapper targets.
    fn num_procs(&self) -> usize;

    /// Pick a processor for a task.
    fn map_task(&self, meta: &TaskMeta) -> usize;
}

/// Spreads index-launch colors round-robin over processors; tasks
/// without a color go to processor 0.
pub struct RoundRobinMapper {
    procs: usize,
}

impl RoundRobinMapper {
    /// A round-robin mapper over `procs` processors (must be nonzero).
    pub fn new(procs: usize) -> Self {
        assert!(procs > 0);
        RoundRobinMapper { procs }
    }
}

impl Mapper for RoundRobinMapper {
    fn num_procs(&self) -> usize {
        self.procs
    }

    fn map_task(&self, meta: &TaskMeta) -> usize {
        meta.color.map_or(0, |c| c % self.procs)
    }
}

/// Pins every task of a partition color to one stable worker, so a
/// tile's kernel payload (CSR/DIA/ELL/BCSR arrays) and the vector
/// piece it touches stay hot in a single worker's cache across traced
/// iterations instead of migrating via steals.
///
/// The contract an execution backend relies on:
///
/// 1. **Stability** — `map_task` is a pure function of the color:
///    color `c` always maps to worker `c % num_procs`, across the
///    whole lifetime of the mapper. Tile tasks *and* elementwise /
///    dot-partial tasks over the same piece carry the same color, so
///    everything touching one piece lands on one worker.
/// 2. **Colorless spread** — tasks without a color (scalar
///    reductions, bookkeeping) are dealt round-robin from an atomic
///    cursor rather than piling onto worker 0.
/// 3. **Advisory only** — idle workers still steal, so a pinned
///    queue never becomes a throughput bottleneck; affinity is a
///    locality hint, not a placement constraint.
/// 4. **Re-mappable** — [`ColorAffinityMapper::remap_color`] installs
///    a per-color override (the hook the live load balancer in
///    `kdr-core::loadbalance` uses to migrate a tile's color to a
///    different worker between iterations). Overrides are consulted
///    on every `map_task` call, so a remap takes effect for the very
///    next task carrying that color; with no overrides installed the
///    lookup costs one relaxed atomic load.
pub struct ColorAffinityMapper {
    procs: usize,
    /// Cursor for dealing colorless tasks.
    next_uncolored: std::sync::atomic::AtomicUsize,
    /// Per-color worker overrides installed by `remap_color`.
    overrides: parking_lot::Mutex<std::collections::HashMap<usize, usize>>,
    /// Fast-path flag: true iff `overrides` is nonempty, so the
    /// common no-override case never touches the lock.
    has_overrides: std::sync::atomic::AtomicBool,
    /// Count of `remap_color` calls, for observability.
    remaps: std::sync::atomic::AtomicU64,
}

impl ColorAffinityMapper {
    /// A color-affinity mapper over `procs` workers (must be nonzero).
    pub fn new(procs: usize) -> Self {
        assert!(procs > 0);
        ColorAffinityMapper {
            procs,
            next_uncolored: std::sync::atomic::AtomicUsize::new(0),
            overrides: parking_lot::Mutex::new(std::collections::HashMap::new()),
            has_overrides: std::sync::atomic::AtomicBool::new(false),
            remaps: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Override the home worker of `color`: every subsequent task
    /// carrying that color maps to `worker % num_procs` instead of
    /// the default `color % num_procs`. Takes effect on the next
    /// `map_task` call — i.e. the next iteration's tasks.
    pub fn remap_color(&self, color: usize, worker: usize) {
        let mut ov = self.overrides.lock();
        ov.insert(color, worker % self.procs);
        self.has_overrides
            .store(true, std::sync::atomic::Ordering::Release);
        self.remaps
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Drop the override for `color`, restoring the stable default
    /// placement `color % num_procs`.
    pub fn reset_color(&self, color: usize) {
        let mut ov = self.overrides.lock();
        ov.remove(&color);
        if ov.is_empty() {
            self.has_overrides
                .store(false, std::sync::atomic::Ordering::Release);
        }
    }

    /// The worker tasks of `color` currently map to (override if one
    /// is installed, otherwise the stable default).
    pub fn current_worker(&self, color: usize) -> usize {
        if self
            .has_overrides
            .load(std::sync::atomic::Ordering::Acquire)
        {
            if let Some(&w) = self.overrides.lock().get(&color) {
                return w;
            }
        }
        color % self.procs
    }

    /// How many `remap_color` calls have been made over the mapper's
    /// lifetime.
    pub fn remap_count(&self) -> u64 {
        self.remaps.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl Mapper for ColorAffinityMapper {
    fn num_procs(&self) -> usize {
        self.procs
    }

    fn map_task(&self, meta: &TaskMeta) -> usize {
        match meta.color {
            Some(c) => self.current_worker(c),
            None => {
                self.next_uncolored
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
                    % self.procs
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_spreads_colors() {
        let m = RoundRobinMapper::new(4);
        assert_eq!(m.num_procs(), 4);
        let mk = |c| TaskMeta::new("t").with_color(c);
        assert_eq!(m.map_task(&mk(0)), 0);
        assert_eq!(m.map_task(&mk(5)), 1);
        assert_eq!(m.map_task(&TaskMeta::new("t")), 0);
    }

    #[test]
    fn color_affinity_is_stable_and_spreads_uncolored() {
        let m = ColorAffinityMapper::new(3);
        let mk = |c| TaskMeta::new("t").with_color(c);
        // Same color → same worker, every time.
        for _ in 0..4 {
            assert_eq!(m.map_task(&mk(7)), 1);
            assert_eq!(m.map_task(&mk(2)), 2);
        }
        // Colorless tasks are dealt round-robin, not piled on 0.
        let picks: Vec<usize> = (0..6).map(|_| m.map_task(&TaskMeta::new("t"))).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn meta_builders() {
        let m = TaskMeta::new("spmv")
            .with_color(3)
            .with_cost(100, 800)
            .with_priority(2);
        assert_eq!(m.name, "spmv");
        assert_eq!(m.color, Some(3));
        assert_eq!(m.flops, 100);
        assert_eq!(m.bytes, 800);
        assert_eq!(m.priority, 2);
    }

    #[test]
    fn remap_overrides_and_reset_restores() {
        let m = ColorAffinityMapper::new(4);
        let mk = |c| TaskMeta::new("t").with_color(c);
        assert_eq!(m.map_task(&mk(6)), 2);
        assert_eq!(m.current_worker(6), 2);
        m.remap_color(6, 1);
        assert_eq!(m.map_task(&mk(6)), 1);
        assert_eq!(m.current_worker(6), 1);
        // Other colors are untouched.
        assert_eq!(m.map_task(&mk(7)), 3);
        // Worker index is reduced modulo the pool size.
        m.remap_color(5, 9);
        assert_eq!(m.map_task(&mk(5)), 1);
        assert_eq!(m.remap_count(), 2);
        m.reset_color(6);
        assert_eq!(m.map_task(&mk(6)), 2);
    }
}
