//! The user-facing runtime: submission, fencing, index launches, and
//! trace capture/replay.
//!
//! Failures never abort the process: user-reachable entry points
//! return typed [`RuntimeError`]s, task panics surface as
//! [`TaskError`]s at fences (see [`Runtime::fence`] /
//! [`Runtime::take_failure`]), and the deterministic fault injector /
//! stall watchdog are armed through [`Runtime::set_fault_plan`] and
//! [`Runtime::set_stall_budget`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::events::{Provenance, SubmitRecord, TaskSpan};
use crate::executor::{Executor, Runnable};
use crate::fault::{FaultPlan, RuntimeError, TaskError};
use crate::graph::Analyzer;
use crate::mapper::Mapper;
use crate::metrics::MetricsSnapshot;
use crate::task::{TaskBuilder, TaskId, TaskMetaLite};
use crate::trace::Trace;

struct TraceCapture {
    id_to_local: HashMap<TaskId, usize>,
    deps: Vec<Vec<usize>>,
}

struct RtState {
    analyzer: Analyzer,
    next_id: TaskId,
    capture: Option<TraceCapture>,
    /// Thread that opened the active capture. Submissions and
    /// replays from other threads block until the capture closes, so
    /// a shared runtime cannot interleave a foreign task into a
    /// trace (which would corrupt the recorded frontier).
    capture_owner: Option<std::thread::ThreadId>,
    analysis_ns: u64,
    tasks_submitted: u64,
    tasks_replayed: u64,
    tasks_analyzed: u64,
}

/// A task-oriented runtime instance owning a worker pool.
///
/// Every method takes `&self`, so one runtime can be shared across
/// threads behind an `Arc`: dependence analysis is serialized by an
/// internal lock, buffer ids are globally unique, and trace capture
/// is gated per-thread (a capture opened on one thread blocks
/// submissions from other threads until it closes, instead of
/// recording their tasks into the wrong trace).
pub struct Runtime {
    exec: Executor,
    state: Mutex<RtState>,
    /// Signaled when the active trace capture closes.
    capture_cv: Condvar,
    /// Reduction stages launched (one per fused multi-dot, however
    /// many scalars it combines).
    reduction_stages: AtomicU64,
    /// Nanoseconds callers spent blocked on reduction results.
    reduction_stall_ns: AtomicU64,
    /// Cost-catalogue predictions served from observed samples
    /// (bumped by the service layer via
    /// [`Runtime::note_catalogue_prediction`]).
    catalogue_hits: AtomicU64,
    /// Cost-catalogue predictions that fell back to the prior.
    catalogue_misses: AtomicU64,
}

impl Runtime {
    /// Create a runtime with `workers` threads.
    pub fn new(workers: usize) -> Self {
        Self::build(Executor::new(workers))
    }

    /// Create a runtime whose ready tasks are routed to workers by a
    /// [`Mapper`] (processor-affinity scheduling; idle workers still
    /// steal).
    pub fn with_mapper(workers: usize, mapper: std::sync::Arc<dyn Mapper>) -> Self {
        Self::build(Executor::with_mapper(workers, Some(mapper)))
    }

    /// Create a runtime with an explicit per-worker event-ring
    /// capacity (records retained between [`Runtime::take_spans`]
    /// calls). Useful for tests and for bounding memory on long runs;
    /// rings overwrite their oldest records when full, they never
    /// block execution.
    pub fn with_event_capacity(workers: usize, ring_capacity: usize) -> Self {
        Self::build(Executor::with_config(workers, None, ring_capacity))
    }

    fn build(exec: Executor) -> Self {
        Runtime {
            exec,
            state: Mutex::new(RtState {
                analyzer: Analyzer::new(),
                next_id: 0,
                capture: None,
                capture_owner: None,
                analysis_ns: 0,
                tasks_submitted: 0,
                tasks_replayed: 0,
                tasks_analyzed: 0,
            }),
            capture_cv: Condvar::new(),
            reduction_stages: AtomicU64::new(0),
            reduction_stall_ns: AtomicU64::new(0),
            catalogue_hits: AtomicU64::new(0),
            catalogue_misses: AtomicU64::new(0),
        }
    }

    /// Count one cost-catalogue prediction: `hit` when it was served
    /// from observed samples, miss when it fell back to the roofline
    /// prior. Called by the service layer at admission so catalogue
    /// health surfaces in [`Runtime::metrics`] next to everything
    /// else.
    pub fn note_catalogue_prediction(&self, hit: bool) {
        if hit {
            self.catalogue_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.catalogue_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Enable or disable per-kernel execution timing independently of
    /// event logging: workers stamp task start/end so
    /// [`MetricsSnapshot::task_execute_ns`] accumulates, without
    /// paying for span records. Two clock reads per task when on; one
    /// relaxed load when off.
    pub fn enable_kernel_timing(&self, on: bool) {
        self.exec.set_kernel_timing(on);
    }

    /// Count one global reduction stage (a fused multi-dot counts
    /// once, however many scalars it combines). Backends call this
    /// when they launch a combine task.
    pub fn record_reduction_stage(&self) {
        self.reduction_stages.fetch_add(1, Ordering::Relaxed);
    }

    /// Account nanoseconds a caller spent blocked waiting for a
    /// reduction result to materialize.
    pub fn record_reduction_stall_ns(&self, ns: u64) {
        self.reduction_stall_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Lock the state, blocking while another thread holds an open
    /// trace capture (the capture owner itself passes through).
    fn lock_past_foreign_capture(&self) -> parking_lot::MutexGuard<'_, RtState> {
        let mut st = self.state.lock();
        while st.capture.is_some() && st.capture_owner != Some(std::thread::current().id()) {
            self.capture_cv.wait(&mut st);
        }
        st
    }

    /// Create a runtime sized to the machine's available parallelism.
    pub fn with_default_workers() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Self::new(n)
    }

    /// Number of worker threads.
    pub fn num_workers(&self) -> usize {
        self.exec.num_workers()
    }

    /// Submit one task; returns its id. Dependences are derived
    /// automatically from the task's declared requirements. Fails
    /// with [`RuntimeError::MissingBody`] if `TaskBuilder::body` was
    /// never called.
    pub fn submit(&self, task: TaskBuilder) -> Result<TaskId, RuntimeError> {
        let lites = task.req_lites();
        let body = match task.body {
            Some(b) => b,
            None => return Err(RuntimeError::MissingBody { task: task.name }),
        };
        let reqs = Arc::new(task.reqs);

        let mut st = self.lock_past_foreign_capture();
        let id = st.next_id;
        st.next_id += 1;
        st.tasks_submitted += 1;
        st.tasks_analyzed += 1;
        let t0 = Instant::now();
        let deps = st.analyzer.analyze(id, &lites);
        st.analysis_ns += t0.elapsed().as_nanos() as u64;
        if let Some(cap) = &mut st.capture {
            let local = cap.deps.len();
            let local_deps = deps
                .iter()
                .filter_map(|d| cap.id_to_local.get(d).copied())
                .collect();
            cap.id_to_local.insert(id, local);
            cap.deps.push(local_deps);
        }
        if self.exec.events().enabled() {
            self.exec.events().record_submit(SubmitRecord {
                id,
                name: task.name,
                provenance: Provenance::Analyzed,
                submit_ns: self.exec.events().now_ns(),
                deps: deps.clone(),
            });
        }
        // Hold the state lock across executor submission so tasks
        // enter the executor in analysis order (which also keeps
        // fault-injection decisions deterministic).
        self.exec.submit(
            Runnable {
                id,
                name: task.name,
                body,
                reqs,
                meta: TaskMetaLite::from_meta(&task.meta),
                ready_ns: 0,
                fault: None,
                poisoned: false,
            },
            &deps,
        );
        drop(st);
        Ok(id)
    }

    /// Launch one task per color in `0..colors` (Legion's index task
    /// launch). `make(color)` builds the point task.
    pub fn index_launch(
        &self,
        colors: usize,
        mut make: impl FnMut(usize) -> TaskBuilder,
    ) -> Result<Vec<TaskId>, RuntimeError> {
        (0..colors).map(|c| self.submit(make(c))).collect()
    }

    /// Block until all submitted tasks have completed. If any task
    /// failed since the last [`Runtime::take_failure`], returns the
    /// first [`TaskError`] — and keeps returning it on subsequent
    /// fences until the failure is taken, so a failure cannot be
    /// silently lost between fences.
    pub fn fence(&self) -> Result<(), TaskError> {
        self.exec.fence()
    }

    /// Remove and return the recorded task failure, if any, re-arming
    /// the runtime for further work.
    pub fn take_failure(&self) -> Option<TaskError> {
        self.exec.take_failure()
    }

    /// Arm (or disarm, with `None`) the deterministic fault injector.
    /// Decisions are made at submission time, which the runtime
    /// serializes, so a fixed seed reproduces the same faults
    /// run-to-run. Disarmed cost: one relaxed atomic load per
    /// submitted task.
    pub fn set_fault_plan(&self, plan: Option<FaultPlan>) {
        self.exec.set_fault_plan(plan);
    }

    /// Set (or clear, with `None`) the watchdog stall budget: tasks
    /// executing longer than this are counted in
    /// [`MetricsSnapshot::tasks_stalled`]. Disabled cost: one relaxed
    /// atomic load per executed task.
    pub fn set_stall_budget(&self, budget: Option<Duration>) {
        self.exec.set_stall_budget(budget);
    }

    /// Begin capturing a trace. Fences first (traces start from a
    /// quiescent runtime) and resets the analyzer, which is sound
    /// because every frontier entry then refers to a finished task.
    ///
    /// On a shared runtime, captures are exclusive: if another thread
    /// has a capture open, this call blocks until it closes; while
    /// this thread's capture is open, submissions and replays from
    /// other threads block. Re-entry from the capture-owning thread
    /// still fails with [`RuntimeError::NestedTrace`].
    pub fn begin_trace(&self) -> Result<(), RuntimeError> {
        loop {
            self.exec.fence().map_err(RuntimeError::TaskFailed)?;
            let mut st = self.state.lock();
            if st.capture.is_some() {
                if st.capture_owner == Some(std::thread::current().id()) {
                    return Err(RuntimeError::NestedTrace);
                }
                // Foreign capture in flight: wait for it to close,
                // then retry from the fence.
                self.capture_cv.wait(&mut st);
                drop(st);
                continue;
            }
            // Between the fence and taking the lock, another thread
            // may have submitted work; the analyzer reset below is
            // only sound from a quiescent runtime, so re-check under
            // the lock (submissions hold this lock, so quiescence
            // observed here holds until we install the capture).
            if self.exec.outstanding() > 0 {
                drop(st);
                continue;
            }
            st.analyzer.clear();
            st.capture = Some(TraceCapture {
                id_to_local: HashMap::new(),
                deps: Vec::new(),
            });
            st.capture_owner = Some(std::thread::current().id());
            return Ok(());
        }
    }

    /// Finish capturing; returns the trace. Fences so the recorded
    /// frontier is final.
    ///
    /// The capture closes even when the fence reports a task failure
    /// (the trace is void and the failure is returned) — a capture
    /// left open by a failed step would gate every other thread's
    /// submissions on this runtime forever.
    pub fn end_trace(&self) -> Result<Trace, RuntimeError> {
        let fenced = self.exec.fence();
        let mut st = self.state.lock();
        // Only the thread that opened the capture may close it; from
        // any other thread there is no active trace to end.
        if st.capture_owner != Some(std::thread::current().id()) {
            return Err(RuntimeError::NoActiveTrace);
        }
        let cap = match st.capture.take() {
            Some(c) => c,
            None => return Err(RuntimeError::NoActiveTrace),
        };
        st.capture_owner = None;
        // Unblock threads parked behind the capture gate.
        self.capture_cv.notify_all();
        if let Err(e) = fenced {
            return Err(RuntimeError::TaskFailed(e));
        }
        let frontier = st
            .analyzer
            .snapshot()
            .into_iter()
            .map(|(buf, mut f)| {
                for e in &mut f.entries {
                    e.task = *cap
                        .id_to_local
                        .get(&e.task)
                        .expect("frontier task must be intra-trace")
                        as TaskId;
                }
                (buf, f)
            })
            .collect();
        Ok(Trace {
            deps: cap.deps,
            frontier,
        })
    }

    /// Replay a captured trace with a fresh, same-shaped task list:
    /// `tasks[i]` must declare the same accesses as the `i`-th
    /// captured task. Dependence analysis is skipped; the recorded
    /// edges and final frontier are installed instead.
    pub fn replay(
        &self,
        trace: &Trace,
        tasks: Vec<TaskBuilder>,
    ) -> Result<Vec<TaskId>, RuntimeError> {
        if tasks.len() != trace.len() {
            return Err(RuntimeError::ReplayLengthMismatch {
                expected: trace.len(),
                got: tasks.len(),
            });
        }
        if let Some(t) = tasks.iter().find(|t| t.body.is_none()) {
            return Err(RuntimeError::MissingBody { task: t.name });
        }
        self.exec.fence().map_err(RuntimeError::TaskFailed)?;
        let mut st = self.lock_past_foreign_capture();
        let base = st.next_id;
        st.next_id += tasks.len() as TaskId;
        st.tasks_submitted += tasks.len() as u64;
        st.tasks_replayed += tasks.len() as u64;
        let mut ids = Vec::with_capacity(tasks.len());
        for (i, task) in tasks.into_iter().enumerate() {
            let id = base + i as TaskId;
            let body = task.body.expect("bodies were checked above");
            let reqs = Arc::new(task.reqs);
            let deps: Vec<TaskId> = trace.deps[i].iter().map(|&l| base + l as TaskId).collect();
            if self.exec.events().enabled() {
                self.exec.events().record_submit(SubmitRecord {
                    id,
                    name: task.name,
                    provenance: Provenance::Replayed,
                    submit_ns: self.exec.events().now_ns(),
                    deps: deps.clone(),
                });
            }
            self.exec.submit(
                Runnable {
                    id,
                    name: task.name,
                    body,
                    reqs,
                    meta: TaskMetaLite::from_meta(&task.meta),
                    ready_ns: 0,
                    fault: None,
                    poisoned: false,
                },
                &deps,
            );
            ids.push(id);
        }
        st.analyzer.install(&trace.frontier, |local| base + local);
        drop(st);
        Ok(ids)
    }

    /// Enable or disable structured event logging. Off by default;
    /// while off, the event layer costs one relaxed atomic load per
    /// task on the execute path and nothing on the submit path.
    pub fn enable_events(&self, on: bool) {
        self.exec.events().set_enabled(on);
    }

    /// Whether event logging is currently enabled.
    pub fn events_enabled(&self) -> bool {
        self.exec.events().enabled()
    }

    /// Drain the event log into complete [`TaskSpan`]s, sorted by
    /// task id. Fences first so every recorded task has retired and
    /// no worker is concurrently writing its ring (a recorded task
    /// failure does not block the drain — it stays available through
    /// [`Runtime::take_failure`]). Spans whose execution record was
    /// overwritten by ring wraparound are omitted (counted in
    /// [`MetricsSnapshot::events_dropped`]).
    pub fn take_spans(&self) -> Vec<TaskSpan> {
        let _ = self.exec.fence();
        self.exec.events().drain_spans()
    }

    /// A full metrics snapshot: activity counters plus queue-wait /
    /// execute latency distributions, fault-tolerance counters,
    /// per-kernel execution tallies, and event-log health. Safe to
    /// call at any time (no fence).
    pub fn metrics(&self) -> MetricsSnapshot {
        let st = self.state.lock();
        let events = self.exec.events();
        MetricsSnapshot {
            tasks_submitted: st.tasks_submitted,
            tasks_executed: self.exec.executed(),
            tasks_analyzed: st.tasks_analyzed,
            tasks_replayed: st.tasks_replayed,
            tasks_stolen: self.exec.stolen(),
            edges_created: st.analyzer.edges_created,
            analysis_ns: st.analysis_ns,
            task_failures: self.exec.task_failures(),
            tasks_poisoned: self.exec.tasks_poisoned(),
            tasks_stalled: self.exec.tasks_stalled(),
            faults_injected: self.exec.faults_injected(),
            events_recorded: events.events_recorded(),
            events_dropped: events.events_dropped(),
            reduction_stages: self.reduction_stages.load(Ordering::Relaxed),
            reduction_stall_ns: self.reduction_stall_ns.load(Ordering::Relaxed),
            queue_wait_ns: events.queue_wait_ns.snapshot(),
            execute_ns: events.execute_ns.snapshot(),
            task_counts: self.exec.task_counts(),
            task_execute_ns: self.exec.task_execute_ns(),
            catalogue_hits: self.catalogue_hits.load(Ordering::Relaxed),
            catalogue_misses: self.catalogue_misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Buffer;
    use crate::fault::{FaultKind, FaultSpec, FireSchedule, TaskErrorKind};
    use crate::task::TaskBuilder;
    use kdr_index::IntervalSet;

    #[test]
    fn dataflow_through_buffers() {
        let rt = Runtime::new(4);
        let a = Buffer::filled(8, 1.0f64);
        let b = Buffer::filled(8, 0.0f64);
        // b = 2 * a, then a = b + 1 (serialized by analysis).
        rt.submit(
            TaskBuilder::new("scale")
                .read_all(&a)
                .write_all(&b)
                .body(|ctx| {
                    let a = ctx.read::<f64>(0);
                    let b = ctx.write::<f64>(1);
                    for i in 0..8 {
                        b.set(i, 2.0 * a.get(i));
                    }
                }),
        )
        .unwrap();
        rt.submit(
            TaskBuilder::new("incr")
                .read_all(&b)
                .write_all(&a)
                .body(|ctx| {
                    let b = ctx.read::<f64>(0);
                    let a = ctx.write::<f64>(1);
                    for i in 0..8 {
                        a.set(i, b.get(i) + 1.0);
                    }
                }),
        )
        .unwrap();
        rt.fence().unwrap();
        assert_eq!(a.snapshot(), vec![3.0; 8]);
        assert_eq!(b.snapshot(), vec![2.0; 8]);
        let s = rt.metrics();
        assert_eq!(s.tasks_submitted, 2);
        assert_eq!(s.tasks_executed, 2);
        assert!(s.edges_created >= 1);
    }

    #[test]
    fn disjoint_pieces_execute_in_any_order() {
        let rt = Runtime::new(4);
        let v = Buffer::filled(100, 0.0f64);
        rt.index_launch(4, |c| {
            let lo = c as u64 * 25;
            TaskBuilder::new("fill")
                .write(&v, IntervalSet::from_range(lo, lo + 25))
                .body(move |ctx| {
                    let w = ctx.write::<f64>(0);
                    for i in lo as usize..lo as usize + 25 {
                        w.set(i, c as f64);
                    }
                })
        })
        .unwrap();
        rt.fence().unwrap();
        let snap = v.snapshot();
        for c in 0..4 {
            assert!(snap[c * 25..(c + 1) * 25].iter().all(|&x| x == c as f64));
        }
    }

    #[test]
    fn overlapping_writes_serialize() {
        // 100 increments of the same cell must not lose updates.
        let rt = Runtime::new(8);
        let v = Buffer::filled(1, 0.0f64);
        for _ in 0..100 {
            rt.submit(TaskBuilder::new("inc").write_all(&v).body(|ctx| {
                let w = ctx.write::<f64>(0);
                w.set(0, w.get(0) + 1.0);
            }))
            .unwrap();
        }
        rt.fence().unwrap();
        assert_eq!(v.snapshot(), vec![100.0]);
    }

    #[test]
    fn futures_deliver_scalars() {
        let rt = Runtime::new(2);
        let v = Buffer::from_vec((0..10).map(|i| i as f64).collect());
        let (p, f) = crate::future::promise::<f64>();
        rt.submit(TaskBuilder::new("sum").read_all(&v).body(move |ctx| {
            let v = ctx.read::<f64>(0);
            let mut s = 0.0;
            for i in 0..10 {
                s += v.get(i);
            }
            p.set(s);
        }))
        .unwrap();
        assert_eq!(f.get(), 45.0);
    }

    #[test]
    fn missing_body_is_a_typed_error() {
        let rt = Runtime::new(1);
        let v = Buffer::filled(1, 0.0f64);
        let err = rt
            .submit(TaskBuilder::new("headless").write_all(&v))
            .unwrap_err();
        assert_eq!(err, RuntimeError::MissingBody { task: "headless" });
        // The runtime is unaffected.
        rt.fence().unwrap();
        assert_eq!(rt.metrics().tasks_submitted, 0);
    }

    #[test]
    fn trace_capture_and_replay() {
        let rt = Runtime::new(4);
        let v = Buffer::filled(4, 0.0f64);
        let step = |v: &Buffer<f64>| {
            TaskBuilder::new("inc").write_all(v).body(|ctx| {
                let w = ctx.write::<f64>(0);
                for i in 0..4 {
                    w.set(i, w.get(i) + 1.0);
                }
            })
        };
        rt.begin_trace().unwrap();
        rt.submit(step(&v)).unwrap();
        rt.submit(step(&v)).unwrap();
        let trace = rt.end_trace().unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.num_edges(), 1);
        // Replay three more iterations.
        for _ in 0..3 {
            rt.replay(&trace, vec![step(&v), step(&v)]).unwrap();
        }
        rt.fence().unwrap();
        assert_eq!(v.snapshot(), vec![8.0; 4]);
        let s = rt.metrics();
        assert_eq!(s.tasks_replayed, 6);
        assert_eq!(s.tasks_executed, 8);
    }

    #[test]
    fn trace_misuse_is_typed() {
        let rt = Runtime::new(1);
        assert_eq!(rt.end_trace().unwrap_err(), RuntimeError::NoActiveTrace);
        rt.begin_trace().unwrap();
        assert_eq!(rt.begin_trace().unwrap_err(), RuntimeError::NestedTrace);
        let _ = rt.end_trace().unwrap();
    }

    #[test]
    fn post_replay_submissions_depend_on_replayed_tasks() {
        let rt = Runtime::new(2);
        let v = Buffer::filled(1, 0.0f64);
        let inc = |v: &Buffer<f64>| {
            TaskBuilder::new("inc").write_all(v).body(|ctx| {
                let w = ctx.write::<f64>(0);
                w.set(0, w.get(0) + 1.0);
            })
        };
        rt.begin_trace().unwrap();
        rt.submit(inc(&v)).unwrap();
        let trace = rt.end_trace().unwrap();
        rt.replay(&trace, vec![inc(&v)]).unwrap();
        // Normal submission after a replay must see the replayed write.
        rt.submit(TaskBuilder::new("dbl").write_all(&v).body(|ctx| {
            let w = ctx.write::<f64>(0);
            w.set(0, w.get(0) * 10.0);
        }))
        .unwrap();
        rt.fence().unwrap();
        assert_eq!(v.snapshot(), vec![20.0]);
    }

    #[test]
    fn replay_is_cheaper_than_analysis() {
        let rt = Runtime::new(2);
        let v = Buffer::filled(64, 0.0f64);
        let mk = |v: &Buffer<f64>, c: usize| {
            let lo = c as u64 * 8;
            TaskBuilder::new("w")
                .write(v, IntervalSet::from_range(lo, lo + 8))
                .body(|_| {})
        };
        rt.begin_trace().unwrap();
        for c in 0..8 {
            rt.submit(mk(&v, c)).unwrap();
        }
        let trace = rt.end_trace().unwrap();
        let before = rt.metrics().analysis_ns;
        rt.replay(&trace, (0..8).map(|c| mk(&v, c)).collect())
            .unwrap();
        rt.fence().unwrap();
        assert_eq!(
            rt.metrics().analysis_ns,
            before,
            "replay must not spend analysis time"
        );
    }

    #[test]
    fn replay_length_mismatch_is_typed() {
        let rt = Runtime::new(1);
        rt.begin_trace().unwrap();
        let trace = rt.end_trace().unwrap();
        let v = Buffer::filled(1, 0.0f64);
        let err = rt
            .replay(
                &trace,
                vec![TaskBuilder::new("x").write_all(&v).body(|_| {})],
            )
            .unwrap_err();
        assert_eq!(
            err,
            RuntimeError::ReplayLengthMismatch {
                expected: 0,
                got: 1
            }
        );
    }

    #[test]
    fn panic_poisons_dependents_and_fence_reports() {
        let rt = Runtime::new(2);
        let v = Buffer::filled(4, 1.0f64);
        rt.submit(
            TaskBuilder::new("explode")
                .write_all(&v)
                .body(|_| panic!("kaboom")),
        )
        .unwrap();
        // Depends on the panicking write: must be retired, not run.
        rt.submit(TaskBuilder::new("after").write_all(&v).body(|ctx| {
            let w = ctx.write::<f64>(0);
            w.set(0, 99.0);
        }))
        .unwrap();
        let err = rt.fence().unwrap_err();
        assert_eq!(err.name, "explode");
        assert!(matches!(err.kind, TaskErrorKind::Panicked(_)));
        assert_eq!(v.snapshot()[0], 1.0, "poisoned successor must not write");
        let m = rt.metrics();
        assert_eq!(m.task_failures, 1);
        assert_eq!(m.tasks_poisoned, 1);
        // Clear and continue.
        assert!(rt.take_failure().is_some());
        rt.fence().unwrap();
    }

    #[test]
    fn poisoned_future_errors_instead_of_deadlocking() {
        let rt = Runtime::new(2);
        let v = Buffer::filled(4, 1.0f64);
        let (p, f) = crate::future::promise::<f64>();
        rt.submit(TaskBuilder::new("explode").write_all(&v).body(|_| {
            panic!("pre-promise failure");
        }))
        .unwrap();
        // The reader task depends on the poisoned write; it is
        // retired without running, dropping `p` and poisoning `f`.
        rt.submit(TaskBuilder::new("read").read_all(&v).body(move |ctx| {
            p.set(ctx.read::<f64>(0).get(0));
        }))
        .unwrap();
        assert!(f.wait().is_err(), "future must poison, not deadlock");
        assert!(rt.take_failure().is_some());
    }

    #[test]
    fn injected_fault_is_reproducible_across_runtimes() {
        let run = || {
            let rt = Runtime::new(3);
            rt.set_fault_plan(Some(FaultPlan::seeded(99).with(FaultSpec {
                name_contains: "work".into(),
                kind: FaultKind::Panic,
                schedule: FireSchedule::Random {
                    millionths: 120_000,
                },
                max_fires: 1,
            })));
            let v = Buffer::filled(1, 0.0f64);
            for _ in 0..40 {
                rt.submit(TaskBuilder::new("work").write_all(&v).body(|ctx| {
                    let w = ctx.write::<f64>(0);
                    w.set(0, w.get(0) + 1.0);
                }))
                .unwrap();
            }
            let failed = rt.fence().err().map(|e| e.task);
            (failed, rt.metrics().faults_injected)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "seeded injection must reproduce exactly");
        assert_eq!(a.1, 1, "max_fires=1 must cap injections");
    }
}
