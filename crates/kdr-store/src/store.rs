//! The durable plan/session store: a versioned, checksummed on-disk
//! format.
//!
//! # Record layout (format version 1)
//!
//! ```text
//! header:  magic "KDRSTORE" (8) | version u32 | record_count u64
//! record:  tag u8 | payload_len u64 | payload | fnv1a64(tag ∥ payload) u64
//! ```
//!
//! All integers little-endian; `f64` round-trips through
//! [`f64::to_bits`] so reloaded values are bit-identical. Three
//! record tags exist in version 1: catalogue entry (1), tenant (2),
//! session (3). Unknown tags, unknown wire codes, length overruns,
//! checksum mismatches, and trailing bytes all surface as typed
//! [`StoreError`]s — decoding never panics and never silently
//! returns partial data. A version bump is rejected with
//! [`StoreError::UnsupportedVersion`] before any record is read.

use std::collections::BTreeMap;
use std::path::Path;

use kdr_sparse::{KernelKind, StructureKey};

use crate::catalogue::CatalogueKey;

/// The store format version this build writes and accepts.
pub const STORE_FORMAT_VERSION: u32 = 1;

const MAGIC: &[u8; 8] = b"KDRSTORE";

const TAG_CATALOGUE: u8 = 1;
const TAG_TENANT: u8 = 2;
const TAG_SESSION: u8 = 3;

/// Wire code meaning "no forced kernel — lower with Auto".
const KERNEL_CODE_AUTO: u8 = 255;

/// Typed failure loading or saving a store. Every malformed input
/// maps to one of these — decoding never panics.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure reading or writing the store file.
    Io(std::io::Error),
    /// The file does not start with the store magic — not a store
    /// file at all (or its header was corrupted).
    BadMagic,
    /// The file's format version is not one this build reads.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
    },
    /// The file ends before the declared data does.
    Truncated {
        /// Byte offset at which more data was expected.
        offset: usize,
    },
    /// A record's checksum does not match its contents.
    ChecksumMismatch {
        /// Byte offset of the failing record.
        offset: usize,
    },
    /// A record decoded to structurally invalid data.
    Malformed {
        /// Byte offset of the failing record (or region).
        offset: usize,
        /// What was wrong.
        what: &'static str,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::BadMagic => write!(f, "not a kdr store file (bad magic)"),
            StoreError::UnsupportedVersion { found } => write!(
                f,
                "unsupported store format version {found} (this build reads {STORE_FORMAT_VERSION})"
            ),
            StoreError::Truncated { offset } => {
                write!(f, "store file truncated at byte {offset}")
            }
            StoreError::ChecksumMismatch { offset } => {
                write!(f, "store record checksum mismatch at byte {offset}")
            }
            StoreError::Malformed { offset, what } => {
                write!(f, "malformed store record at byte {offset}: {what}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// One persisted tenant: id and scheduler weight.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StoreTenant {
    /// Tenant id.
    pub tenant: u64,
    /// Stride-scheduler weight.
    pub weight: u32,
}

/// The operator of a persisted session.
#[derive(Clone, PartialEq, Debug)]
pub enum StoreOperator {
    /// A matrix-free stencil descriptor: `(kind code, nx, ny, nz)`.
    Stencil {
        /// [`kdr_sparse::StencilKind`] wire code.
        kind: u8,
        /// Grid extent in x.
        nx: u64,
        /// Grid extent in y.
        ny: u64,
        /// Grid extent in z.
        nz: u64,
    },
    /// An assembled matrix as sorted COO triplets (bit-exact values).
    Assembled {
        /// Row-space size.
        rows: u64,
        /// Column-space size.
        cols: u64,
        /// `(row, col, value)` triplets in registration order.
        entries: Vec<(u64, u64, f64)>,
    },
}

/// One persisted session: everything the service needs to rebuild
/// (and pre-warm) it identically after a restart.
#[derive(Clone, PartialEq, Debug)]
pub struct StoreSession {
    /// Session id (global across shards).
    pub session: u64,
    /// Owning tenant.
    pub tenant: u64,
    /// Unknown count.
    pub unknowns: u64,
    /// Partition piece count.
    pub pieces: u64,
    /// Solver wire code (service-defined mapping).
    pub solver_code: u8,
    /// First integer solver parameter (restart length, s, …).
    pub solver_p0: u64,
    /// First float solver parameter (bit-exact).
    pub solver_f0: f64,
    /// Second float solver parameter (bit-exact).
    pub solver_f1: f64,
    /// Lowered kernel kind to force on rebuild
    /// ([`KernelKind::code`]), or 255 for Auto. Forcing the recorded
    /// kind replays the pre-restart lowering decision exactly, even
    /// if the catalogue has since learned different costs.
    pub kernel_code: u8,
    /// Jobs the session had completed (trace metadata: a nonzero
    /// count marks the plan warm).
    pub jobs_completed: u64,
    /// Step traces the session's backend had captured (trace
    /// metadata).
    pub steps_captured: u64,
    /// The operator to re-register.
    pub operator: StoreOperator,
}

impl StoreSession {
    /// The forced kernel on rebuild (`None` = Auto). Errors on an
    /// unknown (future) code.
    pub fn forced_kernel(&self) -> Result<Option<KernelKind>, StoreError> {
        if self.kernel_code == KERNEL_CODE_AUTO {
            return Ok(None);
        }
        KernelKind::from_code(self.kernel_code)
            .map(Some)
            .ok_or(StoreError::Malformed {
                offset: 0,
                what: "unknown kernel code",
            })
    }

    /// Encode a forced-kernel choice as the wire code.
    pub fn kernel_code_for(kind: Option<KernelKind>) -> u8 {
        kind.map_or(KERNEL_CODE_AUTO, |k| k.code())
    }
}

/// Everything one `save_store` call persists: the cost catalogue plus
/// per-tenant session state.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct StoreBundle {
    /// Observed catalogue entries `(key, samples, mean seconds)`.
    pub catalogue: Vec<(CatalogueKey, u64, f64)>,
    /// Registered tenants in id order.
    pub tenants: Vec<StoreTenant>,
    /// Sessions in id order.
    pub sessions: Vec<StoreSession>,
}

// ---------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------

/// FNV-1a over `tag ∥ payload` — cheap, dependency-free, and plenty
/// to catch corruption (integrity, not authentication).
fn fnv1a(tag: u8, payload: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut step = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    };
    step(tag);
    for &b in payload {
        step(b);
    }
    h
}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
}

fn push_record(out: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    out.push(tag);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv1a(tag, payload).to_le_bytes());
}

/// Encode a bundle into the on-disk byte format.
pub fn encode(bundle: &StoreBundle) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&STORE_FORMAT_VERSION.to_le_bytes());
    let count = bundle.catalogue.len() + bundle.tenants.len() + bundle.sessions.len();
    out.extend_from_slice(&(count as u64).to_le_bytes());

    for (key, samples, mean) in &bundle.catalogue {
        let mut w = Writer { buf: Vec::new() };
        w.buf.extend_from_slice(&key.structure.to_bytes());
        w.u8(key.kernel.code());
        w.u8(key.pieces_log2);
        w.u64(*samples);
        w.f64(*mean);
        push_record(&mut out, TAG_CATALOGUE, &w.buf);
    }
    for t in &bundle.tenants {
        let mut w = Writer { buf: Vec::new() };
        w.u64(t.tenant);
        w.u32(t.weight);
        push_record(&mut out, TAG_TENANT, &w.buf);
    }
    for s in &bundle.sessions {
        let mut w = Writer { buf: Vec::new() };
        w.u64(s.session);
        w.u64(s.tenant);
        w.u64(s.unknowns);
        w.u64(s.pieces);
        w.u8(s.solver_code);
        w.u64(s.solver_p0);
        w.f64(s.solver_f0);
        w.f64(s.solver_f1);
        w.u8(s.kernel_code);
        w.u64(s.jobs_completed);
        w.u64(s.steps_captured);
        match &s.operator {
            StoreOperator::Stencil { kind, nx, ny, nz } => {
                w.u8(0);
                w.u8(*kind);
                w.u64(*nx);
                w.u64(*ny);
                w.u64(*nz);
            }
            StoreOperator::Assembled {
                rows,
                cols,
                entries,
            } => {
                w.u8(1);
                w.u64(*rows);
                w.u64(*cols);
                w.u64(entries.len() as u64);
                for (r, c, v) in entries {
                    w.u64(*r);
                    w.u64(*c);
                    w.f64(*v);
                }
            }
        }
        push_record(&mut out, TAG_SESSION, &w.buf);
    }
    out
}

// ---------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------

/// Bounds-checked little-endian reader over a payload slice.
struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
    /// File offset of `data[0]`, for error reporting.
    base: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.pos + n > self.data.len() {
            return Err(StoreError::Malformed {
                offset: self.base + self.pos,
                what: "record payload shorter than its fields",
            });
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn finish(&self) -> Result<(), StoreError> {
        if self.pos != self.data.len() {
            return Err(StoreError::Malformed {
                offset: self.base + self.pos,
                what: "record payload longer than its fields",
            });
        }
        Ok(())
    }
}

/// Decode a byte buffer produced by [`encode`]. Any corruption,
/// truncation, or version mismatch returns a typed error; this
/// function never panics on arbitrary input.
pub fn decode(data: &[u8]) -> Result<StoreBundle, StoreError> {
    let mut pos = 0usize;
    let need = |pos: usize, n: usize| -> Result<(), StoreError> {
        if pos + n > data.len() {
            Err(StoreError::Truncated { offset: data.len() })
        } else {
            Ok(())
        }
    };
    need(pos, 8)?;
    if &data[0..8] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    pos += 8;
    need(pos, 4)?;
    let version = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap());
    if version != STORE_FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion { found: version });
    }
    pos += 4;
    need(pos, 8)?;
    let count = u64::from_le_bytes(data[pos..pos + 8].try_into().unwrap());
    pos += 8;

    let mut bundle = StoreBundle::default();
    // Duplicate-key screens: a corrupt record must not silently
    // shadow a good one.
    let mut cat_seen: BTreeMap<CatalogueKey, ()> = BTreeMap::new();

    for _ in 0..count {
        let rec_off = pos;
        need(pos, 1 + 8)?;
        let tag = data[pos];
        let len = u64::from_le_bytes(data[pos + 1..pos + 9].try_into().unwrap());
        pos += 9;
        let len = usize::try_from(len).map_err(|_| StoreError::Truncated { offset: rec_off })?;
        if len > data.len().saturating_sub(pos) {
            return Err(StoreError::Truncated { offset: data.len() });
        }
        let payload = &data[pos..pos + len];
        pos += len;
        need(pos, 8)?;
        let checksum = u64::from_le_bytes(data[pos..pos + 8].try_into().unwrap());
        pos += 8;
        if fnv1a(tag, payload) != checksum {
            return Err(StoreError::ChecksumMismatch { offset: rec_off });
        }
        let mut r = Reader {
            data: payload,
            pos: 0,
            base: rec_off + 9,
        };
        match tag {
            TAG_CATALOGUE => {
                let sk = StructureKey::from_bytes(r.take(5)?.try_into().unwrap());
                let kernel =
                    KernelKind::from_code(r.u8()?).ok_or(StoreError::Malformed {
                        offset: rec_off,
                        what: "unknown kernel code in catalogue entry",
                    })?;
                let pieces_log2 = r.u8()?;
                let samples = r.u64()?;
                let mean = r.f64()?;
                r.finish()?;
                let key = CatalogueKey {
                    structure: sk,
                    kernel,
                    pieces_log2,
                };
                if cat_seen.insert(key, ()).is_some() {
                    return Err(StoreError::Malformed {
                        offset: rec_off,
                        what: "duplicate catalogue key",
                    });
                }
                bundle.catalogue.push((key, samples, mean));
            }
            TAG_TENANT => {
                let tenant = r.u64()?;
                let weight = r.u32()?;
                r.finish()?;
                bundle.tenants.push(StoreTenant { tenant, weight });
            }
            TAG_SESSION => {
                let session = r.u64()?;
                let tenant = r.u64()?;
                let unknowns = r.u64()?;
                let pieces = r.u64()?;
                let solver_code = r.u8()?;
                let solver_p0 = r.u64()?;
                let solver_f0 = r.f64()?;
                let solver_f1 = r.f64()?;
                let kernel_code = r.u8()?;
                if kernel_code != KERNEL_CODE_AUTO && KernelKind::from_code(kernel_code).is_none()
                {
                    return Err(StoreError::Malformed {
                        offset: rec_off,
                        what: "unknown kernel code in session",
                    });
                }
                let jobs_completed = r.u64()?;
                let steps_captured = r.u64()?;
                let operator = match r.u8()? {
                    0 => StoreOperator::Stencil {
                        kind: r.u8()?,
                        nx: r.u64()?,
                        ny: r.u64()?,
                        nz: r.u64()?,
                    },
                    1 => {
                        let rows = r.u64()?;
                        let cols = r.u64()?;
                        let nnz = r.u64()?;
                        // A flipped count must not trigger a huge
                        // allocation: every entry is 24 bytes, so the
                        // remaining payload bounds it.
                        let remaining = payload.len().saturating_sub(r.pos);
                        if (nnz as u128) * 24 > remaining as u128 {
                            return Err(StoreError::Malformed {
                                offset: rec_off,
                                what: "entry count exceeds record payload",
                            });
                        }
                        let mut entries = Vec::with_capacity(nnz as usize);
                        for _ in 0..nnz {
                            entries.push((r.u64()?, r.u64()?, r.f64()?));
                        }
                        StoreOperator::Assembled {
                            rows,
                            cols,
                            entries,
                        }
                    }
                    _ => {
                        return Err(StoreError::Malformed {
                            offset: rec_off,
                            what: "unknown operator discriminant",
                        })
                    }
                };
                r.finish()?;
                bundle.sessions.push(StoreSession {
                    session,
                    tenant,
                    unknowns,
                    pieces,
                    solver_code,
                    solver_p0,
                    solver_f0,
                    solver_f1,
                    kernel_code,
                    jobs_completed,
                    steps_captured,
                    operator,
                });
            }
            _ => {
                return Err(StoreError::Malformed {
                    offset: rec_off,
                    what: "unknown record tag",
                })
            }
        }
    }
    if pos != data.len() {
        return Err(StoreError::Malformed {
            offset: pos,
            what: "trailing bytes after final record",
        });
    }
    Ok(bundle)
}

/// Encode `bundle` and write it to `path` atomically (write to a
/// sibling temp file, then rename).
pub fn save(path: &Path, bundle: &StoreBundle) -> Result<(), StoreError> {
    let bytes = encode(bundle);
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, &bytes)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Read and decode the store at `path`.
pub fn load(path: &Path) -> Result<StoreBundle, StoreError> {
    let bytes = std::fs::read(path)?;
    decode(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bundle() -> StoreBundle {
        let sk = StructureKey {
            nnz_log2: 12,
            diag_log2: 3,
            row_var_bucket: 1,
            dense_block: 4,
            stencil: 0,
        };
        StoreBundle {
            catalogue: vec![
                (
                    CatalogueKey {
                        structure: sk,
                        kernel: KernelKind::Dia,
                        pieces_log2: 3,
                    },
                    7,
                    1.25e-4,
                ),
                (
                    CatalogueKey {
                        structure: sk,
                        kernel: KernelKind::Csr,
                        pieces_log2: 3,
                    },
                    2,
                    -0.0, // sign bit must round-trip
                ),
            ],
            tenants: vec![
                StoreTenant {
                    tenant: 1,
                    weight: 1,
                },
                StoreTenant {
                    tenant: 2,
                    weight: 4,
                },
            ],
            sessions: vec![
                StoreSession {
                    session: 10,
                    tenant: 1,
                    unknowns: 4096,
                    pieces: 4,
                    solver_code: 0,
                    solver_p0: 0,
                    solver_f0: 0.0,
                    solver_f1: 0.0,
                    kernel_code: StoreSession::kernel_code_for(Some(KernelKind::Dia)),
                    jobs_completed: 3,
                    steps_captured: 5,
                    operator: StoreOperator::Stencil {
                        kind: 1,
                        nx: 64,
                        ny: 64,
                        nz: 1,
                    },
                },
                StoreSession {
                    session: 11,
                    tenant: 2,
                    unknowns: 3,
                    pieces: 1,
                    solver_code: 2,
                    solver_p0: 30,
                    solver_f0: 1e-8,
                    solver_f1: f64::NEG_INFINITY,
                    kernel_code: 255,
                    jobs_completed: 0,
                    steps_captured: 0,
                    operator: StoreOperator::Assembled {
                        rows: 3,
                        cols: 3,
                        entries: vec![(0, 0, 2.0), (1, 1, -0.0), (2, 2, f64::MIN_POSITIVE)],
                    },
                },
            ],
        }
    }

    #[test]
    fn round_trip_bitwise() {
        let b = sample_bundle();
        let bytes = encode(&b);
        let b2 = decode(&bytes).unwrap();
        assert_eq!(b, b2);
        // -0.0 and subnormals must keep their exact bits.
        let (_, _, mean) = b2.catalogue[1];
        assert_eq!(mean.to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn version_bump_rejected() {
        let mut bytes = encode(&sample_bundle());
        bytes[8] = 2; // version lives right after the magic
        match decode(&bytes) {
            Err(StoreError::UnsupportedVersion { found: 2 }) => {}
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode(&sample_bundle());
        bytes[0] ^= 0xff;
        assert!(matches!(decode(&bytes), Err(StoreError::BadMagic)));
    }

    #[test]
    fn empty_bundle_round_trips() {
        let b = StoreBundle::default();
        assert_eq!(decode(&encode(&b)).unwrap(), b);
    }

    #[test]
    fn truncation_always_typed_error() {
        let bytes = encode(&sample_bundle());
        for cut in 0..bytes.len() {
            let r = decode(&bytes[..cut]);
            assert!(r.is_err(), "truncated at {cut} decoded successfully");
        }
    }

    #[test]
    fn save_load_file() {
        let dir = std::env::temp_dir().join("kdr_store_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bundle.kdrstore");
        let b = sample_bundle();
        save(&path, &b).unwrap();
        assert_eq!(load(&path).unwrap(), b);
        std::fs::remove_file(&path).unwrap();
    }
}
