#![warn(missing_docs)]
//! # kdr-store
//!
//! The cost catalogue and the durable plan/session store for the
//! solve service — the two halves of ROADMAP item 5.
//!
//! **Cost catalogue** ([`catalogue`]): a sampled catalogue keyed by
//! operator structure ([`kdr_sparse::StructureKey`]), kernel kind,
//! and piece count. Every key starts from a `kdr-machine` roofline
//! prior and is refined online from per-kernel execute-latency
//! observations; [`CostCatalogue::predict`] returns a
//! [`CostEstimate`] carrying its sample count so callers can tell a
//! measured cost from a model guess. An immutable
//! [`CatalogueSnapshot`] implements [`kdr_sparse::KernelAdvisor`],
//! turning the catalogue into a deterministic predicted-cost argmin
//! for kernel auto-selection.
//!
//! **Durable store** ([`store`]): a versioned on-disk format (magic,
//! explicit format version, length-prefixed and checksummed records)
//! persisting the catalogue plus per-tenant session state, so a
//! restarted service warm-starts every tenant instead of paying cold
//! time-to-first-iteration. Corruption and truncation surface as
//! typed [`StoreError`]s — never a panic, never silently-loaded
//! garbage.

pub mod catalogue;
pub mod store;

pub use catalogue::{
    CatalogueKey, CatalogueSnapshot, CostCatalogue, CostEstimate, SharedCatalogue,
    ADVISE_MIN_SAMPLES,
};
pub use store::{
    StoreBundle, StoreError, StoreOperator, StoreSession, StoreTenant, STORE_FORMAT_VERSION,
};
