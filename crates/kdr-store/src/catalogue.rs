//! The sampled cost catalogue: roofline priors refined online.
//!
//! A catalogue entry predicts the execute latency of one kernel task
//! — `(operator structure, kernel kind, piece count)` — in seconds.
//! Before any observation lands, [`CostCatalogue::predict`] answers
//! from the machine model's roofline ([`MachineConfig::kernel_prior_seconds`]):
//! deliberately optimistic, so cold-start admission never rejects a
//! feasible job. Each observation (mean execute time of that kernel's
//! tasks over a scheduling slice) folds in with an exponential moving
//! average, and the returned [`CostEstimate`] carries the sample
//! count so consumers can weigh model guesses against measurements.
//!
//! Structure keys are coarse on purpose (log2 buckets, a four-way
//! variance class): tiles of the same shape share entries, so one
//! tenant's measurements warm the prediction for the next tenant's
//! structurally-similar operator.

use std::collections::BTreeMap;
use std::sync::Arc;

use kdr_machine::MachineConfig;
use kdr_sparse::{KernelAdvisor, KernelKind, StructureKey, TileStructure};
use parking_lot::Mutex;

/// Observed samples a kernel kind needs before the advisor will let
/// its measured mean override the structure heuristic.
pub const ADVISE_MIN_SAMPLES: u64 = 3;

/// EWMA weight of each new observation after the first.
const EWMA_ALPHA: f64 = 0.2;

/// Amortized bytes per stored entry for assembled kernels (8-byte
/// value + index + vector traffic shares), the prior's traffic term.
const ASSEMBLED_BYTES_PER_ENTRY: f64 = 12.0;

/// Amortized bytes per (virtual) entry for matrix-free stencil
/// kernels: vector traffic only, zero stored values.
const STENCIL_BYTES_PER_ENTRY: f64 = 8.0;

/// One catalogue key: operator structure × kernel kind × piece count.
///
/// Piece counts are log2-bucketed like the structure's counts — the
/// per-task cost of a 7-piece and an 8-piece partition of the same
/// operator are interchangeable for scheduling purposes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CatalogueKey {
    /// Bucketed structural signature of the tile.
    pub structure: StructureKey,
    /// Kernel kind the tile was (or would be) lowered into.
    pub kernel: KernelKind,
    /// log2 bucket of the partition's piece count.
    pub pieces_log2: u8,
}

impl CatalogueKey {
    /// Key for `structure` lowered as `kernel` over a `pieces`-piece
    /// partition.
    pub fn new(structure: StructureKey, kernel: KernelKind, pieces: usize) -> Self {
        CatalogueKey {
            structure,
            kernel,
            pieces_log2: (64 - (pieces as u64).leading_zeros()) as u8,
        }
    }
}

/// A cost prediction: seconds per kernel task, plus how it was made.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostEstimate {
    /// Predicted execute seconds of one kernel task.
    pub seconds: f64,
    /// Observations backing the estimate; 0 means the roofline prior
    /// answered (a catalogue *miss* in the hit/miss counters).
    pub samples: u64,
}

impl CostEstimate {
    /// Whether any measurement backs this estimate.
    pub fn is_observed(&self) -> bool {
        self.samples > 0
    }

    /// Confidence signal in `[0, 1)`: `samples / (samples + 4)`.
    /// Zero for a pure prior, approaching 1 as measurements
    /// accumulate.
    pub fn confidence(&self) -> f64 {
        self.samples as f64 / (self.samples as f64 + 4.0)
    }
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    samples: u64,
    mean_seconds: f64,
}

/// The sampled cost catalogue. See the module docs.
#[derive(Clone, Debug)]
pub struct CostCatalogue {
    machine: MachineConfig,
    entries: BTreeMap<CatalogueKey, Entry>,
}

impl CostCatalogue {
    /// An empty catalogue whose priors come from `machine`'s
    /// roofline.
    pub fn new(machine: MachineConfig) -> Self {
        CostCatalogue {
            machine,
            entries: BTreeMap::new(),
        }
    }

    /// Predict the execute seconds of one kernel task under `key`.
    /// Observed keys answer with their running mean; unobserved keys
    /// fall back to the roofline prior for the key's representative
    /// entry count.
    pub fn predict(&self, key: &CatalogueKey) -> CostEstimate {
        match self.entries.get(key) {
            Some(e) if e.samples > 0 => CostEstimate {
                seconds: e.mean_seconds,
                samples: e.samples,
            },
            _ => CostEstimate {
                seconds: self.prior_seconds(key),
                samples: 0,
            },
        }
    }

    /// The roofline prior for `key` (what [`CostCatalogue::predict`]
    /// answers with zero samples).
    pub fn prior_seconds(&self, key: &CatalogueKey) -> f64 {
        // Bucket b holds counts in [2^(b-1), 2^b); its geometric
        // middle is the representative.
        let nnz = if key.structure.nnz_log2 == 0 {
            0
        } else {
            3u64 << key.structure.nnz_log2.saturating_sub(2).min(61)
        };
        let bytes_per_entry = if key.structure.stencil != 0 {
            STENCIL_BYTES_PER_ENTRY
        } else {
            ASSEMBLED_BYTES_PER_ENTRY
        };
        self.machine.kernel_prior_seconds(nnz, bytes_per_entry)
    }

    /// Fold one measured task latency (seconds) into `key`'s running
    /// mean. Non-finite or non-positive samples are ignored.
    pub fn observe(&mut self, key: CatalogueKey, seconds: f64) {
        if !seconds.is_finite() || seconds <= 0.0 {
            return;
        }
        let e = self.entries.entry(key).or_insert(Entry {
            samples: 0,
            mean_seconds: 0.0,
        });
        if e.samples == 0 {
            e.mean_seconds = seconds;
        } else {
            e.mean_seconds += EWMA_ALPHA * (seconds - e.mean_seconds);
        }
        e.samples += 1;
    }

    /// Install an entry wholesale (store restore path).
    pub fn insert_entry(&mut self, key: CatalogueKey, samples: u64, mean_seconds: f64) {
        if samples == 0 || !mean_seconds.is_finite() || mean_seconds <= 0.0 {
            return;
        }
        self.entries.insert(
            key,
            Entry {
                samples,
                mean_seconds,
            },
        );
    }

    /// Every observed entry as `(key, samples, mean seconds)`, in key
    /// order (the store export path).
    pub fn export(&self) -> Vec<(CatalogueKey, u64, f64)> {
        self.entries
            .iter()
            .map(|(k, e)| (*k, e.samples, e.mean_seconds))
            .collect()
    }

    /// Number of observed keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no key has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Freeze the current state into an immutable, shareable
    /// [`CatalogueSnapshot`] (the deterministic advisor input).
    pub fn snapshot(&self) -> CatalogueSnapshot {
        CatalogueSnapshot {
            inner: Arc::new(self.clone()),
        }
    }
}

/// An immutable point-in-time copy of a [`CostCatalogue`].
///
/// Implements [`KernelAdvisor`]: for a tile under auto-selection it
/// compares the *measured* means of every candidate kernel kind
/// against the structure heuristic's choice and overrides only when a
/// candidate with at least [`ADVISE_MIN_SAMPLES`] observations — and
/// the heuristic's own kind equally well observed — is strictly
/// faster. With insufficient samples it defers, so selection degrades
/// gracefully to the heuristic and can never pick a kernel the
/// catalogue has measured as slower. For a fixed snapshot the advice
/// is a pure function of `(structure, pieces)` — lowering stays
/// deterministic.
#[derive(Clone, Debug)]
pub struct CatalogueSnapshot {
    inner: Arc<CostCatalogue>,
}

impl CatalogueSnapshot {
    /// Predict from the frozen state (no fallback mutation).
    pub fn predict(&self, key: &CatalogueKey) -> CostEstimate {
        self.inner.predict(key)
    }
}

impl KernelAdvisor for CatalogueSnapshot {
    fn advise(&self, structure: &TileStructure, pieces: usize) -> Option<KernelKind> {
        let heuristic = structure.select();
        // Candidates must honor the bitwise contract's hard
        // constraints the same way lowering does: duplicates are
        // CSR-only, and Stencil is unreachable from assembled input.
        if structure.nnz == 0 || structure.has_duplicates {
            return None;
        }
        let s_key = structure.key();
        let base = self
            .inner
            .predict(&CatalogueKey::new(s_key, heuristic, pieces));
        if base.samples < ADVISE_MIN_SAMPLES {
            return None;
        }
        let mut best = (heuristic, base.seconds);
        for kind in [
            KernelKind::Csr,
            KernelKind::Dia,
            KernelKind::Ell,
            KernelKind::Bcsr,
        ] {
            if kind == heuristic {
                continue;
            }
            let est = self.inner.predict(&CatalogueKey::new(s_key, kind, pieces));
            // Strictly faster, with real measurements behind it; ties
            // keep the earlier (heuristic-first, then code-order)
            // winner, so advice is deterministic.
            if est.samples >= ADVISE_MIN_SAMPLES && est.seconds < best.1 {
                best = (kind, est.seconds);
            }
        }
        (best.0 != heuristic).then_some(best.0)
    }
}

/// A thread-safe handle to one shared [`CostCatalogue`].
///
/// The service stores one of these per fleet: every shard observes
/// into and predicts from the same catalogue, so measurements merge
/// across shards by construction.
#[derive(Clone)]
pub struct SharedCatalogue {
    inner: Arc<Mutex<CostCatalogue>>,
}

impl std::fmt::Debug for SharedCatalogue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let g = self.inner.lock();
        f.debug_struct("SharedCatalogue")
            .field("keys", &g.len())
            .finish()
    }
}

impl SharedCatalogue {
    /// An empty shared catalogue with `machine`'s roofline priors.
    pub fn new(machine: MachineConfig) -> Self {
        SharedCatalogue {
            inner: Arc::new(Mutex::new(CostCatalogue::new(machine))),
        }
    }

    /// See [`CostCatalogue::predict`].
    pub fn predict(&self, key: &CatalogueKey) -> CostEstimate {
        self.inner.lock().predict(key)
    }

    /// See [`CostCatalogue::observe`].
    pub fn observe(&self, key: CatalogueKey, seconds: f64) {
        self.inner.lock().observe(key, seconds);
    }

    /// See [`CostCatalogue::insert_entry`].
    pub fn insert_entry(&self, key: CatalogueKey, samples: u64, mean_seconds: f64) {
        self.inner.lock().insert_entry(key, samples, mean_seconds);
    }

    /// See [`CostCatalogue::export`].
    pub fn export(&self) -> Vec<(CatalogueKey, u64, f64)> {
        self.inner.lock().export()
    }

    /// See [`CostCatalogue::snapshot`].
    pub fn snapshot(&self) -> CatalogueSnapshot {
        self.inner.lock().snapshot()
    }

    /// Number of observed keys.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether no key has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(kind: KernelKind) -> CatalogueKey {
        let s = StructureKey {
            nnz_log2: 10,
            diag_log2: 2,
            row_var_bucket: 0,
            dense_block: 0,
            stencil: 0,
        };
        CatalogueKey::new(s, kind, 4)
    }

    #[test]
    fn prior_then_refinement() {
        let mut c = CostCatalogue::new(MachineConfig::lassen(1));
        let k = key(KernelKind::Csr);
        let prior = c.predict(&k);
        assert!(!prior.is_observed());
        assert!(prior.seconds > 0.0);
        c.observe(k, 1e-3);
        let e = c.predict(&k);
        assert!(e.is_observed());
        assert_eq!(e.samples, 1);
        assert!((e.seconds - 1e-3).abs() < 1e-12);
        // EWMA moves toward later samples.
        c.observe(k, 2e-3);
        let e2 = c.predict(&k);
        assert!(e2.seconds > e.seconds && e2.seconds < 2e-3);
        assert!(e2.confidence() > e.confidence());
    }

    #[test]
    fn bad_samples_ignored() {
        let mut c = CostCatalogue::new(MachineConfig::lassen(1));
        let k = key(KernelKind::Dia);
        c.observe(k, f64::NAN);
        c.observe(k, -1.0);
        c.observe(k, 0.0);
        assert!(c.is_empty());
    }

    #[test]
    fn advisor_defers_without_samples() {
        let c = CostCatalogue::new(MachineConfig::lassen(1));
        let snap = c.snapshot();
        // A banded structure the heuristic lowers to DIA.
        let rows: Vec<u64> = (0..64).flat_map(|r| [r, r]).collect();
        let cols: Vec<u64> = (0..64).flat_map(|r| [r, (r + 1) % 64]).collect();
        let vals = vec![1.0f64; rows.len()];
        let s = TileStructure::analyze(&rows, &cols, &vals);
        assert_eq!(snap.advise(&s, 4), None);
    }

    #[test]
    fn advisor_overrides_only_when_measured_faster() {
        let mut c = CostCatalogue::new(MachineConfig::lassen(1));
        let rows: Vec<u64> = (0..64).flat_map(|r| [r, r]).collect();
        let cols: Vec<u64> = (0..64).flat_map(|r| [r, (r + 1) % 64]).collect();
        let vals = vec![1.0f64; rows.len()];
        let s = TileStructure::analyze(&rows, &cols, &vals);
        let heuristic = s.select();
        let sk = s.key();
        for _ in 0..ADVISE_MIN_SAMPLES {
            c.observe(CatalogueKey::new(sk, heuristic, 4), 2e-3);
        }
        // Heuristic observed but nothing beats it yet: defer.
        assert_eq!(c.snapshot().advise(&s, 4), None);
        // Measure CSR strictly faster: override.
        for _ in 0..ADVISE_MIN_SAMPLES {
            c.observe(CatalogueKey::new(sk, KernelKind::Csr, 4), 1e-3);
        }
        assert_ne!(heuristic, KernelKind::Csr);
        assert_eq!(c.snapshot().advise(&s, 4), Some(KernelKind::Csr));
        // A slower measured kind never wins.
        for _ in 0..ADVISE_MIN_SAMPLES {
            c.observe(CatalogueKey::new(sk, KernelKind::Ell, 4), 5e-3);
        }
        assert_eq!(c.snapshot().advise(&s, 4), Some(KernelKind::Csr));
    }

    #[test]
    fn snapshot_is_frozen() {
        let shared = SharedCatalogue::new(MachineConfig::lassen(1));
        let k = key(KernelKind::Csr);
        let snap = shared.snapshot();
        shared.observe(k, 1e-3);
        assert!(!snap.predict(&k).is_observed());
        assert!(shared.predict(&k).is_observed());
    }
}
