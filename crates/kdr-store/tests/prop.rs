//! Property/fuzz tests for the store format: arbitrary bundles
//! round-trip bitwise; arbitrary truncation and byte flips yield
//! typed errors (never a panic, never silently-loaded garbage).

use kdr_store::store::{decode, encode};
use kdr_store::{
    CatalogueKey, StoreBundle, StoreError, StoreOperator, StoreSession, StoreTenant,
};
use kdr_sparse::{KernelKind, StructureKey};
use proptest::prelude::*;

fn arb_kernel() -> impl Strategy<Value = KernelKind> {
    (0u8..5).prop_map(|c| KernelKind::from_code(c).unwrap())
}

fn arb_structure_key() -> impl Strategy<Value = StructureKey> {
    (0u8..=255u8, 0u8..=255u8, 0u8..4, 0u8..=255u8, 0u8..=255u8).prop_map(
        |(nnz_log2, diag_log2, row_var_bucket, dense_block, stencil)| StructureKey {
            nnz_log2,
            diag_log2,
            row_var_bucket,
            dense_block,
            stencil,
        },
    )
}

/// Arbitrary f64 *bit patterns* — NaNs, infinities, -0.0, subnormals
/// — to pin the bitwise round-trip, not just value equality.
fn arb_f64_bits() -> impl Strategy<Value = f64> {
    (0u64..=u64::MAX).prop_map(f64::from_bits)
}

fn arb_catalogue_entry() -> impl Strategy<Value = (CatalogueKey, u64, f64)> {
    (arb_structure_key(), arb_kernel(), 0u8..=255u8, 0u64..=u64::MAX, arb_f64_bits()).prop_map(
        |(structure, kernel, pieces_log2, samples, mean)| {
            (
                CatalogueKey {
                    structure,
                    kernel,
                    pieces_log2,
                },
                samples,
                mean,
            )
        },
    )
}

fn arb_operator() -> impl Strategy<Value = StoreOperator> {
    prop_oneof![
        (0u8..4, 1u64..256, 1u64..256, 1u64..16).prop_map(|(kind, nx, ny, nz)| {
            StoreOperator::Stencil { kind, nx, ny, nz }
        }),
        (1u64..64, 1u64..64)
            .prop_flat_map(|(rows, cols)| {
                (
                    Just(rows),
                    Just(cols),
                    prop::collection::vec((0..rows, 0..cols, arb_f64_bits()), 0..32),
                )
            })
            .prop_map(|(rows, cols, entries)| StoreOperator::Assembled {
                rows,
                cols,
                entries
            }),
    ]
}

fn arb_session() -> impl Strategy<Value = StoreSession> {
    (
        (
            0u64..=u64::MAX,
            0u64..=u64::MAX,
            0u64..=u64::MAX,
            0u64..=u64::MAX,
            0u8..=255u8,
            0u64..=u64::MAX,
        ),
        (arb_f64_bits(), arb_f64_bits()),
        // Valid kernel codes only: 0..5 or the Auto sentinel. Unknown
        // codes are a *decode* error by design, exercised separately.
        prop_oneof![0u8..5, Just(255u8)],
        (0u64..=u64::MAX, 0u64..=u64::MAX),
        arb_operator(),
    )
        .prop_map(
            |(
                (session, tenant, unknowns, pieces, solver_code, solver_p0),
                (solver_f0, solver_f1),
                kernel_code,
                (jobs_completed, steps_captured),
                operator,
            )| StoreSession {
                session,
                tenant,
                unknowns,
                pieces,
                solver_code,
                solver_p0,
                solver_f0,
                solver_f1,
                kernel_code,
                jobs_completed,
                steps_captured,
                operator,
            },
        )
}

fn arb_bundle() -> impl Strategy<Value = StoreBundle> {
    (
        prop::collection::vec(arb_catalogue_entry(), 0..12),
        prop::collection::vec((0u64..=u64::MAX, 0u32..=u32::MAX), 0..8),
        prop::collection::vec(arb_session(), 0..6),
    )
        .prop_map(|(mut catalogue, tenants, sessions)| {
            // The format rejects duplicate catalogue keys; keep the
            // first of each.
            catalogue.sort_by_key(|(k, _, _)| *k);
            catalogue.dedup_by_key(|(k, _, _)| *k);
            StoreBundle {
                catalogue,
                tenants: tenants
                    .into_iter()
                    .map(|(tenant, weight)| StoreTenant { tenant, weight })
                    .collect(),
                sessions,
            }
        })
}

/// Equality that respects f64 *bits* (StoreBundle's PartialEq treats
/// NaN != NaN and -0.0 == 0.0, which is wrong for this check).
fn bits_equal(a: &StoreBundle, b: &StoreBundle) -> bool {
    encode(a) == encode(b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn round_trip_bitwise(bundle in arb_bundle()) {
        let bytes = encode(&bundle);
        let back = decode(&bytes).expect("own encoding must decode");
        prop_assert!(bits_equal(&bundle, &back), "bundle changed across round-trip");
        // Idempotence: re-encoding the decoded bundle is byte-identical.
        prop_assert_eq!(encode(&back), bytes);
    }

    #[test]
    fn truncation_is_typed_error(bundle in arb_bundle(), frac in 0.0f64..1.0) {
        let bytes = encode(&bundle);
        let cut = ((bytes.len() as f64) * frac) as usize;
        if cut < bytes.len() {
            let r = decode(&bytes[..cut]);
            prop_assert!(r.is_err(), "truncated store decoded at {cut}/{}", bytes.len());
        }
    }

    #[test]
    fn bit_flip_is_error_or_detected(bundle in arb_bundle(), pos_seed in 0u64..=u64::MAX, bit in 0u8..8) {
        let bytes = encode(&bundle);
        let pos = (pos_seed % bytes.len() as u64) as usize;
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 1 << bit;
        // Never a panic; and never silently *garbage* — decoding
        // either fails typed, or (header count shrink edge cases
        // aside, which trailing-byte checks catch) it cannot succeed,
        // because every record byte is checksummed and the header is
        // structurally validated.
        match decode(&corrupt) {
            Err(StoreError::Io(_)) => prop_assert!(false, "no i/o involved"),
            Err(_) => {}
            Ok(loaded) => {
                // The only way a flip decodes is if it produced a
                // different valid encoding of... the same data? Not
                // possible: re-encoding canonically must reproduce the
                // corrupted buffer, and the corrupted buffer differs
                // from the canonical encoding of the original — so if
                // this Ok is reached the loaded bundle must differ in
                // exactly the flipped, checksummed byte: impossible.
                // Assert it never happens.
                prop_assert!(
                    false,
                    "corrupted store decoded successfully (pos {pos}, bit {bit}, {} records)",
                    loaded.catalogue.len() + loaded.tenants.len() + loaded.sessions.len()
                );
            }
        }
    }

    #[test]
    fn version_bump_rejected(bundle in arb_bundle(), version in 2u32..1000) {
        let mut bytes = encode(&bundle);
        bytes[8..12].copy_from_slice(&version.to_le_bytes());
        match decode(&bytes) {
            Err(StoreError::UnsupportedVersion { found }) => prop_assert_eq!(found, version),
            other => prop_assert!(false, "expected UnsupportedVersion, got {:?}", other),
        }
    }
}
