//! Bulk-synchronous Krylov solvers in classic rank-local (MPI) style.
//!
//! Each rank owns a contiguous row slab of the matrix and of every
//! vector; matrix-vector products read a halo *window* of the shared
//! search direction (published slab-wise, barrier-ordered), and every
//! inner product is a blocking all-reduce. This mirrors how PETSc and
//! Trilinos execute the same algorithms, down to the phase structure
//! — no overlap of communication with computation, by construction.
//!
//! Initial guesses are zero (the libraries' default), and iteration
//! counts/ tolerances follow the paper's benchmark protocol.

use kdr_sparse::{Csr, Scalar};

use crate::spmd::{run_spmd, SharedVec, SpmdContext};

/// Which baseline method to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BaselineKsm {
    /// Conjugate gradients.
    Cg,
    /// BiCG-stabilized.
    BiCgStab,
    /// GMRES with a static restart length (the paper uses 10).
    Gmres(usize),
}

/// Result of a bulk-synchronous solve.
#[derive(Clone, Debug)]
pub struct SpmdSolveResult<T> {
    /// Iterations performed (inner iterations for GMRES).
    pub iters: usize,
    /// Final residual norm (from the recurrence).
    pub residual: f64,
    /// Assembled solution.
    pub x: Vec<T>,
}

/// One rank's slab of the matrix: rows `[row_lo, row_hi)` with global
/// column indices, plus the column window its entries touch.
struct LocalSlab<T> {
    #[allow(dead_code)]
    row_lo: u64,
    rowptr: Vec<u64>,
    colidx: Vec<u64>,
    values: Vec<T>,
    win_lo: u64,
    win_hi: u64,
}

impl<T: Scalar> LocalSlab<T> {
    fn extract(m: &Csr<T, u64>, row_lo: u64, row_hi: u64) -> Self {
        let gp = m.rowptr();
        let (klo, khi) = (gp[row_lo as usize] as usize, gp[row_hi as usize] as usize);
        let rowptr: Vec<u64> = gp[row_lo as usize..=row_hi as usize]
            .iter()
            .map(|&p| p - gp[row_lo as usize])
            .collect();
        let colidx = m.colidx()[klo..khi].to_vec();
        let values = m.values()[klo..khi].to_vec();
        let win_lo = colidx.iter().copied().min().unwrap_or(0);
        let win_hi = colidx.iter().copied().max().map_or(0, |v| v + 1);
        LocalSlab {
            row_lo,
            rowptr,
            colidx,
            values,
            win_lo,
            win_hi,
        }
    }

    fn rows(&self) -> usize {
        self.rowptr.len() - 1
    }

    /// `y = A_local · xw` where `xw` spans `[win_lo, win_hi)`.
    fn spmv(&self, xw: &[T], y: &mut [T]) {
        debug_assert_eq!(xw.len() as u64, self.win_hi - self.win_lo);
        for (r, yr) in y.iter_mut().enumerate().take(self.rows()) {
            let mut acc = T::ZERO;
            for k in self.rowptr[r] as usize..self.rowptr[r + 1] as usize {
                acc = self.values[k].mul_add(xw[(self.colidx[k] - self.win_lo) as usize], acc);
            }
            *yr = acc;
        }
    }
}

fn local_dot<T: Scalar>(a: &[T], b: &[T]) -> T {
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// Solve `A x = b` (zero initial guess) with `nranks` bulk-synchronous
/// ranks; stops at `max_iters` or when the recurrence residual drops
/// below `tol` (`tol <= 0` disables the check).
pub fn solve_spmd<T: Scalar>(
    matrix: &Csr<T, u64>,
    b: &[T],
    ksm: BaselineKsm,
    nranks: usize,
    max_iters: usize,
    tol: f64,
) -> SpmdSolveResult<T> {
    let n = matrix.rows();
    assert_eq!(matrix.cols(), n, "baselines require a square system");
    assert_eq!(b.len() as u64, n);
    let ctx = SpmdContext::<T>::new(nranks);
    // Pre-extract slabs so ranks never touch the global matrix.
    let slabs: Vec<LocalSlab<T>> = (0..nranks)
        .map(|r| {
            let (lo, hi) = ctx.slab(r, n);
            LocalSlab::extract(matrix, lo, hi)
        })
        .collect();
    let x_sh = SharedVec::<T>::zeros(n);
    let iters_out = parking_lot::Mutex::new(0usize);
    let res_out = parking_lot::Mutex::new(f64::NAN);

    match ksm {
        BaselineKsm::Cg => {
            let p_sh = SharedVec::<T>::zeros(n);
            run_spmd(nranks, |rank| {
                let (lo, hi) = ctx.slab(rank, n);
                let slab = &slabs[rank];
                let rows = (hi - lo) as usize;
                let mut x = vec![T::ZERO; rows];
                let mut r: Vec<T> = b[lo as usize..hi as usize].to_vec();
                let mut pl = r.clone();
                let mut q = vec![T::ZERO; rows];
                let mut pw = Vec::new();
                p_sh.publish(lo, &pl);
                ctx.barrier();
                let mut res = ctx.allreduce_sum(rank, local_dot(&r, &r));
                let mut it = 0;
                while it < max_iters {
                    p_sh.read_window(slab.win_lo, slab.win_hi, &mut pw);
                    slab.spmv(&pw, &mut q);
                    let pq = ctx.allreduce_sum(rank, local_dot(&pl, &q));
                    let alpha = res / pq;
                    for i in 0..rows {
                        x[i] += alpha * pl[i];
                        r[i] -= alpha * q[i];
                    }
                    let new_res = ctx.allreduce_sum(rank, local_dot(&r, &r));
                    it += 1;
                    if tol > 0.0 && new_res.to_f64().sqrt() < tol {
                        res = new_res;
                        break;
                    }
                    let beta = new_res / res;
                    for i in 0..rows {
                        pl[i] = r[i] + beta * pl[i];
                    }
                    p_sh.publish(lo, &pl);
                    ctx.barrier();
                    res = new_res;
                }
                x_sh.publish(lo, &x);
                if rank == 0 {
                    *iters_out.lock() = it;
                    *res_out.lock() = res.to_f64().sqrt();
                }
            });
        }
        BaselineKsm::BiCgStab => {
            let p_sh = SharedVec::<T>::zeros(n);
            let s_sh = SharedVec::<T>::zeros(n);
            run_spmd(nranks, |rank| {
                let (lo, hi) = ctx.slab(rank, n);
                let slab = &slabs[rank];
                let rows = (hi - lo) as usize;
                let mut x = vec![T::ZERO; rows];
                let mut r: Vec<T> = b[lo as usize..hi as usize].to_vec();
                let r0 = r.clone();
                let mut pl = r.clone();
                let mut v = vec![T::ZERO; rows];
                let mut t = vec![T::ZERO; rows];
                let mut sl = vec![T::ZERO; rows];
                let mut win = Vec::new();
                p_sh.publish(lo, &pl);
                ctx.barrier();
                let mut rho = ctx.allreduce_sum(rank, local_dot(&r0, &r));
                let mut res = rho;
                let mut it = 0;
                while it < max_iters {
                    p_sh.read_window(slab.win_lo, slab.win_hi, &mut win);
                    slab.spmv(&win, &mut v);
                    let r0v = ctx.allreduce_sum(rank, local_dot(&r0, &v));
                    let alpha = rho / r0v;
                    for i in 0..rows {
                        sl[i] = r[i] - alpha * v[i];
                    }
                    s_sh.publish(lo, &sl);
                    ctx.barrier();
                    s_sh.read_window(slab.win_lo, slab.win_hi, &mut win);
                    slab.spmv(&win, &mut t);
                    let ts = ctx.allreduce_sum(rank, local_dot(&t, &sl));
                    let tt = ctx.allreduce_sum(rank, local_dot(&t, &t));
                    let omega = ts / tt;
                    for i in 0..rows {
                        x[i] += alpha * pl[i] + omega * sl[i];
                        r[i] = sl[i] - omega * t[i];
                    }
                    let rho_new = ctx.allreduce_sum(rank, local_dot(&r0, &r));
                    res = ctx.allreduce_sum(rank, local_dot(&r, &r));
                    it += 1;
                    if tol > 0.0 && res.to_f64().sqrt() < tol {
                        break;
                    }
                    let beta = (rho_new / rho) * (alpha / omega);
                    for i in 0..rows {
                        pl[i] = r[i] + beta * (pl[i] - omega * v[i]);
                    }
                    p_sh.publish(lo, &pl);
                    ctx.barrier();
                    rho = rho_new;
                }
                x_sh.publish(lo, &x);
                if rank == 0 {
                    *iters_out.lock() = it;
                    *res_out.lock() = res.to_f64().sqrt();
                }
            });
        }
        BaselineKsm::Gmres(m) => {
            assert!(m >= 1);
            let basis: Vec<SharedVec<T>> = (0..=m).map(|_| SharedVec::<T>::zeros(n)).collect();
            run_spmd(nranks, |rank| {
                let (lo, hi) = ctx.slab(rank, n);
                let slab = &slabs[rank];
                let rows = (hi - lo) as usize;
                let mut x = vec![T::ZERO; rows];
                let mut vloc: Vec<Vec<T>> = vec![vec![T::ZERO; rows]; m + 1];
                let mut w = vec![T::ZERO; rows];
                let mut win = Vec::new();
                let mut it = 0usize;
                #[allow(unused_assignments)]
                let mut res = f64::NAN;
                'outer: loop {
                    // r0 = b - A x (x published so slabs can window it).
                    x_sh.publish(lo, &x);
                    ctx.barrier();
                    x_sh.read_window(slab.win_lo, slab.win_hi, &mut win);
                    slab.spmv(&win, &mut w);
                    for i in 0..rows {
                        vloc[0][i] = b[lo as usize + i] - w[i];
                    }
                    let beta2 = ctx.allreduce_sum(rank, local_dot(&vloc[0], &vloc[0]));
                    let beta = beta2.sqrt();
                    res = beta.to_f64();
                    if it >= max_iters || (tol > 0.0 && res < tol) {
                        break 'outer;
                    }
                    let inv = T::ONE / beta;
                    for v in vloc[0].iter_mut().take(rows) {
                        *v *= inv;
                    }
                    basis[0].publish(lo, &vloc[0]);
                    ctx.barrier();
                    // Replicated least-squares state.
                    let mut g = vec![T::ZERO; m + 1];
                    g[0] = beta;
                    let mut rcols: Vec<Vec<T>> = Vec::new();
                    let mut cs: Vec<T> = Vec::new();
                    let mut sn: Vec<T> = Vec::new();
                    let mut k_done = 0;
                    for k in 0..m {
                        basis[k].read_window(slab.win_lo, slab.win_hi, &mut win);
                        slab.spmv(&win, &mut w);
                        let mut h = vec![T::ZERO; k + 2];
                        for i in 0..=k {
                            let hi_val = ctx.allreduce_sum(rank, local_dot(&w, &vloc[i]));
                            h[i] = hi_val;
                            for idx in 0..rows {
                                w[idx] -= hi_val * vloc[i][idx];
                            }
                        }
                        let hk1 = ctx.allreduce_sum(rank, local_dot(&w, &w)).sqrt();
                        h[k + 1] = hk1;
                        let invk = T::ONE / hk1;
                        for idx in 0..rows {
                            vloc[k + 1][idx] = w[idx] * invk;
                        }
                        basis[k + 1].publish(lo, &vloc[k + 1]);
                        ctx.barrier();
                        // Givens rotations (replicated, deterministic).
                        for i in 0..k {
                            let t1 = cs[i] * h[i] + sn[i] * h[i + 1];
                            let t2 = -(sn[i] * h[i]) + cs[i] * h[i + 1];
                            h[i] = t1;
                            h[i + 1] = t2;
                        }
                        let denom = (h[k] * h[k] + h[k + 1] * h[k + 1]).sqrt();
                        let c = h[k] / denom;
                        let s = h[k + 1] / denom;
                        h[k] = denom;
                        g[k + 1] = -(s * g[k]);
                        g[k] = c * g[k];
                        cs.push(c);
                        sn.push(s);
                        h.truncate(k + 1);
                        rcols.push(h);
                        it += 1;
                        k_done = k + 1;
                        res = g[k + 1].to_f64().abs();
                        if it >= max_iters || (tol > 0.0 && res < tol) {
                            break;
                        }
                    }
                    // Back-substitute and update x with k_done basis
                    // vectors.
                    let mut y = vec![T::ZERO; k_done];
                    for i in (0..k_done).rev() {
                        let mut acc = g[i];
                        for j in i + 1..k_done {
                            acc -= rcols[j][i] * y[j];
                        }
                        y[i] = acc / rcols[i][i];
                    }
                    for i in 0..k_done {
                        for idx in 0..rows {
                            x[idx] += y[i] * vloc[i][idx];
                        }
                    }
                    if it >= max_iters || (tol > 0.0 && res < tol) {
                        break 'outer;
                    }
                }
                x_sh.publish(lo, &x);
                if rank == 0 {
                    *iters_out.lock() = it;
                    *res_out.lock() = res;
                }
            });
        }
    }

    SpmdSolveResult {
        iters: iters_out.into_inner(),
        residual: res_out.into_inner(),
        x: x_sh.snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdr_sparse::stencil::rhs_vector;
    use kdr_sparse::{SparseMatrix, Stencil};

    fn check(ksm: BaselineKsm, nranks: usize, max_iters: usize) {
        let s = Stencil::lap2d(12, 12);
        let n = s.unknowns();
        let m: Csr<f64, u64> = s.to_csr();
        let b = rhs_vector::<f64>(n, 17);
        let r = solve_spmd(&m, &b, ksm, nranks, max_iters, 1e-10);
        // True residual.
        let mut ax = vec![0.0; n as usize];
        m.spmv(&r.x, &mut ax);
        let res: f64 = ax
            .iter()
            .zip(&b)
            .map(|(a, bb)| (a - bb) * (a - bb))
            .sum::<f64>()
            .sqrt();
        assert!(res < 1e-8, "{ksm:?} on {nranks} ranks: residual {res}");
        assert!(r.iters > 0 && r.iters <= max_iters);
    }

    #[test]
    fn cg_solves() {
        check(BaselineKsm::Cg, 1, 2000);
        check(BaselineKsm::Cg, 4, 2000);
    }

    #[test]
    fn bicgstab_solves() {
        check(BaselineKsm::BiCgStab, 3, 2000);
    }

    #[test]
    fn gmres_solves() {
        check(BaselineKsm::Gmres(10), 2, 4000);
        check(BaselineKsm::Gmres(30), 4, 4000);
    }

    #[test]
    fn rank_count_does_not_change_answer() {
        let s = Stencil::lap2d(10, 10);
        let m: Csr<f64, u64> = s.to_csr();
        let b = rhs_vector::<f64>(100, 3);
        let x1 = solve_spmd(&m, &b, BaselineKsm::Cg, 1, 200, 0.0).x;
        let x4 = solve_spmd(&m, &b, BaselineKsm::Cg, 4, 200, 0.0).x;
        for i in 0..100 {
            assert!((x1[i] - x4[i]).abs() < 1e-9, "row {i}");
        }
    }
}
