#![warn(missing_docs)]
//! # kdr-baselines
//!
//! The comparison libraries of the paper's §6.1, rebuilt as the
//! substitution rules require.
//!
//! PETSc and Trilinos are bulk-synchronous MPI libraries: a solve
//! owns its processors, every operation is a global phase, halo
//! exchanges and all-reduces block. This crate reproduces that
//! execution model twice:
//!
//! * [`spmd`] + [`ksm`] — a *real*, runnable SPMD implementation:
//!   threads play MPI ranks, each owning a contiguous row slab of a
//!   CSR matrix; communication is barrier-disciplined shared memory
//!   (halo windows, all-reduce slots). CG, BiCGStab and GMRES(10) are
//!   written in classic rank-local style, giving an independent
//!   implementation to cross-check KDRSolvers numerics against.
//! * [`simsetup`] — planner constructors that pair KDRSolvers'
//!   solvers with the bulk-synchronous simulation backend under
//!   PETSc-like and Trilinos-like machine profiles, so the Figure 8
//!   comparison isolates exactly what the paper isolates: the
//!   execution model, not the numerics.

pub mod ksm;
pub mod simsetup;
pub mod spmd;

pub use ksm::{solve_spmd, BaselineKsm, SpmdSolveResult};
pub use simsetup::{
    build_iteration_graph, per_iteration_seconds, sim_planner, KsmKind, LibraryProfile,
};
pub use spmd::{run_spmd, SharedVec, SpmdContext};
