//! SPMD infrastructure: threads as MPI ranks.
//!
//! The bulk-synchronous baselines run one thread per rank. Shared
//! state is limited to what MPI gives a rank: barrier synchronization,
//! all-reduce, and published vector slabs (the shared-memory analogue
//! of `VecScatter`). All shared-vector access is barrier-disciplined:
//! a rank writes only its own slab, and reads other slabs only after
//! a barrier that ordered the writes — the same data-race-freedom
//! argument as the task runtime's dependence analysis, enforced here
//! by program structure.

use std::sync::Barrier;

use kdr_runtime::Buffer;
use kdr_sparse::Scalar;
use parking_lot::Mutex;

/// Rank-shared communication context.
pub struct SpmdContext<T> {
    nranks: usize,
    barrier: Barrier,
    slots: Vec<Mutex<T>>,
}

impl<T: Scalar> SpmdContext<T> {
    /// A context coordinating `nranks` ranks.
    pub fn new(nranks: usize) -> Self {
        SpmdContext {
            nranks,
            barrier: Barrier::new(nranks),
            slots: (0..nranks).map(|_| Mutex::new(T::ZERO)).collect(),
        }
    }

    /// Number of ranks.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Global barrier.
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// Blocking all-reduce (sum). Every rank contributes `v` and
    /// receives the bit-identical total (fixed summation order).
    pub fn allreduce_sum(&self, rank: usize, v: T) -> T {
        *self.slots[rank].lock() = v;
        self.barrier();
        let mut acc = T::ZERO;
        for s in &self.slots {
            acc += *s.lock();
        }
        self.barrier();
        acc
    }

    /// The row slab `[lo, hi)` owned by `rank` for a vector of `n`
    /// rows (block distribution with balanced remainders).
    pub fn slab(&self, rank: usize, n: u64) -> (u64, u64) {
        let r = rank as u64;
        let p = self.nranks as u64;
        let lo = r * n / p;
        let hi = (r + 1) * n / p;
        (lo, hi)
    }
}

/// A rank-shared vector: each rank writes its own slab and, after a
/// barrier, may read any window.
pub struct SharedVec<T> {
    buf: Buffer<T>,
}

impl<T: Scalar> SharedVec<T> {
    /// An `n`-element vector of zeros.
    pub fn zeros(n: u64) -> Self {
        SharedVec {
            buf: Buffer::filled(n as usize, T::ZERO),
        }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True for a zero-length vector.
    pub fn is_empty(&self) -> bool {
        self.buf.len() == 0
    }

    /// Publish `data` into `[lo, lo + data.len())`. Caller must own
    /// that slab in the current phase.
    pub fn publish(&self, lo: u64, data: &[T]) {
        let view = self
            .buf
            .write_view(std::sync::Arc::new(kdr_index::IntervalSet::from_range(
                lo,
                lo + data.len() as u64,
            )));
        for (k, &v) in data.iter().enumerate() {
            view.set(lo as usize + k, v);
        }
    }

    /// Read the window `[lo, hi)` into a local vector. Caller must
    /// have barriered after the publishing phase.
    pub fn read_window(&self, lo: u64, hi: u64, out: &mut Vec<T>) {
        out.clear();
        let view = self
            .buf
            .read_view(std::sync::Arc::new(kdr_index::IntervalSet::from_range(
                lo, hi,
            )));
        out.reserve((hi - lo) as usize);
        for i in lo..hi {
            out.push(view.get(i as usize));
        }
    }

    /// Copy out everything (post-solve).
    pub fn snapshot(&self) -> Vec<T> {
        self.buf.snapshot()
    }
}

/// Run `f(rank)` on `nranks` threads and wait for all of them.
pub fn run_spmd<F>(nranks: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    assert!(nranks > 0);
    std::thread::scope(|s| {
        for rank in 0..nranks {
            let f = &f;
            s.spawn(move || f(rank));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allreduce_sums_across_ranks() {
        let ctx = SpmdContext::<f64>::new(4);
        let results = Mutex::new(vec![0.0; 4]);
        run_spmd(4, |rank| {
            let total = ctx.allreduce_sum(rank, (rank + 1) as f64);
            results.lock()[rank] = total;
        });
        assert_eq!(*results.lock(), vec![10.0; 4]);
    }

    #[test]
    fn repeated_allreduce_is_race_free() {
        let ctx = SpmdContext::<f64>::new(3);
        let ok = Mutex::new(true);
        run_spmd(3, |rank| {
            for round in 0..50 {
                let total = ctx.allreduce_sum(rank, (rank as f64) + round as f64);
                let expect = 3.0 * round as f64 + 3.0;
                if (total - expect).abs() > 1e-12 {
                    *ok.lock() = false;
                }
            }
        });
        assert!(*ok.lock());
    }

    #[test]
    fn slabs_cover_exactly() {
        let ctx = SpmdContext::<f64>::new(3);
        let n = 10;
        let mut prev_hi = 0;
        for r in 0..3 {
            let (lo, hi) = ctx.slab(r, n);
            assert_eq!(lo, prev_hi);
            prev_hi = hi;
        }
        assert_eq!(prev_hi, n);
    }

    #[test]
    fn shared_vec_publish_and_read() {
        let ctx = SpmdContext::<f64>::new(2);
        let v = SharedVec::<f64>::zeros(8);
        run_spmd(2, |rank| {
            let (lo, hi) = ctx.slab(rank, 8);
            let data: Vec<f64> = (lo..hi).map(|i| i as f64).collect();
            v.publish(lo, &data);
            ctx.barrier();
            let mut w = Vec::new();
            v.read_window(0, 8, &mut w);
            assert_eq!(w, (0..8).map(|i| i as f64).collect::<Vec<_>>());
        });
        assert_eq!(v.snapshot(), (0..8).map(|i| i as f64).collect::<Vec<_>>());
    }
}
