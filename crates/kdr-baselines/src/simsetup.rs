//! Simulated library setups for the Figure 8/9 comparisons.
//!
//! All three libraries run the *same* Krylov algorithms on the same
//! CSR-stored stencil matrices with the same row-based partitioning
//! (the paper's protocol); they differ in execution model and kernel
//! profile:
//!
//! * **LegionSolvers** — task-oriented: dataflow-ordered graph,
//!   per-task overhead plus a serial per-node dispatcher.
//! * **PETSc** — bulk-synchronous phases, lean kernel launches.
//! * **Trilinos** — bulk-synchronous phases, slightly costlier
//!   launches and slightly lower sustained kernel efficiency
//!   (portability layer).

use std::sync::Arc;

use kdr_core::simbackend::SimBackend;
use kdr_core::solvers::{BiCgStabSolver, CgSolver, GmresSolver, Solver};
use kdr_core::Planner;
use kdr_machine::{simulate, MachineConfig, TaskGraph};
use kdr_sparse::{SparseMatrix, Stencil, StencilOperator};

/// Which library's execution model and kernel profile to simulate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LibraryProfile {
    /// LegionSolvers: task-based, asynchronous execution.
    LegionSolvers,
    /// PETSc: bulk-synchronous MPI execution.
    Petsc,
    /// Trilinos: bulk-synchronous MPI execution.
    Trilinos,
}

impl LibraryProfile {
    /// Short name used in reports and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            LibraryProfile::LegionSolvers => "legionsolvers",
            LibraryProfile::Petsc => "petsc",
            LibraryProfile::Trilinos => "trilinos",
        }
    }

    /// Machine configuration for `nodes` Lassen-like nodes.
    pub fn machine(&self, nodes: usize) -> MachineConfig {
        let base = MachineConfig::lassen(nodes);
        match self {
            LibraryProfile::LegionSolvers => base.legion_profile(),
            LibraryProfile::Petsc => base.petsc_profile(),
            LibraryProfile::Trilinos => base.trilinos_profile(),
        }
    }

    /// Whether execution is bulk-synchronous.
    pub fn is_bulk_sync(&self) -> bool {
        !matches!(self, LibraryProfile::LegionSolvers)
    }
}

/// The three KSMs of the paper's §6.1.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KsmKind {
    /// Conjugate gradients.
    Cg,
    /// BiCG-stabilized.
    BiCgStab,
    /// GMRES(10), the static restart schedule shared by LegionSolvers
    /// and Trilinos.
    Gmres,
}

impl KsmKind {
    /// Short name used in reports and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            KsmKind::Cg => "cg",
            KsmKind::BiCgStab => "bicgstab",
            KsmKind::Gmres => "gmres",
        }
    }
}

/// Build a simulated single-operator planner for a stencil problem:
/// matrix-free stencil operator (priced as CSR), row-based partition
/// with `pieces` pieces.
pub fn sim_planner(
    stencil: Stencil,
    pieces: usize,
    profile: LibraryProfile,
    nodes: usize,
) -> Planner<f64> {
    let mut backend = SimBackend::<f64>::new(profile.machine(nodes))
        // PETSc config in the paper uses 32-bit indices
        // (`--with-64-bit-indices=0`); all libraries store CSR.
        .with_index_bytes(4.0);
    if profile.is_bulk_sync() {
        backend = backend.bulk_synchronous();
    }
    let n = stencil.unknowns();
    let op: Arc<dyn SparseMatrix<f64>> = Arc::new(StencilOperator::<f64>::new(stencil));
    let mut planner = Planner::new(Box::new(backend));
    let part = kdr_index::Partition::equal_blocks(n, pieces);
    let d = planner.add_sol_vector(n, Some(part.clone()));
    let r = planner.add_rhs_vector(n, Some(part));
    planner.add_operator(op, d, r);
    planner
}

/// Run `iters` solver iterations on a simulated planner and return
/// the task graph.
pub fn build_iteration_graph(
    stencil: Stencil,
    ksm: KsmKind,
    pieces: usize,
    profile: LibraryProfile,
    nodes: usize,
    iters: usize,
) -> TaskGraph {
    let mut planner = sim_planner(stencil, pieces, profile, nodes);
    let mut solver: Box<dyn Solver<f64>> = match ksm {
        KsmKind::Cg => Box::new(CgSolver::new(&mut planner)),
        KsmKind::BiCgStab => Box::new(BiCgStabSolver::new(&mut planner)),
        KsmKind::Gmres => Box::new(GmresSolver::with_restart(&mut planner, 10)),
    };
    for _ in 0..iters {
        solver.step(&mut planner);
    }
    drop(solver);
    planner.with_backend(|b| {
        b.as_any()
            .downcast_mut::<SimBackend<f64>>()
            .expect("sim backend")
            .take_graph()
            .0
    })
}

/// Simulated steady-state time per iteration: simulate `warmup` and
/// `warmup + timed` iterations and difference the makespans (this
/// cancels setup cost and captures cross-iteration pipelining).
pub fn per_iteration_seconds(
    stencil: Stencil,
    ksm: KsmKind,
    pieces: usize,
    profile: LibraryProfile,
    nodes: usize,
    warmup: usize,
    timed: usize,
) -> f64 {
    let machine = profile.machine(nodes);
    let g_warm = build_iteration_graph(stencil, ksm, pieces, profile, nodes, warmup);
    let g_full = build_iteration_graph(stencil, ksm, pieces, profile, nodes, warmup + timed);
    let t_warm = simulate(&g_warm, &machine, None).makespan;
    let t_full = simulate(&g_full, &machine, None).makespan;
    (t_full - t_warm) / timed as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_build_graphs() {
        let s = Stencil::lap2d(1 << 9, 1 << 9);
        for profile in [
            LibraryProfile::LegionSolvers,
            LibraryProfile::Petsc,
            LibraryProfile::Trilinos,
        ] {
            let g = build_iteration_graph(s, KsmKind::Cg, 16, profile, 4, 2);
            assert!(!g.is_empty(), "{}", profile.name());
            let barriers = g
                .nodes()
                .iter()
                .filter(|n| n.label == "phase_barrier")
                .count();
            if profile.is_bulk_sync() {
                assert!(barriers > 0, "{} must barrier", profile.name());
            } else {
                assert_eq!(barriers, 0, "{} must not barrier", profile.name());
            }
        }
    }

    #[test]
    fn legion_wins_at_large_sizes() {
        // The paper's headline shape at the benchmark configuration
        // (16 nodes, vp = 64): on large problems the task-oriented
        // model is faster (overlap, no phase collectives), while on
        // tiny problems it is slower (serial dispatch).
        let nodes = 16;
        let pieces = 64;
        let big = Stencil::lap2d(1 << 14, 1 << 14); // 2^28 unknowns
        let t_leg = per_iteration_seconds(
            big,
            KsmKind::BiCgStab,
            pieces,
            LibraryProfile::LegionSolvers,
            nodes,
            2,
            3,
        );
        let t_pet = per_iteration_seconds(
            big,
            KsmKind::BiCgStab,
            pieces,
            LibraryProfile::Petsc,
            nodes,
            2,
            3,
        );
        assert!(
            t_leg < t_pet,
            "large problem: legion {t_leg} must beat petsc {t_pet}"
        );

        let tiny = Stencil::lap2d(1 << 7, 1 << 7); // 2^14 unknowns
        let t_leg_s = per_iteration_seconds(
            tiny,
            KsmKind::Cg,
            pieces,
            LibraryProfile::LegionSolvers,
            nodes,
            2,
            3,
        );
        let t_pet_s = per_iteration_seconds(
            tiny,
            KsmKind::Cg,
            pieces,
            LibraryProfile::Petsc,
            nodes,
            2,
            3,
        );
        assert!(
            t_leg_s > t_pet_s,
            "small problem: legion {t_leg_s} must trail petsc {t_pet_s}"
        );
    }

    #[test]
    fn trilinos_trails_petsc_slightly() {
        let s = Stencil::lap2d(1 << 12, 1 << 12);
        let t_pet = per_iteration_seconds(s, KsmKind::BiCgStab, 16, LibraryProfile::Petsc, 4, 2, 3);
        let t_tri =
            per_iteration_seconds(s, KsmKind::BiCgStab, 16, LibraryProfile::Trilinos, 4, 2, 3);
        assert!(t_tri > t_pet);
        assert!(
            t_tri < 1.3 * t_pet,
            "gap should be modest: {t_pet} vs {t_tri}"
        );
    }
}
