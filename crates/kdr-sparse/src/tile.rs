//! Format-specialized tile kernels and structure-driven lowering.
//!
//! Co-partitioning (the K/D/R machinery) is format-independent, but
//! *execution* should not be: a banded tile wants a padded
//! diagonal-major layout with stride-1 inner loops, a block-structured
//! tile wants register-blocked dense micro-kernels, and a tile with
//! uniform row lengths wants ELL-style padded lanes. This module is
//! the lowering stage between the two worlds. An execution backend
//! hands each tile's extracted triplets (in component-local
//! coordinates) to [`TileKernel::lower`]; the structure analysis in
//! [`TileStructure`] picks the best member of a small kernel family —
//! or the caller forces one via [`KernelChoice`] — and the returned
//! payload executes `y += A x` / `y += Aᵀ x` through the
//! [`VecIn`]/[`VecOut`] accessor traits, so the same kernels run over
//! plain slices (tests, benchmarks) and over runtime buffer views.
//!
//! # Bitwise-reproducibility contract
//!
//! Every kernel in the family accumulates each output element's
//! contributions in **exactly the same order** as the CSR reference
//! kernel: ascending column within a row for the forward product, and
//! ascending row per output column for the transpose. Padding slots
//! introduced by a layout (DIA diagonal gaps, ELL lane tails) are
//! skipped *structurally* — never by multiplying an explicit zero,
//! which could flip a `-0.0` partial sum to `+0.0`. Lowering falls
//! back to CSR whenever a specialized layout cannot honor the
//! contract (duplicate coordinates, imperfect blocks, excessive
//! padding), so switching kernels can never change a single bit of a
//! solve. Property tests in `tests/kernel_prop.rs` enforce this for
//! every kind, both directions, and degenerate shapes.

use std::collections::HashMap;

use crate::scalar::Scalar;

/// The kernel family a tile can be lowered into.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub enum KernelKind {
    /// Row-sorted compressed sparse rows; handles any structure
    /// (including duplicate coordinates) and is the reference for the
    /// bitwise contract.
    Csr,
    /// Diagonal-major banded layout with per-diagonal valid-row runs;
    /// stride-1, gather-free inner loops.
    Dia,
    /// Padded row-major lanes (ELLPACK) with per-row entry counts;
    /// uniform trip counts and a dense layout.
    Ell,
    /// Register-blocked compressed block rows over fully dense
    /// `b × b` blocks; the block's input slice is loaded once per
    /// block and reused across its rows.
    Bcsr,
    /// Matrix-free stencil apply from grid geometry alone — zero
    /// stored values (see [`crate::matfree::StencilTile`]). Only
    /// reachable through an explicit stencil *descriptor*; lowering
    /// assembled triplets with `Force(Stencil)` falls back to CSR, so
    /// assembled input is never silently reinterpreted as a stencil.
    Stencil,
}

impl KernelKind {
    /// Short lower-case name, used for task names and metrics keys.
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Csr => "csr",
            KernelKind::Dia => "dia",
            KernelKind::Ell => "ell",
            KernelKind::Bcsr => "bcsr",
            KernelKind::Stencil => "stencil",
        }
    }

    /// All kinds, in lowering-preference order. `Stencil` comes
    /// first: it beats every assembled layout when available, but
    /// only a descriptor registration can produce it.
    pub const ALL: [KernelKind; 5] = [
        KernelKind::Stencil,
        KernelKind::Bcsr,
        KernelKind::Dia,
        KernelKind::Ell,
        KernelKind::Csr,
    ];

    /// Stable single-byte wire code, used by the durable store.
    /// Codes are append-only: existing assignments never change.
    pub fn code(self) -> u8 {
        match self {
            KernelKind::Csr => 0,
            KernelKind::Dia => 1,
            KernelKind::Ell => 2,
            KernelKind::Bcsr => 3,
            KernelKind::Stencil => 4,
        }
    }

    /// Inverse of [`KernelKind::code`]; `None` for unknown codes
    /// (a store written by a future version).
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => KernelKind::Csr,
            1 => KernelKind::Dia,
            2 => KernelKind::Ell,
            3 => KernelKind::Bcsr,
            4 => KernelKind::Stencil,
            _ => return None,
        })
    }
}

/// How a tile chooses its kernel at lowering time.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum KernelChoice {
    /// Let the structure analysis pick (the default).
    #[default]
    Auto,
    /// Use the given kind when the tile is representable in it;
    /// tiles that would violate the bitwise contract (duplicates,
    /// imperfect blocks) or blow up memory fall back to CSR.
    Force(KernelKind),
}

/// Block sizes the BCSR lowering tries, largest first.
const BCSR_BLOCK_SIZES: [usize; 3] = [8, 4, 2];

/// DIA is rejected when the padded diagonal storage would exceed this
/// multiple of the actual entry count (guards `Force(Dia)` on
/// unstructured tiles).
const DIA_MAX_EXPANSION: usize = 16;

/// Auto-selection: maximum distinct diagonals for DIA.
const AUTO_DIA_MAX_DIAGS: usize = 64;

/// Auto-selection: minimum fill of the diagonal-major storage.
const AUTO_DIA_MIN_FILL: f64 = 0.5;

/// Auto-selection: minimum average entries per diagonal (rejects
/// degenerate one-entry diagonals from near-random tiles).
const AUTO_DIA_MIN_DIAG_LEN: f64 = 4.0;

/// Auto-selection: minimum fill of the padded ELL lanes.
const AUTO_ELL_MIN_FILL: f64 = 0.8;

/// Read access to a conceptual `T`-vector (the SpMV input side).
///
/// Implemented for slices here and for runtime buffer views by the
/// execution backend, so one monomorphized kernel serves both.
pub trait VecIn<T> {
    /// Element `i`.
    fn load(&self, i: usize) -> T;

    /// Borrow the contiguous elements `[lo, lo + n)` as a slice, if
    /// the backing storage is contiguous. Kernels with long stride-1
    /// sweeps (the matrix-free stencil interior) use this to run over
    /// real slices — the compiler can then elide per-element bounds
    /// checks and vectorize — and fall back to [`VecIn::load`] when it
    /// returns `None`. The default is `None`; the values observed must
    /// match `load` exactly.
    #[inline(always)]
    fn range(&self, _lo: usize, _n: usize) -> Option<&[T]> {
        None
    }
}

/// Read-write access to a conceptual `T`-vector (the SpMV output
/// side). Kernels only ever read-modify-write their declared rows.
pub trait VecOut<T> {
    /// Element `i`.
    fn load(&self, i: usize) -> T;
    /// Overwrite element `i`.
    fn store(&mut self, i: usize, v: T);

    /// Borrow the contiguous elements `[lo, lo + n)` as a mutable
    /// slice, if the backing storage is contiguous — the write-side
    /// counterpart of [`VecIn::range`], with the same contract
    /// relative to [`VecOut::load`]/[`VecOut::store`].
    #[inline(always)]
    fn range_mut(&mut self, _lo: usize, _n: usize) -> Option<&mut [T]> {
        None
    }
}

impl<T: Scalar> VecIn<T> for &[T] {
    #[inline(always)]
    fn load(&self, i: usize) -> T {
        self[i]
    }
    #[inline(always)]
    fn range(&self, lo: usize, n: usize) -> Option<&[T]> {
        Some(&self[lo..lo + n])
    }
}

impl<T: Scalar> VecOut<T> for &mut [T] {
    #[inline(always)]
    fn load(&self, i: usize) -> T {
        self[i]
    }
    #[inline(always)]
    fn store(&mut self, i: usize, v: T) {
        self[i] = v;
    }
    #[inline(always)]
    fn range_mut(&mut self, lo: usize, n: usize) -> Option<&mut [T]> {
        Some(&mut self[lo..lo + n])
    }
}

/// Structural summary of one tile's triplets, the input to kernel
/// auto-selection. All coordinates are component-local.
#[derive(Clone, Debug, Default)]
pub struct TileStructure {
    /// Stored entries (including explicit zeros).
    pub nnz: usize,
    /// `max row − min row + 1` (0 when empty).
    pub row_span: usize,
    /// Rows that hold at least one entry.
    pub nonempty_rows: usize,
    /// Distinct `col − row` diagonals.
    pub diag_count: usize,
    /// Longest row (entry count).
    pub max_row_len: usize,
    /// Population variance of the per-nonempty-row entry counts.
    pub row_len_variance: f64,
    /// Whether any `(row, col)` coordinate appears more than once.
    pub has_duplicates: bool,
    /// Largest block size in `{8, 4, 2}` for which every touched
    /// grid-aligned block is fully dense; `None` otherwise.
    pub dense_block: Option<usize>,
}

impl TileStructure {
    /// Fill ratio of the diagonal-major DIA storage
    /// (`nnz / (diag_count · row_span)`); 0 when empty.
    pub fn dia_fill(&self) -> f64 {
        let slots = self.diag_count * self.row_span;
        if slots == 0 {
            0.0
        } else {
            self.nnz as f64 / slots as f64
        }
    }

    /// Fill ratio of the padded ELL lanes
    /// (`nnz / (nonempty_rows · max_row_len)`); 0 when empty.
    pub fn ell_fill(&self) -> f64 {
        let slots = self.nonempty_rows * self.max_row_len;
        if slots == 0 {
            0.0
        } else {
            self.nnz as f64 / slots as f64
        }
    }

    /// Analyze raw triplets (any order).
    pub fn analyze<T>(rows: &[u64], cols: &[u64], _vals: &[T]) -> Self {
        let nnz = rows.len();
        if nnz == 0 {
            return TileStructure::default();
        }
        let row_lo = rows.iter().copied().min().unwrap();
        let row_hi = rows.iter().copied().max().unwrap();

        // Per-row entry counts and duplicate detection via a sorted
        // coordinate pass.
        let mut coords: Vec<(u64, u64)> = rows.iter().zip(cols).map(|(&r, &c)| (r, c)).collect();
        coords.sort_unstable();
        let has_duplicates = coords.windows(2).any(|w| w[0] == w[1]);
        let mut nonempty_rows = 0usize;
        let mut max_row_len = 0usize;
        let mut row_lens: Vec<usize> = Vec::new();
        let mut i = 0;
        while i < coords.len() {
            let r = coords[i].0;
            let mut j = i;
            while j < coords.len() && coords[j].0 == r {
                j += 1;
            }
            nonempty_rows += 1;
            max_row_len = max_row_len.max(j - i);
            row_lens.push(j - i);
            i = j;
        }
        let mean = nnz as f64 / nonempty_rows as f64;
        let row_len_variance = row_lens
            .iter()
            .map(|&l| (l as f64 - mean) * (l as f64 - mean))
            .sum::<f64>()
            / nonempty_rows as f64;

        // Distinct diagonals.
        let mut diags: Vec<i64> = rows
            .iter()
            .zip(cols)
            .map(|(&r, &c)| c as i64 - r as i64)
            .collect();
        diags.sort_unstable();
        diags.dedup();

        // Dense-block coverage: largest b where every touched aligned
        // b×b block holds exactly b² (distinct) entries.
        let mut dense_block = None;
        if !has_duplicates {
            for &bs in &BCSR_BLOCK_SIZES {
                if nnz % (bs * bs) != 0 {
                    continue;
                }
                let mut blocks: HashMap<(u64, u64), usize> = HashMap::new();
                for (&r, &c) in rows.iter().zip(cols) {
                    *blocks.entry((r / bs as u64, c / bs as u64)).or_insert(0) += 1;
                }
                if blocks.values().all(|&n| n == bs * bs) {
                    dense_block = Some(bs);
                    break;
                }
            }
        }

        TileStructure {
            nnz,
            row_span: (row_hi - row_lo + 1) as usize,
            nonempty_rows,
            diag_count: diags.len(),
            max_row_len,
            row_len_variance,
            has_duplicates,
            dense_block,
        }
    }

    /// The kernel the auto heuristic selects for this structure.
    ///
    /// Preference order: register-blocked BCSR when the tile is a
    /// union of fully dense aligned blocks; DIA when the tile is
    /// banded (few, well-filled diagonals); ELL when row lengths are
    /// uniform enough that padding stays under 25%; CSR otherwise.
    /// Tiles with duplicate coordinates always take CSR (the only
    /// layout that preserves their accumulation order).
    pub fn select(&self) -> KernelKind {
        if self.nnz == 0 || self.has_duplicates {
            return KernelKind::Csr;
        }
        if self.dense_block.is_some() {
            return KernelKind::Bcsr;
        }
        if self.diag_count <= AUTO_DIA_MAX_DIAGS
            && self.dia_fill() >= AUTO_DIA_MIN_FILL
            && self.nnz as f64 / self.diag_count as f64 >= AUTO_DIA_MIN_DIAG_LEN
        {
            return KernelKind::Dia;
        }
        if self.ell_fill() >= AUTO_ELL_MIN_FILL {
            return KernelKind::Ell;
        }
        KernelKind::Csr
    }

    /// Coarse structural signature for cost-catalogue lookup; see
    /// [`StructureKey`].
    pub fn key(&self) -> StructureKey {
        StructureKey {
            nnz_log2: log2_bucket(self.nnz as u64),
            diag_log2: log2_bucket(self.diag_count as u64),
            row_var_bucket: variance_bucket(self.row_len_variance),
            dense_block: self.dense_block.unwrap_or(0) as u8,
            stencil: 0,
        }
    }
}

/// `floor(log2(n)) + 1`, with 0 reserved for `n == 0` — buckets a
/// count into ~64 exponentially-spaced bins so structurally similar
/// tiles share catalogue entries.
fn log2_bucket(n: u64) -> u8 {
    (64 - n.leading_zeros()) as u8
}

/// Buckets row-length variance into {0: uniform, 1: mild (< 1),
/// 2: moderate (< 16), 3: wild}.
fn variance_bucket(var: f64) -> u8 {
    if var == 0.0 {
        0
    } else if var < 1.0 {
        1
    } else if var < 16.0 {
        2
    } else {
        3
    }
}

/// Coarse, bucketed signature of an operator tile's structure — the
/// catalogue key half contributed by kdr-sparse. Two tiles with the
/// same key are expected to have similar per-apply cost for a given
/// kernel kind, so observations generalize across tiles and sessions.
///
/// Buckets are deliberately coarse (log2 counts, a four-way variance
/// class) to keep the catalogue small and its hit rate high; exact
/// costs are refined online per key. `stencil` is the
/// [`crate::stencil::StencilKind`] wire code plus one for
/// matrix-free registrations and 0 for assembled tiles.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct StructureKey {
    /// log2 bucket of the stored entry count.
    pub nnz_log2: u8,
    /// log2 bucket of the distinct-diagonal count.
    pub diag_log2: u8,
    /// Row-length-variance class (0 uniform … 3 wild).
    pub row_var_bucket: u8,
    /// Dense-block edge (8/4/2) or 0 when not block-structured.
    pub dense_block: u8,
    /// Stencil-kind code + 1 for matrix-free tiles; 0 for assembled.
    pub stencil: u8,
}

impl StructureKey {
    /// Key for a matrix-free stencil tile: `points` is the stencil's
    /// points-per-row (3/5/7/27), `rows` the tile's row count, and
    /// `stencil_code` the [`crate::stencil::StencilKind`] wire code.
    pub fn for_stencil(stencil_code: u8, points: usize, rows: u64) -> Self {
        StructureKey {
            nnz_log2: log2_bucket(rows.saturating_mul(points as u64)),
            diag_log2: log2_bucket(points as u64),
            row_var_bucket: 0,
            dense_block: 0,
            stencil: stencil_code + 1,
        }
    }

    /// Fixed-width byte encoding for the durable store.
    pub fn to_bytes(self) -> [u8; 5] {
        [
            self.nnz_log2,
            self.diag_log2,
            self.row_var_bucket,
            self.dense_block,
            self.stencil,
        ]
    }

    /// Inverse of [`StructureKey::to_bytes`].
    pub fn from_bytes(b: [u8; 5]) -> Self {
        StructureKey {
            nnz_log2: b[0],
            diag_log2: b[1],
            row_var_bucket: b[2],
            dense_block: b[3],
            stencil: b[4],
        }
    }
}

/// Cost-model hook consulted during [`KernelChoice::Auto`] lowering.
///
/// An advisor sees the tile's full structure summary and the piece
/// count of the surrounding partition and may override the built-in
/// heuristic's kernel choice. Returning `None` (or an unrepresentable
/// kind — lowering still falls back to CSR per the bitwise contract)
/// defers to [`TileStructure::select`]. Implementations must be
/// deterministic for a fixed internal state: the planner relies on
/// identical advice for identical tiles within one lowering pass.
pub trait KernelAdvisor: Send + Sync {
    /// Advise a kernel kind for a tile with this structure, or `None`
    /// to defer to the structure heuristic.
    fn advise(&self, structure: &TileStructure, pieces: usize) -> Option<KernelKind>;
}

/// Row-sorted CSR payload (the reference kernel). `row_ids` lists
/// only rows with entries; row `r` spans
/// `cols/vals[row_ptr[r]..row_ptr[r+1]]`, sorted by column (stable
/// for duplicates).
#[derive(Clone, Debug)]
pub struct CsrTile<T> {
    /// Component-local row coordinates, ascending, nonempty rows only.
    pub row_ids: Vec<u64>,
    /// Entry ranges per stored row (`row_ids.len() + 1` offsets).
    pub row_ptr: Vec<usize>,
    /// Column coordinates, ascending within each row.
    pub cols: Vec<u64>,
    /// Entry values, aligned with `cols`.
    pub vals: Vec<T>,
}

/// Diagonal-major banded payload. Values are stored dense per
/// diagonal (`vals[d · nrows + local_row]`); `runs` lists, per
/// diagonal, the local-row ranges actually holding entries, so
/// padding is skipped structurally.
#[derive(Clone, Debug)]
pub struct DiaTile<T> {
    /// First (lowest) row of the tile's row span.
    pub row_lo: u64,
    /// Rows in the span (dense extent of every diagonal).
    pub nrows: usize,
    /// Stored diagonal offsets (`col − row`), ascending.
    pub offsets: Vec<i64>,
    /// `runs[run_ptr[d]..run_ptr[d+1]]` are diagonal `d`'s valid
    /// local-row ranges `(lo, hi)`, ascending.
    pub run_ptr: Vec<usize>,
    /// Valid local-row ranges, concatenated per diagonal.
    pub runs: Vec<(u32, u32)>,
    /// Dense diagonal-major values (`offsets.len() · nrows`), zero
    /// in padding slots.
    pub vals: Vec<T>,
}

/// Padded-lane (ELLPACK) payload: `width` slots per stored row,
/// row-major; slots past `row_len[r]` are padding and never read.
#[derive(Clone, Debug)]
pub struct EllTile<T> {
    /// Component-local row coordinates, ascending, nonempty rows only.
    pub row_ids: Vec<u64>,
    /// Lane width (longest row).
    pub width: usize,
    /// Valid entries per stored row.
    pub row_len: Vec<u32>,
    /// Column coordinates, `row_ids.len() · width`, ascending within
    /// each row's valid prefix (padding repeats the last valid
    /// column).
    pub cols: Vec<u64>,
    /// Values, same shape as `cols`, zero in padding slots.
    pub vals: Vec<T>,
}

/// Register-blocked BCSR payload over fully dense aligned `bs × bs`
/// blocks.
#[derive(Clone, Debug)]
pub struct BcsrTile<T> {
    /// Block edge length.
    pub bs: usize,
    /// Global block-row indices (`row / bs`), ascending, nonempty
    /// block rows only.
    pub brow_ids: Vec<u64>,
    /// Block ranges per stored block row.
    pub bptr: Vec<usize>,
    /// Global block-column indices, ascending within each block row.
    pub bcols: Vec<u64>,
    /// Block values, `bs · bs` per block, row-major within the block.
    pub vals: Vec<T>,
}

/// One tile lowered into its selected kernel payload.
#[derive(Clone, Debug)]
pub enum TileKernel<T> {
    /// No stored entries; executing it is a no-op and backends skip
    /// the task launch entirely.
    Empty,
    /// See [`CsrTile`].
    Csr(CsrTile<T>),
    /// See [`DiaTile`].
    Dia(DiaTile<T>),
    /// See [`EllTile`].
    Ell(EllTile<T>),
    /// See [`BcsrTile`].
    Bcsr(BcsrTile<T>),
    /// Matrix-free: see [`crate::matfree::StencilTile`]. Never
    /// produced by [`TileKernel::lower`]; built directly from a
    /// stencil descriptor by the execution backend.
    Stencil(crate::matfree::StencilTile<T>),
}

/// Order triplet indices by `(row, col)`, stable in input order for
/// duplicates — the canonical accumulation order of the whole family.
fn sorted_order(rows: &[u64], cols: &[u64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..rows.len()).collect();
    order.sort_by_key(|&k| (rows[k], cols[k]));
    order
}

impl<T: Scalar> TileKernel<T> {
    /// Lower one tile's triplets (any order, component-local
    /// coordinates) into a kernel payload.
    ///
    /// With [`KernelChoice::Auto`] the structure analysis picks; with
    /// [`KernelChoice::Force`] the given kind is used when
    /// representable (falling back to CSR otherwise, so forcing can
    /// never change results or lose entries).
    pub fn lower(rows: &[u64], cols: &[u64], vals: &[T], choice: KernelChoice) -> Self {
        Self::lower_advised(rows, cols, vals, choice, 1, None)
    }

    /// [`TileKernel::lower`] with a cost-model hook: under
    /// [`KernelChoice::Auto`], a [`KernelAdvisor`] may override the
    /// structure heuristic (`pieces` is the partition's piece count,
    /// part of the advisor's cost key). Advice of `Stencil` is
    /// ignored — assembled triplets are never reinterpreted — and any
    /// unrepresentable advice falls back to CSR exactly like a
    /// forced kind, so advice can never change results.
    pub fn lower_advised(
        rows: &[u64],
        cols: &[u64],
        vals: &[T],
        choice: KernelChoice,
        pieces: usize,
        advisor: Option<&dyn KernelAdvisor>,
    ) -> Self {
        assert_eq!(rows.len(), cols.len());
        assert_eq!(rows.len(), vals.len());
        if rows.is_empty() {
            return TileKernel::Empty;
        }
        let structure = TileStructure::analyze(rows, cols, vals);
        let kind = match choice {
            KernelChoice::Auto => advisor
                .and_then(|a| a.advise(&structure, pieces))
                .filter(|&k| k != KernelKind::Stencil)
                .unwrap_or_else(|| structure.select()),
            KernelChoice::Force(k) => k,
        };
        match kind {
            KernelKind::Bcsr => Self::lower_bcsr(rows, cols, vals, &structure)
                .unwrap_or_else(|| TileKernel::Csr(Self::lower_csr(rows, cols, vals))),
            KernelKind::Dia => Self::lower_dia(rows, cols, vals, &structure)
                .unwrap_or_else(|| TileKernel::Csr(Self::lower_csr(rows, cols, vals))),
            KernelKind::Ell => Self::lower_ell(rows, cols, vals, &structure)
                .unwrap_or_else(|| TileKernel::Csr(Self::lower_csr(rows, cols, vals))),
            KernelKind::Csr => TileKernel::Csr(Self::lower_csr(rows, cols, vals)),
            // Assembled triplets carry no grid geometry; honoring the
            // bitwise contract means never guessing one. Registering
            // via a stencil descriptor is the only route to the
            // matrix-free kernel.
            KernelKind::Stencil => TileKernel::Csr(Self::lower_csr(rows, cols, vals)),
        }
    }

    fn lower_csr(rows: &[u64], cols: &[u64], vals: &[T]) -> CsrTile<T> {
        let order = sorted_order(rows, cols);
        let mut row_ids = Vec::new();
        let mut row_ptr = Vec::new();
        let mut cs = Vec::with_capacity(order.len());
        let mut vs = Vec::with_capacity(order.len());
        for &k in &order {
            if row_ids.last().copied() != Some(rows[k]) {
                row_ids.push(rows[k]);
                row_ptr.push(cs.len());
            }
            cs.push(cols[k]);
            vs.push(vals[k]);
        }
        row_ptr.push(cs.len());
        CsrTile {
            row_ids,
            row_ptr,
            cols: cs,
            vals: vs,
        }
    }

    fn lower_dia(rows: &[u64], cols: &[u64], vals: &[T], s: &TileStructure) -> Option<Self> {
        if s.has_duplicates {
            return None;
        }
        let slots = s.diag_count.checked_mul(s.row_span)?;
        if slots > DIA_MAX_EXPANSION * s.nnz + 1024 {
            return None; // forced-DIA memory guard
        }
        let row_lo = rows.iter().copied().min().unwrap();
        let nrows = s.row_span;
        let mut offsets: Vec<i64> = rows
            .iter()
            .zip(cols)
            .map(|(&r, &c)| c as i64 - r as i64)
            .collect();
        offsets.sort_unstable();
        offsets.dedup();
        let mut dense = vec![T::ZERO; offsets.len() * nrows];
        let mut present = vec![false; offsets.len() * nrows];
        for ((&r, &c), &v) in rows.iter().zip(cols).zip(vals) {
            let d = offsets.binary_search(&(c as i64 - r as i64)).unwrap();
            let lr = (r - row_lo) as usize;
            dense[d * nrows + lr] = v;
            present[d * nrows + lr] = true;
        }
        let mut run_ptr = Vec::with_capacity(offsets.len() + 1);
        let mut runs = Vec::new();
        for d in 0..offsets.len() {
            run_ptr.push(runs.len());
            let base = d * nrows;
            let mut lr = 0usize;
            while lr < nrows {
                if present[base + lr] {
                    let lo = lr;
                    while lr < nrows && present[base + lr] {
                        lr += 1;
                    }
                    runs.push((lo as u32, lr as u32));
                } else {
                    lr += 1;
                }
            }
        }
        run_ptr.push(runs.len());
        Some(TileKernel::Dia(DiaTile {
            row_lo,
            nrows,
            offsets,
            run_ptr,
            runs,
            vals: dense,
        }))
    }

    fn lower_ell(rows: &[u64], cols: &[u64], vals: &[T], s: &TileStructure) -> Option<Self> {
        if s.has_duplicates {
            return None;
        }
        let csr = Self::lower_csr(rows, cols, vals);
        let nrows = csr.row_ids.len();
        let width = s.max_row_len;
        let mut pcols = vec![0u64; nrows * width];
        let mut pvals = vec![T::ZERO; nrows * width];
        let mut row_len = Vec::with_capacity(nrows);
        for r in 0..nrows {
            let span = csr.row_ptr[r]..csr.row_ptr[r + 1];
            let len = span.len();
            row_len.push(len as u32);
            let base = r * width;
            pcols[base..base + len].copy_from_slice(&csr.cols[span.clone()]);
            pvals[base..base + len].copy_from_slice(&csr.vals[span]);
            // Pad lane columns with the last valid column so even an
            // (unreached) padded load would stay in bounds.
            let last = pcols[base + len - 1];
            for slot in pcols[base + len..base + width].iter_mut() {
                *slot = last;
            }
        }
        Some(TileKernel::Ell(EllTile {
            row_ids: csr.row_ids,
            width,
            row_len,
            cols: pcols,
            vals: pvals,
        }))
    }

    fn lower_bcsr(rows: &[u64], cols: &[u64], vals: &[T], s: &TileStructure) -> Option<Self> {
        let bs = s.dense_block.or_else(|| {
            // Forced BCSR on a structure the analysis did not flag:
            // retry the coverage check directly.
            if s.has_duplicates {
                return None;
            }
            BCSR_BLOCK_SIZES
                .iter()
                .copied()
                .find(|&bs| Self::bcsr_blocks_dense(rows, cols, bs))
        })?;
        let b64 = bs as u64;
        // Sort entries by (block row, block col, local row, local col)
        // — identical per-row column order to CSR.
        let mut order: Vec<usize> = (0..rows.len()).collect();
        order.sort_unstable_by_key(|&k| {
            (rows[k] / b64, cols[k] / b64, rows[k] % b64, cols[k] % b64)
        });
        let mut brow_ids = Vec::new();
        let mut bptr = Vec::new();
        let mut bcols = Vec::new();
        let mut bvals = Vec::with_capacity(rows.len());
        for chunk in order.chunks(bs * bs) {
            let br = rows[chunk[0]] / b64;
            let bc = cols[chunk[0]] / b64;
            if brow_ids.last().copied() != Some(br) {
                brow_ids.push(br);
                bptr.push(bcols.len());
            }
            bcols.push(bc);
            for &k in chunk {
                debug_assert_eq!(rows[k] / b64, br);
                debug_assert_eq!(cols[k] / b64, bc);
                bvals.push(vals[k]);
            }
        }
        bptr.push(bcols.len());
        Some(TileKernel::Bcsr(BcsrTile {
            bs,
            brow_ids,
            bptr,
            bcols,
            vals: bvals,
        }))
    }

    fn bcsr_blocks_dense(rows: &[u64], cols: &[u64], bs: usize) -> bool {
        if rows.len() % (bs * bs) != 0 {
            return false;
        }
        let mut blocks: HashMap<(u64, u64), usize> = HashMap::new();
        for (&r, &c) in rows.iter().zip(cols) {
            *blocks.entry((r / bs as u64, c / bs as u64)).or_insert(0) += 1;
        }
        blocks.values().all(|&n| n == bs * bs)
    }

    /// The lowered kind (`None` for [`TileKernel::Empty`]).
    pub fn kind(&self) -> Option<KernelKind> {
        match self {
            TileKernel::Empty => None,
            TileKernel::Csr(_) => Some(KernelKind::Csr),
            TileKernel::Dia(_) => Some(KernelKind::Dia),
            TileKernel::Ell(_) => Some(KernelKind::Ell),
            TileKernel::Bcsr(_) => Some(KernelKind::Bcsr),
            TileKernel::Stencil(_) => Some(KernelKind::Stencil),
        }
    }

    /// Stored entries (padding excluded). For the matrix-free kernel
    /// this is the entry count of the assembled *equivalent* — what
    /// the apply computes, not what memory holds (which is zero; see
    /// [`TileKernel::value_bytes`]).
    pub fn nnz(&self) -> usize {
        match self {
            TileKernel::Empty => 0,
            TileKernel::Csr(t) => t.vals.len(),
            TileKernel::Dia(t) => t.runs.iter().map(|&(lo, hi)| (hi - lo) as usize).sum(),
            TileKernel::Ell(t) => t.row_len.iter().map(|&l| l as usize).sum(),
            TileKernel::Bcsr(t) => t.vals.len(),
            TileKernel::Stencil(t) => t.nnz(),
        }
    }

    /// Bytes of *value* storage this kernel holds, padding included —
    /// the memory-traffic side of the matrix-free story. DIA and ELL
    /// count their dense padding slots (they are streamed); the
    /// stencil kernel counts zero.
    pub fn value_bytes(&self) -> usize {
        let w = std::mem::size_of::<T>();
        match self {
            TileKernel::Empty => 0,
            TileKernel::Csr(t) => t.vals.len() * w,
            TileKernel::Dia(t) => t.vals.len() * w,
            TileKernel::Ell(t) => t.vals.len() * w,
            TileKernel::Bcsr(t) => t.vals.len() * w,
            TileKernel::Stencil(_) => 0,
        }
    }

    /// True when the tile stores nothing (its task launch can be
    /// skipped; the zero-fill plan owns its output rows).
    pub fn is_empty(&self) -> bool {
        matches!(self, TileKernel::Empty)
    }

    /// Execute `y += A x` (or `y += Aᵀ x` when `transpose`) through
    /// the accessor traits.
    #[inline]
    pub fn apply<X: VecIn<T>, Y: VecOut<T>>(&self, x: &X, y: &mut Y, transpose: bool) {
        match self {
            TileKernel::Empty => {}
            TileKernel::Csr(t) => {
                if transpose {
                    t.apply_t(x, y)
                } else {
                    t.apply(x, y)
                }
            }
            TileKernel::Dia(t) => {
                if transpose {
                    t.apply_t(x, y)
                } else {
                    t.apply(x, y)
                }
            }
            TileKernel::Ell(t) => {
                if transpose {
                    t.apply_t(x, y)
                } else {
                    t.apply(x, y)
                }
            }
            TileKernel::Bcsr(t) => {
                if transpose {
                    t.apply_t(x, y)
                } else {
                    t.apply(x, y)
                }
            }
            TileKernel::Stencil(t) => t.apply(x, y, transpose),
        }
    }

    /// Slice convenience wrapper over [`TileKernel::apply`] (tests,
    /// benchmarks, reference checks).
    pub fn apply_slices(&self, x: &[T], y: &mut [T], transpose: bool) {
        let mut yy = y;
        self.apply(&x, &mut yy, transpose);
    }
}

impl<T: Scalar> CsrTile<T> {
    /// `y += A x`: per-row register accumulation, columns ascending.
    #[inline]
    pub fn apply<X: VecIn<T>, Y: VecOut<T>>(&self, x: &X, y: &mut Y) {
        for (r, &row) in self.row_ids.iter().enumerate() {
            let i = row as usize;
            let mut acc = y.load(i);
            for idx in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc = self.vals[idx].mul_add(x.load(self.cols[idx] as usize), acc);
            }
            y.store(i, acc);
        }
    }

    /// `y += Aᵀ x`: rows ascending, scatter along each stored row
    /// with `x[row]` loaded once.
    #[inline]
    pub fn apply_t<X: VecIn<T>, Y: VecOut<T>>(&self, x: &X, y: &mut Y) {
        for (r, &row) in self.row_ids.iter().enumerate() {
            let xv = x.load(row as usize);
            for idx in self.row_ptr[r]..self.row_ptr[r + 1] {
                let j = self.cols[idx] as usize;
                y.store(j, self.vals[idx].mul_add(xv, y.load(j)));
            }
        }
    }
}

impl<T: Scalar> DiaTile<T> {
    /// `y += A x`: diagonals ascending; every run is a stride-1,
    /// gather-free `mul_add` loop over contiguous rows. Per output
    /// row, ascending diagonal offset equals ascending column — the
    /// CSR order.
    #[inline]
    pub fn apply<X: VecIn<T>, Y: VecOut<T>>(&self, x: &X, y: &mut Y) {
        for d in 0..self.offsets.len() {
            let off = self.offsets[d];
            let base = d * self.nrows;
            for &(lo, hi) in &self.runs[self.run_ptr[d]..self.run_ptr[d + 1]] {
                let row0 = self.row_lo + lo as u64;
                let col0 = (row0 as i64 + off) as u64;
                for k in 0..(hi - lo) as usize {
                    let i = row0 as usize + k;
                    let v = self.vals[base + lo as usize + k];
                    y.store(i, v.mul_add(x.load(col0 as usize + k), y.load(i)));
                }
            }
        }
    }

    /// `y += Aᵀ x`: diagonals **descending** so each output column
    /// receives its contributions in ascending-row (CSR) order; the
    /// inner loops stay stride-1.
    #[inline]
    pub fn apply_t<X: VecIn<T>, Y: VecOut<T>>(&self, x: &X, y: &mut Y) {
        for d in (0..self.offsets.len()).rev() {
            let off = self.offsets[d];
            let base = d * self.nrows;
            for &(lo, hi) in &self.runs[self.run_ptr[d]..self.run_ptr[d + 1]] {
                let row0 = self.row_lo + lo as u64;
                let col0 = (row0 as i64 + off) as u64;
                for k in 0..(hi - lo) as usize {
                    let j = col0 as usize + k;
                    let v = self.vals[base + lo as usize + k];
                    y.store(j, v.mul_add(x.load(row0 as usize + k), y.load(j)));
                }
            }
        }
    }
}

impl<T: Scalar> EllTile<T> {
    /// `y += A x`: fixed-stride lanes, per-row register accumulation
    /// over the valid prefix.
    #[inline]
    pub fn apply<X: VecIn<T>, Y: VecOut<T>>(&self, x: &X, y: &mut Y) {
        for (r, &row) in self.row_ids.iter().enumerate() {
            let i = row as usize;
            let base = r * self.width;
            let mut acc = y.load(i);
            for k in base..base + self.row_len[r] as usize {
                acc = self.vals[k].mul_add(x.load(self.cols[k] as usize), acc);
            }
            y.store(i, acc);
        }
    }

    /// `y += Aᵀ x`: rows ascending, scatter over the valid prefix.
    #[inline]
    pub fn apply_t<X: VecIn<T>, Y: VecOut<T>>(&self, x: &X, y: &mut Y) {
        for (r, &row) in self.row_ids.iter().enumerate() {
            let xv = x.load(row as usize);
            let base = r * self.width;
            for k in base..base + self.row_len[r] as usize {
                let j = self.cols[k] as usize;
                y.store(j, self.vals[k].mul_add(xv, y.load(j)));
            }
        }
    }
}

impl<T: Scalar> BcsrTile<T> {
    /// `y += A x` with the block size monomorphized so the `BS`-wide
    /// register accumulators unroll.
    #[inline]
    pub fn apply<X: VecIn<T>, Y: VecOut<T>>(&self, x: &X, y: &mut Y) {
        match self.bs {
            2 => self.fwd::<X, Y, 2>(x, y),
            4 => self.fwd::<X, Y, 4>(x, y),
            8 => self.fwd::<X, Y, 8>(x, y),
            _ => unreachable!("unsupported block size {}", self.bs),
        }
    }

    /// `y += Aᵀ x`, block size monomorphized.
    #[inline]
    pub fn apply_t<X: VecIn<T>, Y: VecOut<T>>(&self, x: &X, y: &mut Y) {
        match self.bs {
            2 => self.bwd::<X, Y, 2>(x, y),
            4 => self.bwd::<X, Y, 4>(x, y),
            8 => self.bwd::<X, Y, 8>(x, y),
            _ => unreachable!("unsupported block size {}", self.bs),
        }
    }

    /// Forward: per block row, `BS` output accumulators live in
    /// registers while each block's `BS` inputs are loaded once and
    /// reused by every row of the block.
    fn fwd<X: VecIn<T>, Y: VecOut<T>, const BS: usize>(&self, x: &X, y: &mut Y) {
        for (br, &brow) in self.brow_ids.iter().enumerate() {
            let row0 = brow as usize * BS;
            let mut acc = [T::ZERO; BS];
            for (lr, a) in acc.iter_mut().enumerate() {
                *a = y.load(row0 + lr);
            }
            for b in self.bptr[br]..self.bptr[br + 1] {
                let col0 = self.bcols[b] as usize * BS;
                let mut xs = [T::ZERO; BS];
                for (lc, xv) in xs.iter_mut().enumerate() {
                    *xv = x.load(col0 + lc);
                }
                let vbase = b * BS * BS;
                for (lr, a) in acc.iter_mut().enumerate() {
                    for (lc, &xv) in xs.iter().enumerate() {
                        *a = self.vals[vbase + lr * BS + lc].mul_add(xv, *a);
                    }
                }
            }
            for (lr, &a) in acc.iter().enumerate() {
                y.store(row0 + lr, a);
            }
        }
    }

    /// Transpose: per block row, the `BS` inputs are loaded once and
    /// each block scatters `BS` column accumulations. Local rows
    /// ascend inside each block, so every output column sees
    /// ascending global rows — the CSR-transpose order.
    fn bwd<X: VecIn<T>, Y: VecOut<T>, const BS: usize>(&self, x: &X, y: &mut Y) {
        for (br, &brow) in self.brow_ids.iter().enumerate() {
            let row0 = brow as usize * BS;
            let mut xs = [T::ZERO; BS];
            for (lr, xv) in xs.iter_mut().enumerate() {
                *xv = x.load(row0 + lr);
            }
            for b in self.bptr[br]..self.bptr[br + 1] {
                let col0 = self.bcols[b] as usize * BS;
                let vbase = b * BS * BS;
                let mut acc = [T::ZERO; BS];
                for (lc, a) in acc.iter_mut().enumerate() {
                    *a = y.load(col0 + lc);
                }
                for (lr, &xv) in xs.iter().enumerate() {
                    for (lc, a) in acc.iter_mut().enumerate() {
                        *a = self.vals[vbase + lr * BS + lc].mul_add(xv, *a);
                    }
                }
                for (lc, &a) in acc.iter().enumerate() {
                    y.store(col0 + lc, a);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference `y += A x` straight from triplets in (row, col,
    /// input-order) sequence — the bitwise ground truth.
    fn reference(
        rows: &[u64],
        cols: &[u64],
        vals: &[f64],
        x: &[f64],
        y: &mut [f64],
        transpose: bool,
    ) {
        let mut order: Vec<usize> = (0..rows.len()).collect();
        order.sort_by_key(|&k| (rows[k], cols[k]));
        for &k in &order {
            let (i, j) = if transpose {
                (cols[k] as usize, rows[k] as usize)
            } else {
                (rows[k] as usize, cols[k] as usize)
            };
            y[i] = vals[k].mul_add(x[j], y[i]);
        }
    }

    fn tridiag(n: u64) -> (Vec<u64>, Vec<u64>, Vec<f64>) {
        let mut r = Vec::new();
        let mut c = Vec::new();
        let mut v = Vec::new();
        for i in 0..n {
            for (dj, val) in [(-1i64, -1.0), (0, 2.0), (1, -1.0)] {
                let j = i as i64 + dj;
                if j >= 0 && (j as u64) < n {
                    r.push(i);
                    c.push(j as u64);
                    v.push(val + 0.01 * i as f64);
                }
            }
        }
        (r, c, v)
    }

    fn check_all_kinds(rows: &[u64], cols: &[u64], vals: &[f64], n: usize) {
        let x: Vec<f64> = (0..n).map(|i| 0.3 + 0.7 * i as f64).collect();
        for transpose in [false, true] {
            let mut want = vec![0.1; n];
            reference(rows, cols, vals, &x, &mut want, transpose);
            for kind in KernelKind::ALL {
                let k = TileKernel::lower(rows, cols, vals, KernelChoice::Force(kind));
                let mut got = vec![0.1; n];
                k.apply_slices(&x, &mut got, transpose);
                assert_eq!(
                    got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "kind {kind:?} transpose {transpose} differs"
                );
            }
        }
    }

    #[test]
    fn tridiagonal_selects_dia_and_matches() {
        let (r, c, v) = tridiag(32);
        let s = TileStructure::analyze(&r, &c, &v);
        assert_eq!(s.diag_count, 3);
        assert_eq!(s.select(), KernelKind::Dia);
        check_all_kinds(&r, &c, &v, 32);
    }

    #[test]
    fn dense_blocks_select_bcsr() {
        // Two dense 4x4 blocks on the block diagonal.
        let mut r = Vec::new();
        let mut c = Vec::new();
        let mut v = Vec::new();
        for b in 0..2u64 {
            for i in 0..4u64 {
                for j in 0..4u64 {
                    r.push(b * 4 + i);
                    c.push(b * 4 + j);
                    v.push((1 + i + 2 * j + b) as f64);
                }
            }
        }
        let s = TileStructure::analyze(&r, &c, &v);
        assert_eq!(s.dense_block, Some(4));
        assert_eq!(s.select(), KernelKind::Bcsr);
        check_all_kinds(&r, &c, &v, 8);
    }

    #[test]
    fn duplicates_force_csr_everywhere() {
        let r = vec![1, 1, 1, 2];
        let c = vec![3, 3, 0, 2];
        let v = vec![0.1, 0.2, 0.3, 0.4];
        let s = TileStructure::analyze(&r, &c, &v);
        assert!(s.has_duplicates);
        assert_eq!(s.select(), KernelKind::Csr);
        // Forcing any kind must fall back without changing bits.
        for kind in KernelKind::ALL {
            let k = TileKernel::lower(&r, &c, &v, KernelChoice::Force(kind));
            assert_eq!(k.kind(), Some(KernelKind::Csr));
        }
        check_all_kinds(&r, &c, &v, 4);
    }

    #[test]
    fn empty_and_singleton_tiles() {
        let k = TileKernel::<f64>::lower(&[], &[], &[], KernelChoice::Auto);
        assert!(k.is_empty());
        assert_eq!(k.nnz(), 0);
        let r = vec![5u64];
        let c = vec![2u64];
        let v = vec![-3.25];
        check_all_kinds(&r, &c, &v, 8);
    }

    #[test]
    fn uniform_rows_select_ell() {
        // 8 rows x 3 scattered (non-banded) entries each.
        let mut r = Vec::new();
        let mut c = Vec::new();
        let mut v = Vec::new();
        for i in 0..8u64 {
            for (s, j) in [(3u64, 0u64), (11, 1), (23, 2)] {
                r.push(i);
                c.push((i * 7 + s) % 31);
                v.push((i + j + 1) as f64 * 0.5);
            }
        }
        let s = TileStructure::analyze(&r, &c, &v);
        assert_eq!(s.select(), KernelKind::Ell);
        check_all_kinds(&r, &c, &v, 31);
    }

    #[test]
    fn nnz_survives_every_lowering() {
        let (r, c, v) = tridiag(16);
        for kind in KernelKind::ALL {
            let k = TileKernel::lower(&r, &c, &v, KernelChoice::Force(kind));
            assert_eq!(k.nnz(), v.len(), "{kind:?}");
        }
    }
}
