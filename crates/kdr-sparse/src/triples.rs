//! Coordinate-list matrix builder.
//!
//! [`Triples`] is the neutral interchange representation every format
//! can be built from and lowered to: a list of `(row, col, value)`
//! entries plus explicit domain/range sizes. Duplicate coordinates are
//! allowed and *sum* (assembly semantics), matching how finite-element
//! codes insert element contributions.

use crate::scalar::Scalar;

/// A list of `(row, col, value)` entries with explicit shape.
#[derive(Clone, Debug)]
pub struct Triples<T> {
    rows: u64,
    cols: u64,
    entries: Vec<(u64, u64, T)>,
}

impl<T: Scalar> Triples<T> {
    /// An empty `rows × cols` builder.
    pub fn new(rows: u64, cols: u64) -> Self {
        Triples {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Build directly from an entry list.
    pub fn from_entries(rows: u64, cols: u64, entries: Vec<(u64, u64, T)>) -> Self {
        let mut t = Triples {
            rows,
            cols,
            entries: Vec::new(),
        };
        for (i, j, v) in entries {
            t.push(i, j, v);
        }
        t
    }

    /// Insert one entry; panics if out of bounds.
    pub fn push(&mut self, row: u64, col: u64, value: T) {
        assert!(row < self.rows, "row {row} out of bounds {}", self.rows);
        assert!(col < self.cols, "col {col} out of bounds {}", self.cols);
        self.entries.push((row, col, value));
    }

    /// Number of range points.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Number of domain points.
    pub fn cols(&self) -> u64 {
        self.cols
    }

    /// Raw entries, in insertion order.
    pub fn entries(&self) -> &[(u64, u64, T)] {
        &self.entries
    }

    /// Number of stored entries (before deduplication).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries were inserted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sort row-major and sum duplicates. Returns a canonical builder
    /// whose coordinates are unique and sorted; zero-valued sums are
    /// kept (structural nonzeros).
    pub fn canonicalize(mut self) -> Self {
        self.entries.sort_unstable_by_key(|&(i, j, _)| (i, j));
        let mut out: Vec<(u64, u64, T)> = Vec::with_capacity(self.entries.len());
        for (i, j, v) in self.entries {
            match out.last_mut() {
                Some(&mut (pi, pj, ref mut pv)) if pi == i && pj == j => *pv += v,
                _ => out.push((i, j, v)),
            }
        }
        Triples {
            rows: self.rows,
            cols: self.cols,
            entries: out,
        }
    }

    /// Reference dense SpMV used as ground truth in tests:
    /// `y[i] = Σ_j A[i,j] x[j]` with duplicates summed.
    pub fn dense_apply(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len() as u64, self.cols);
        let mut y = vec![T::ZERO; self.rows as usize];
        for &(i, j, v) in &self.entries {
            y[i as usize] += v * x[j as usize];
        }
        y
    }

    /// Reference transpose SpMV: `y[j] = Σ_i A[i,j] x[i]`.
    pub fn dense_apply_transpose(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len() as u64, self.rows);
        let mut y = vec![T::ZERO; self.cols as usize];
        for &(i, j, v) in &self.entries {
            y[j as usize] += v * x[i as usize];
        }
        y
    }

    /// Maximum number of entries in any row (ELL width).
    pub fn max_row_nnz(&self) -> u64 {
        let mut counts = vec![0u64; self.rows as usize];
        for &(i, _, _) in &self.entries {
            counts[i as usize] += 1;
        }
        counts.into_iter().max().unwrap_or(0)
    }

    /// The set of distinct diagonal offsets `col - row` present (DIA
    /// diagonals), sorted ascending.
    pub fn diagonal_offsets(&self) -> Vec<i64> {
        let mut offs: Vec<i64> = self
            .entries
            .iter()
            .map(|&(i, j, _)| j as i64 - i as i64)
            .collect();
        offs.sort_unstable();
        offs.dedup();
        offs
    }

    /// Restrict to the sub-block `[row_lo, row_hi) × [col_lo, col_hi)`,
    /// re-indexed to local coordinates. Used to cut a matrix into
    /// tiles for multi-operator formulations (paper §6.2, §6.3).
    pub fn sub_block(&self, row_lo: u64, row_hi: u64, col_lo: u64, col_hi: u64) -> Triples<T> {
        assert!(row_lo <= row_hi && row_hi <= self.rows);
        assert!(col_lo <= col_hi && col_hi <= self.cols);
        let entries = self
            .entries
            .iter()
            .filter(|&&(i, j, _)| i >= row_lo && i < row_hi && j >= col_lo && j < col_hi)
            .map(|&(i, j, v)| (i - row_lo, j - col_lo, v))
            .collect();
        Triples {
            rows: row_hi - row_lo,
            cols: col_hi - col_lo,
            entries,
        }
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Triples<T> {
        Triples {
            rows: self.cols,
            cols: self.rows,
            entries: self.entries.iter().map(|&(i, j, v)| (j, i, v)).collect(),
        }
    }
}

/// Generate a uniformly random sparse matrix with `nnz` entries drawn
/// with replacement (duplicates sum), values in `[-1, 1]`. Determinism
/// comes from the caller-provided RNG-like closure to avoid a hard
/// `rand` dependency in the library.
pub fn random_triples<T: Scalar>(
    rows: u64,
    cols: u64,
    nnz: usize,
    mut next: impl FnMut() -> u64,
) -> Triples<T> {
    let mut t = Triples::new(rows, cols);
    for _ in 0..nnz {
        let i = next() % rows;
        let j = next() % cols;
        let raw = (next() % 2000) as f64 / 1000.0 - 1.0;
        t.push(i, j, T::from_f64(raw));
    }
    t
}

/// A tiny deterministic xorshift generator for tests and examples.
pub fn xorshift(seed: u64) -> impl FnMut() -> u64 {
    let mut state = seed.max(1);
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_apply() {
        let mut t = Triples::<f64>::new(2, 3);
        t.push(0, 0, 1.0);
        t.push(0, 2, 2.0);
        t.push(1, 1, 3.0);
        let y = t.dense_apply(&[1.0, 1.0, 1.0]);
        assert_eq!(y, vec![3.0, 3.0]);
        let yt = t.dense_apply_transpose(&[1.0, 1.0]);
        assert_eq!(yt, vec![1.0, 3.0, 2.0]);
    }

    #[test]
    fn duplicates_sum_on_canonicalize() {
        let t = Triples::from_entries(2, 2, vec![(0, 0, 1.0), (0, 0, 2.0), (1, 1, 4.0)]);
        let c = t.canonicalize();
        assert_eq!(c.entries(), &[(0, 0, 3.0), (1, 1, 4.0)]);
        // Apply is identical before and after canonicalization.
        let t2 = Triples::from_entries(2, 2, vec![(0, 0, 1.0), (0, 0, 2.0), (1, 1, 4.0)]);
        assert_eq!(t2.dense_apply(&[1.0, 1.0]), c.dense_apply(&[1.0, 1.0]));
    }

    #[test]
    fn canonicalize_sorts_row_major() {
        let t = Triples::from_entries(3, 3, vec![(2, 0, 1.0), (0, 1, 1.0), (0, 0, 1.0)]);
        let c = t.canonicalize();
        let coords: Vec<(u64, u64)> = c.entries().iter().map(|&(i, j, _)| (i, j)).collect();
        assert_eq!(coords, vec![(0, 0), (0, 1), (2, 0)]);
    }

    #[test]
    fn sub_block_reindexes() {
        let t = Triples::from_entries(
            4,
            4,
            vec![(0, 0, 1.0), (1, 2, 2.0), (2, 2, 3.0), (3, 3, 4.0)],
        );
        let b = t.sub_block(1, 3, 2, 4);
        assert_eq!(b.rows(), 2);
        assert_eq!(b.cols(), 2);
        let mut e = b.entries().to_vec();
        e.sort_by_key(|&(i, j, _)| (i, j));
        assert_eq!(e, vec![(0, 0, 2.0), (1, 0, 3.0)]);
    }

    #[test]
    fn helpers() {
        let t = Triples::from_entries(
            3,
            3,
            vec![(0, 0, 1.0), (0, 1, 1.0), (1, 2, 1.0), (2, 2, 1.0)],
        );
        assert_eq!(t.max_row_nnz(), 2);
        assert_eq!(t.diagonal_offsets(), vec![0, 1]);
        let tt = t.transposed();
        assert_eq!(
            tt.dense_apply(&[1.0, 2.0, 4.0]),
            t.dense_apply_transpose(&[1.0, 2.0, 4.0])
        );
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bounds_checked() {
        let mut t = Triples::<f64>::new(2, 2);
        t.push(2, 0, 1.0);
    }

    #[test]
    fn random_is_deterministic() {
        let a = random_triples::<f64>(8, 8, 20, xorshift(42));
        let b = random_triples::<f64>(8, 8, 20, xorshift(42));
        assert_eq!(a.entries(), b.entries());
        assert_eq!(a.len(), 20);
    }
}
