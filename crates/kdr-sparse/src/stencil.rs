//! Laplacian stencil matrix generators.
//!
//! The paper's benchmarks use four finite-difference discretizations
//! of Poisson's equation on Cartesian meshes: 3-point (1-D), 5-point
//! (2-D), 7-point (3-D) and 27-point (3-D) Laplacians, with Dirichlet
//! boundary conditions (off-grid neighbors dropped, diagonal kept at
//! the full stencil weight so the matrix stays symmetric positive
//! definite). Matrices are generated at runtime — the paper uses no
//! external datasets — and this module can emit whole matrices,
//! per-row entries, or rectangular tiles (for the multi-operator
//! formulations of §6.2 and §6.3).

use crate::formats::csr::Csr;
use crate::matrix::SparseMatrix;
use crate::scalar::{IndexInt, Scalar};
use crate::triples::Triples;

/// Which Laplacian stencil to generate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StencilKind {
    /// 3-point stencil for the 1-D Laplacian.
    Lap1D3,
    /// 5-point stencil for the 2-D Laplacian.
    Lap2D5,
    /// 7-point stencil for the 3-D Laplacian.
    Lap3D7,
    /// 27-point stencil for the 3-D Laplacian.
    Lap3D27,
}

impl StencilKind {
    /// Grid dimensionality.
    pub fn dims(&self) -> u32 {
        match self {
            StencilKind::Lap1D3 => 1,
            StencilKind::Lap2D5 => 2,
            StencilKind::Lap3D7 | StencilKind::Lap3D27 => 3,
        }
    }

    /// Points in the stencil (matrix row width in the interior).
    pub fn points(&self) -> u64 {
        match self {
            StencilKind::Lap1D3 => 3,
            StencilKind::Lap2D5 => 5,
            StencilKind::Lap3D7 => 7,
            StencilKind::Lap3D27 => 27,
        }
    }

    /// Stable single-byte wire code, used by the durable store.
    /// Codes are append-only: existing assignments never change.
    pub fn code(self) -> u8 {
        match self {
            StencilKind::Lap1D3 => 0,
            StencilKind::Lap2D5 => 1,
            StencilKind::Lap3D7 => 2,
            StencilKind::Lap3D27 => 3,
        }
    }

    /// Inverse of [`StencilKind::code`]; `None` for unknown codes.
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => StencilKind::Lap1D3,
            1 => StencilKind::Lap2D5,
            2 => StencilKind::Lap3D7,
            3 => StencilKind::Lap3D27,
            _ => return None,
        })
    }
}

/// A stencil problem: a kind plus grid dimensions. Unused dimensions
/// must be 1.
#[derive(Clone, Copy, Debug)]
pub struct Stencil {
    /// Which stencil.
    pub kind: StencilKind,
    /// Grid extent in x.
    pub nx: u64,
    /// Grid extent in y (1 for 1-D stencils).
    pub ny: u64,
    /// Grid extent in z (1 below 3-D).
    pub nz: u64,
}

impl Stencil {
    /// A stencil problem over an `nx × ny × nz` grid; extents of
    /// unused dimensions must be 1.
    pub fn new(kind: StencilKind, nx: u64, ny: u64, nz: u64) -> Self {
        match kind.dims() {
            1 => assert!(
                nx >= 1 && ny == 1 && nz == 1,
                "1-D stencil needs ny = nz = 1"
            ),
            2 => assert!(nx >= 1 && ny >= 1 && nz == 1, "2-D stencil needs nz = 1"),
            _ => assert!(nx >= 1 && ny >= 1 && nz >= 1),
        }
        Stencil { kind, nx, ny, nz }
    }

    /// 1-D problem of size `n`.
    pub fn lap1d(n: u64) -> Self {
        Stencil::new(StencilKind::Lap1D3, n, 1, 1)
    }

    /// 2-D 5-point problem on an `nx × ny` grid.
    pub fn lap2d(nx: u64, ny: u64) -> Self {
        Stencil::new(StencilKind::Lap2D5, nx, ny, 1)
    }

    /// 3-D 7-point problem on an `nx × ny × nz` grid.
    pub fn lap3d7(nx: u64, ny: u64, nz: u64) -> Self {
        Stencil::new(StencilKind::Lap3D7, nx, ny, nz)
    }

    /// 3-D 27-point problem on an `nx × ny × nz` grid.
    pub fn lap3d27(nx: u64, ny: u64, nz: u64) -> Self {
        Stencil::new(StencilKind::Lap3D27, nx, ny, nz)
    }

    /// Number of unknowns (matrix dimension).
    pub fn unknowns(&self) -> u64 {
        self.nx * self.ny * self.nz
    }

    /// Exact stored-entry count, computed analytically (no
    /// materialization — used by the machine cost model at scales up
    /// to 2^32 unknowns).
    pub fn nnz(&self) -> u64 {
        // Count neighbor pairs per axis: a line of n points has n - 1
        // adjacent pairs, each contributing two off-diagonal entries.
        let pairs = |n: u64| n.saturating_sub(1);
        match self.kind {
            StencilKind::Lap1D3 => self.nx + 2 * pairs(self.nx),
            StencilKind::Lap2D5 => {
                let n = self.nx * self.ny;
                n + 2 * (pairs(self.nx) * self.ny + self.nx * pairs(self.ny))
            }
            StencilKind::Lap3D7 => {
                let n = self.unknowns();
                n + 2
                    * (pairs(self.nx) * self.ny * self.nz
                        + self.nx * pairs(self.ny) * self.nz
                        + self.nx * self.ny * pairs(self.nz))
            }
            StencilKind::Lap3D27 => {
                // Each point connects to every point in its 3×3×3
                // neighborhood clipped to the grid; total entries =
                // Σ_p Π_axis (neighbors along axis including self).
                // Closed form: Π over axes of (3n − 2) counts exactly
                // that sum, by independence of the axes.
                let f = |n: u64| 3 * n - 2;
                f(self.nx) * f(self.ny) * f(self.nz)
            }
        }
    }

    /// Average row width (used by cost models).
    pub fn avg_row_nnz(&self) -> f64 {
        self.nnz() as f64 / self.unknowns() as f64
    }

    /// The stencil's points as coordinate displacements
    /// `(dx, dy, dz)`, in lexicographic order, plus the live count.
    /// Lexicographic displacement order is ascending *column* order
    /// for every surviving (in-grid) neighbor — columns compare
    /// lexicographically on the coordinate triple, and coordinates are
    /// monotone in the displacements — so every emitter below shares
    /// this one ordering and [`Stencil::point_weight`] for values.
    /// This is the single source of truth for the stencil geometry.
    fn points(&self) -> ([(i64, i64, i64); 27], usize) {
        let mut pts = [(0i64, 0i64, 0i64); 27];
        let mut k = 0;
        match self.kind {
            StencilKind::Lap1D3 | StencilKind::Lap2D5 | StencilKind::Lap3D7 => {
                let dims = self.kind.dims();
                // Lexicographic: -x, -y, -z, center, +z, +y, +x.
                pts[k] = (-1, 0, 0);
                k += 1;
                if dims >= 2 {
                    pts[k] = (0, -1, 0);
                    k += 1;
                }
                if dims >= 3 {
                    pts[k] = (0, 0, -1);
                    k += 1;
                }
                pts[k] = (0, 0, 0);
                k += 1;
                if dims >= 3 {
                    pts[k] = (0, 0, 1);
                    k += 1;
                }
                if dims >= 2 {
                    pts[k] = (0, 1, 0);
                    k += 1;
                }
                pts[k] = (1, 0, 0);
                k += 1;
            }
            StencilKind::Lap3D27 => {
                for dx in -1i64..=1 {
                    for dy in -1i64..=1 {
                        for dz in -1i64..=1 {
                            pts[k] = (dx, dy, dz);
                            k += 1;
                        }
                    }
                }
            }
        }
        (pts, k)
    }

    /// Visit the entries of one matrix row as `(col, value)`, in
    /// ascending column order. This is the one boundary-clipping
    /// implementation every materialization shares — `tile_csr`,
    /// `slab_nnz`, [`StencilOperator`] extraction, and the matrix-free
    /// kernel's boundary rows all route through here.
    pub fn row_entries<T: Scalar>(&self, row: u64, out: &mut Vec<(u64, T)>) {
        out.clear();
        let (ny, nz) = (self.ny, self.nz);
        let x = (row / (ny * nz)) as i64;
        let y = ((row / nz) % ny) as i64;
        let z = (row % nz) as i64;
        let (pts, k) = self.points();
        for &(dx, dy, dz) in &pts[..k] {
            let (xx, yy, zz) = (x + dx, y + dy, z + dz);
            if xx < 0
                || xx >= self.nx as i64
                || yy < 0
                || yy >= ny as i64
                || zz < 0
                || zz >= nz as i64
            {
                continue;
            }
            let col = (xx as u64 * ny + yy as u64) * nz + zz as u64;
            out.push((col, self.point_weight((dx, dy, dz))));
        }
    }

    /// Materialize the whole matrix as a coordinate list.
    pub fn to_triples<T: Scalar>(&self) -> Triples<T> {
        let n = self.unknowns();
        let mut t = Triples::new(n, n);
        let mut row = Vec::new();
        for i in 0..n {
            self.row_entries::<T>(i, &mut row);
            for &(j, v) in &row {
                t.push(i, j, v);
            }
        }
        t
    }

    /// Materialize directly to CSR without the triples detour.
    pub fn to_csr<T: Scalar, I: IndexInt>(&self) -> Csr<T, I> {
        self.tile_csr(0, self.unknowns(), 0, self.unknowns())
    }

    /// Materialize the tile `[row_lo, row_hi) × [col_lo, col_hi)` as a
    /// CSR matrix in *local* coordinates. Tiles are how §6.2's
    /// multi-operator formulation and §6.3's 64×64 tile cut are
    /// constructed.
    pub fn tile_csr<T: Scalar, I: IndexInt>(
        &self,
        row_lo: u64,
        row_hi: u64,
        col_lo: u64,
        col_hi: u64,
    ) -> Csr<T, I> {
        assert!(row_lo <= row_hi && row_hi <= self.unknowns());
        assert!(col_lo <= col_hi && col_hi <= self.unknowns());
        let mut rowptr = Vec::with_capacity((row_hi - row_lo) as usize + 1);
        rowptr.push(0u64);
        let mut colidx = Vec::new();
        let mut values = Vec::new();
        let mut row = Vec::new();
        for i in row_lo..row_hi {
            self.row_entries::<T>(i, &mut row);
            for &(j, v) in &row {
                if j >= col_lo && j < col_hi {
                    colidx.push(I::from_u64(j - col_lo));
                    values.push(v);
                }
            }
            rowptr.push(colidx.len() as u64);
        }
        Csr::from_raw(rowptr, colidx, values, col_hi - col_lo)
    }

    /// The stencil's diagonal offset table: one entry per stencil
    /// point as `(linear_offset, (dx, dy, dz))`, sorted ascending by
    /// linear offset. Because the grid is linearized row-major
    /// (x-major, z-fastest), ascending linear offset is exactly
    /// ascending column order for an interior row — the same order
    /// [`Stencil::row_entries`] emits — so every consumer of this
    /// table (the matrix-free [`StencilOperator`] kernel space, the
    /// [`crate::matfree::StencilTile`] interior fast path) shares one
    /// accumulation order with the assembled CSR reference.
    pub fn offset_table(&self) -> Vec<(i64, (i64, i64, i64))> {
        let (ny, nz) = (self.ny, self.nz);
        let (pts, k) = self.points();
        let mut pairs: Vec<(i64, (i64, i64, i64))> = pts[..k]
            .iter()
            .map(|&(dx, dy, dz)| (dx * (ny * nz) as i64 + dy * nz as i64 + dz, (dx, dy, dz)))
            .collect();
        pairs.sort_unstable_by_key(|&(o, _)| o);
        pairs
    }

    /// The matrix value carried by displacement `(dx, dy, dz)`:
    /// the Dirichlet diagonal weight at the center, `-1` off it.
    pub fn point_weight<T: Scalar>(&self, d: (i64, i64, i64)) -> T {
        if d == (0, 0, 0) {
            match self.kind {
                StencilKind::Lap3D27 => T::from_f64(26.0),
                k => T::from_f64(2.0 * k.dims() as f64),
            }
        } else {
            T::from_f64(-1.0)
        }
    }

    /// Exact entry count of a row-slab tile `[row_lo, row_hi) × D`
    /// without materialization (cost model helper).
    pub fn slab_nnz(&self, row_lo: u64, row_hi: u64) -> u64 {
        // Exact per-row counting is cheap enough for the slab counts
        // the simulator needs (the slab count is O(rows), but only
        // row *widths* are required, which depend on the boundary
        // pattern; use the analytic whole-grid value scaled for the
        // interior plus exact edges for small slabs).
        let mut nnz = 0u64;
        let mut row = Vec::new();
        // Row width depends only on the (x, y, z) boundary pattern;
        // for large slabs, sample distinct x-layers instead of every
        // row. An x-layer of a row-major grid has constant width
        // profile, so per-layer totals repeat for interior layers.
        let layer = self.ny * self.nz;
        if layer == 0 || row_hi <= row_lo {
            return 0;
        }
        let full_layers_lo = row_lo.div_ceil(layer);
        let full_layers_hi = row_hi / layer;
        // Partial head.
        let head_end = (full_layers_lo * layer).min(row_hi);
        for i in row_lo..head_end {
            self.row_entries::<f64>(i, &mut row);
            nnz += row.len() as u64;
        }
        if full_layers_hi > full_layers_lo {
            // One boundary layer (x = 0 or x = nx-1) differs from the
            // interior; compute each distinct layer total once.
            let mut layer_total = |x: u64| -> u64 {
                let mut s = 0;
                for p in 0..layer {
                    self.row_entries::<f64>(x * layer + p, &mut row);
                    s += row.len() as u64;
                }
                s
            };
            let mut cache: Vec<(u64, u64)> = Vec::new();
            for x in full_layers_lo..full_layers_hi {
                // Layer class: 0 (x = 0), 1 (interior), 2 (x = nx-1).
                let class = if x == 0 {
                    0
                } else if x + 1 == self.nx {
                    2
                } else {
                    1
                };
                if let Some(&(_, v)) = cache.iter().find(|&&(c, _)| c == class) {
                    nnz += v;
                } else {
                    let v = layer_total(x);
                    cache.push((class, v));
                    nnz += v;
                }
            }
        }
        // Partial tail. Starting no earlier than the head's end keeps
        // a slab that lives entirely inside one layer (head already
        // counted it) from being counted twice.
        for i in (full_layers_hi * layer).max(head_end)..row_hi {
            self.row_entries::<f64>(i, &mut row);
            nnz += row.len() as u64;
        }
        nnz
    }
}

/// A matrix-free stencil operator: implements [`SparseMatrix`] with
/// *no stored data at all*.
///
/// Kernel space: `K = K0 × D` in DIA layout, where `K0` indexes the
/// stencil's diagonal offsets — both relations are implicit
/// (`col : (k0, i) ↦ i`, `row : (k0, i) ↦ i − offset(k0)`), and entry
/// values are recomputed from the stencil geometry on every access.
/// This is simultaneously:
///
/// * a demonstration of the paper's P2 — a user-defined, matrix-free
///   format plugs into all co-partitioning machinery because it can
///   state its row/column relations; and
/// * the scale-proof representation the simulation backend uses to
///   partition systems of up to 2³² unknowns, where run-level
///   interval arithmetic on the implicit relations replaces any
///   per-entry work.
pub struct StencilOperator<T> {
    stencil: Stencil,
    /// Diagonal offsets in the linearized index space, ascending.
    offsets: Vec<i64>,
    /// Per-offset grid displacement `(dx, dy, dz)`.
    displacements: Vec<(i64, i64, i64)>,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Scalar> StencilOperator<T> {
    /// A matrix-free operator for `stencil`.
    pub fn new(stencil: Stencil) -> Self {
        let pairs = stencil.offset_table();
        StencilOperator {
            stencil,
            offsets: pairs.iter().map(|&(o, _)| o).collect(),
            displacements: pairs.iter().map(|&(_, d)| d).collect(),
            _marker: std::marker::PhantomData,
        }
    }

    /// The underlying stencil description.
    pub fn stencil(&self) -> &Stencil {
        &self.stencil
    }

    /// Number of stored diagonals (`|K0|`).
    pub fn num_diagonals(&self) -> u64 {
        self.offsets.len() as u64
    }

    fn n(&self) -> u64 {
        self.stencil.unknowns()
    }

    /// Value at column `i` of diagonal `k0` (zero where the grid
    /// neighbor relationship does not hold).
    fn value_at(&self, k0: usize, i: u64) -> T {
        let (ny, nz) = (self.stencil.ny, self.stencil.nz);
        let off = self.offsets[k0];
        let row = i as i64 - off;
        if row < 0 || row as u64 >= self.n() {
            return T::ZERO;
        }
        let (dx, dy, dz) = self.displacements[k0];
        // The entry exists iff column = row + displacement in grid
        // coordinates (linear offsets can wrap across grid edges).
        let r = row as u64;
        let rx = (r / (ny * nz)) as i64;
        let ry = ((r / nz) % ny) as i64;
        let rz = (r % nz) as i64;
        let (cx, cy, cz) = (rx + dx, ry + dy, rz + dz);
        let in_grid = cx >= 0
            && (cx as u64) < self.stencil.nx
            && cy >= 0
            && (cy as u64) < ny
            && cz >= 0
            && (cz as u64) < nz;
        if !in_grid {
            return T::ZERO;
        }
        debug_assert_eq!((cx as u64 * ny + cy as u64) * nz + cz as u64, i);
        self.stencil.point_weight((dx, dy, dz))
    }
}

impl<T: Scalar> SparseMatrix<T> for StencilOperator<T> {
    fn kernel_space(&self) -> kdr_index::IndexSpace {
        kdr_index::IndexSpace::grid2(self.num_diagonals(), self.n())
    }

    fn domain_space(&self) -> kdr_index::IndexSpace {
        kdr_index::IndexSpace::flat(self.n())
    }

    fn range_space(&self) -> kdr_index::IndexSpace {
        kdr_index::IndexSpace::flat(self.n())
    }

    fn col_relation(&self) -> Box<dyn kdr_index::Relation> {
        Box::new(kdr_index::ProjectionRelation::new(
            self.num_diagonals(),
            self.n(),
            kdr_index::ProjectionAxis::Inner,
        ))
    }

    fn row_relation(&self) -> Box<dyn kdr_index::Relation> {
        Box::new(kdr_index::DiagonalRelation::new(
            self.offsets.clone(),
            self.n(),
            self.n(),
        ))
    }

    fn nnz(&self) -> u64 {
        self.num_diagonals() * self.n()
    }

    fn for_each_entry(&self, f: &mut dyn FnMut(u64, u64, u64, T)) {
        let n = self.n();
        for k0 in 0..self.offsets.len() {
            let off = self.offsets[k0];
            for i in 0..n {
                let row = i as i64 - off;
                if row < 0 || row as u64 >= n {
                    continue;
                }
                let v = self.value_at(k0, i);
                if v != T::ZERO {
                    f(k0 as u64 * n + i, row as u64, i, v);
                }
            }
        }
    }

    fn spmv_add_piece(&self, piece: &kdr_index::IntervalSet, x: &[T], y: &mut [T]) {
        let n = self.n();
        for k0 in 0..self.offsets.len() {
            let base = k0 as u64 * n;
            let off = self.offsets[k0];
            let slab = piece.intersect(&kdr_index::IntervalSet::from_range(base, base + n));
            for run in slab.runs() {
                for k in run.lo..run.hi {
                    let i = k - base;
                    let row = i as i64 - off;
                    if row < 0 || row as u64 >= n {
                        continue;
                    }
                    let v = self.value_at(k0, i);
                    if v != T::ZERO {
                        y[row as usize] += v * x[i as usize];
                    }
                }
            }
        }
    }

    fn spmv_transpose_add_piece(&self, piece: &kdr_index::IntervalSet, x: &[T], y: &mut [T]) {
        let n = self.n();
        for k0 in 0..self.offsets.len() {
            let base = k0 as u64 * n;
            let off = self.offsets[k0];
            let slab = piece.intersect(&kdr_index::IntervalSet::from_range(base, base + n));
            for run in slab.runs() {
                for k in run.lo..run.hi {
                    let i = k - base;
                    let row = i as i64 - off;
                    if row < 0 || row as u64 >= n {
                        continue;
                    }
                    let v = self.value_at(k0, i);
                    if v != T::ZERO {
                        y[i as usize] += v * x[row as usize];
                    }
                }
            }
        }
    }
}

/// A virtual banded operator: a handful of diagonals, each with one
/// constant weight, and *no stored data*.
///
/// Like [`StencilOperator`], this exists for two reasons: it is a
/// second user-defined format living entirely outside the library's
/// format set (P2), and it represents boundary-coupling blocks of
/// multi-operator systems at simulation scale (the `A_{12}`/`A_{21}`
/// blocks of §6.2 are single off-diagonals of width `ny`). Kernel
/// space `K = K0 × D` in DIA layout; relations implicit; entries
/// computed on access.
pub struct VirtualBanded<T> {
    offsets: Vec<i64>,
    weights: Vec<T>,
    rows: u64,
    cols: u64,
}

impl<T: Scalar> VirtualBanded<T> {
    /// `offsets[k]` is the local diagonal (`col − row`) carrying
    /// constant `weights[k]`; `rows × cols` is the block shape.
    pub fn new(offsets: Vec<i64>, weights: Vec<T>, rows: u64, cols: u64) -> Self {
        assert_eq!(offsets.len(), weights.len());
        assert!(!offsets.is_empty());
        VirtualBanded {
            offsets,
            weights,
            rows,
            cols,
        }
    }

    /// The boundary-coupling block `D_src -> R_dst` of a 5-point
    /// stencil grid split into an upper half (rows `0..h`) and lower
    /// half (`h..2h`), where `ny` is the grid width. With
    /// `upper_to_lower` the block is `A_{21}` (reads the upper half,
    /// writes the lower), whose single local diagonal is `h − ny`;
    /// otherwise `A_{12}` with diagonal `ny − h`.
    pub fn coupling_5pt(h: u64, ny: u64, upper_to_lower: bool) -> Self {
        let off = if upper_to_lower {
            h as i64 - ny as i64
        } else {
            ny as i64 - h as i64
        };
        VirtualBanded::new(vec![off], vec![T::from_f64(-1.0)], h, h)
    }

    fn valid_range(&self, k0: usize) -> (u64, u64) {
        let off = self.offsets[k0];
        // row = i - off in [0, rows): i in [off, rows + off) ∩ [0, cols).
        let lo = off.max(0) as u64;
        let hi = (self.rows as i64 + off).clamp(0, self.cols as i64) as u64;
        (lo.min(self.cols), hi.max(lo).min(self.cols))
    }
}

impl<T: Scalar> SparseMatrix<T> for VirtualBanded<T> {
    fn kernel_space(&self) -> kdr_index::IndexSpace {
        kdr_index::IndexSpace::grid2(self.offsets.len() as u64, self.cols)
    }

    fn domain_space(&self) -> kdr_index::IndexSpace {
        kdr_index::IndexSpace::flat(self.cols)
    }

    fn range_space(&self) -> kdr_index::IndexSpace {
        kdr_index::IndexSpace::flat(self.rows)
    }

    fn col_relation(&self) -> Box<dyn kdr_index::Relation> {
        Box::new(kdr_index::ProjectionRelation::new(
            self.offsets.len() as u64,
            self.cols,
            kdr_index::ProjectionAxis::Inner,
        ))
    }

    fn row_relation(&self) -> Box<dyn kdr_index::Relation> {
        Box::new(kdr_index::DiagonalRelation::new(
            self.offsets.clone(),
            self.cols,
            self.rows,
        ))
    }

    fn nnz(&self) -> u64 {
        self.offsets.len() as u64 * self.cols
    }

    fn for_each_entry(&self, f: &mut dyn FnMut(u64, u64, u64, T)) {
        for k0 in 0..self.offsets.len() {
            let off = self.offsets[k0];
            let (lo, hi) = self.valid_range(k0);
            for i in lo..hi {
                f(
                    k0 as u64 * self.cols + i,
                    (i as i64 - off) as u64,
                    i,
                    self.weights[k0],
                );
            }
        }
    }

    fn spmv_add_piece(&self, piece: &kdr_index::IntervalSet, x: &[T], y: &mut [T]) {
        for k0 in 0..self.offsets.len() {
            let base = k0 as u64 * self.cols;
            let off = self.offsets[k0];
            let w = self.weights[k0];
            let (lo, hi) = self.valid_range(k0);
            let slab = piece.intersect(&kdr_index::IntervalSet::from_range(base + lo, base + hi));
            for run in slab.runs() {
                for k in run.lo..run.hi {
                    let i = k - base;
                    y[(i as i64 - off) as usize] += w * x[i as usize];
                }
            }
        }
    }

    fn spmv_transpose_add_piece(&self, piece: &kdr_index::IntervalSet, x: &[T], y: &mut [T]) {
        for k0 in 0..self.offsets.len() {
            let base = k0 as u64 * self.cols;
            let off = self.offsets[k0];
            let w = self.weights[k0];
            let (lo, hi) = self.valid_range(k0);
            let slab = piece.intersect(&kdr_index::IntervalSet::from_range(base + lo, base + hi));
            for run in slab.runs() {
                for k in run.lo..run.hi {
                    let i = k - base;
                    y[i as usize] += w * x[(i as i64 - off) as usize];
                }
            }
        }
    }
}

/// The paper's fixed right-hand side: entries in `[0, 1]`, generated
/// deterministically from a seed.
pub fn rhs_vector<T: Scalar>(n: u64, seed: u64) -> Vec<T> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            T::from_f64((state % (1 << 20)) as f64 / (1u64 << 20) as f64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::SparseMatrix;

    #[test]
    fn virtual_banded_coupling_blocks_reassemble_5pt() {
        // Split a 6x4 grid (rows 0..12 | 12..24) into two half-grid
        // Laplacians plus two coupling blocks; their sum must equal
        // the full 5-point operator.
        let (nx, ny) = (6u64, 4u64);
        let s = Stencil::lap2d(nx, ny);
        let n = s.unknowns();
        let h = n / 2;
        let whole: Csr<f64> = s.to_csr();
        let a11: Csr<f64> = s.tile_csr(0, h, 0, h);
        let a22: Csr<f64> = s.tile_csr(h, n, h, n);
        let a21 = VirtualBanded::<f64>::coupling_5pt(h, ny, true);
        let a12 = VirtualBanded::<f64>::coupling_5pt(h, ny, false);
        let x = rhs_vector::<f64>(n, 77);
        let mut expect = vec![0.0; n as usize];
        whole.spmv(&x, &mut expect);
        let mut got = vec![0.0; n as usize];
        {
            let (lo, hi) = got.split_at_mut(h as usize);
            a11.spmv(&x[..h as usize], lo);
            a22.spmv(&x[h as usize..], hi);
            a12.spmv_add(&x[h as usize..], lo);
            a21.spmv_add(&x[..h as usize], hi);
        }
        for i in 0..n as usize {
            assert!((got[i] - expect[i]).abs() < 1e-12, "row {i}");
        }
    }

    #[test]
    fn virtual_banded_relations_consistent() {
        let b = VirtualBanded::<f64>::new(vec![-2, 1], vec![0.5, -0.5], 6, 5);
        let row = b.row_relation();
        let col = b.col_relation();
        b.for_each_entry(&mut |k, i, j, v| {
            let mut r = Vec::new();
            row.targets_of(k, &mut r);
            assert_eq!(r, vec![i]);
            let mut c = Vec::new();
            col.targets_of(k, &mut c);
            assert_eq!(c, vec![j]);
            assert!(v == 0.5 || v == -0.5);
        });
        // Adjoint consistency.
        let t = b.to_triples();
        let x = rhs_vector::<f64>(6, 4);
        let mut y1 = vec![0.0; 5];
        b.spmv_transpose(&x, &mut y1);
        let y2 = t.dense_apply_transpose(&x);
        for i in 0..5 {
            assert!((y1[i] - y2[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn stencil_operator_matches_csr() {
        for s in [
            Stencil::lap1d(9),
            Stencil::lap2d(4, 5),
            Stencil::lap3d7(3, 3, 4),
            Stencil::lap3d27(3, 3, 3),
        ] {
            let op = StencilOperator::<f64>::new(s);
            let c: Csr<f64> = s.to_csr();
            let n = s.unknowns() as usize;
            let x = rhs_vector::<f64>(n as u64, 11);
            let mut y1 = vec![0.0; n];
            let mut y2 = vec![0.0; n];
            op.spmv(&x, &mut y1);
            c.spmv(&x, &mut y2);
            for i in 0..n {
                assert!((y1[i] - y2[i]).abs() < 1e-12, "kind {:?} row {i}", s.kind);
            }
            let mut z1 = vec![0.0; n];
            let mut z2 = vec![0.0; n];
            op.spmv_transpose(&x, &mut z1);
            c.spmv_transpose(&x, &mut z2);
            for i in 0..n {
                assert!((z1[i] - z2[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn stencil_operator_entries_match_triples() {
        let s = Stencil::lap2d(4, 4);
        let op = StencilOperator::<f64>::new(s);
        let mut got: Vec<(u64, u64, f64)> = Vec::new();
        op.for_each_entry(&mut |_, i, j, v| got.push((i, j, v)));
        got.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let t = s.to_triples::<f64>().canonicalize();
        let expect: Vec<(u64, u64, f64)> = t.entries().to_vec();
        assert_eq!(got, expect);
    }

    #[test]
    fn stencil_operator_relations_partition_correctly() {
        // The implicit relations drive the same co-partitioning code
        // as stored formats; verify closure correctness for a row-slab
        // partition.
        use kdr_index::{project, project_back, Partition};
        let s = Stencil::lap2d(8, 8);
        let op = StencilOperator::<f64>::new(s);
        let rp = Partition::equal_blocks(64, 4);
        let row = op.row_relation();
        let col = op.col_relation();
        let kp = project_back(row.as_ref(), &rp);
        // The kernel partition covers every non-padding kernel point:
        // offsets ±8 pad 8 points each, offsets ±1 pad 1 each.
        assert_eq!(kp.union_all().cardinality(), 5 * 64 - 18);
        assert!(kp.is_disjoint());
        let dp = project(col.as_ref(), &kp);
        // Each domain piece needs its rows plus one ghost row of the
        // grid (ny = 8 wide).
        assert!(dp.piece(1).cardinality() >= 16 + 8);
        assert!(dp.piece(1).cardinality() <= 16 + 16);
    }

    #[test]
    fn stencil_operator_is_data_free_at_scale() {
        // Construction and relation queries must not allocate O(n).
        let s = Stencil::lap3d7(1 << 10, 1 << 10, 1 << 10); // 2^30 unknowns
        let op = StencilOperator::<f64>::new(s);
        assert_eq!(op.num_diagonals(), 7);
        assert_eq!(op.domain_space().size(), 1 << 30);
        let row = op.row_relation();
        let piece = kdr_index::IntervalSet::from_range(0, 1 << 20);
        let img = row.image(&piece);
        assert!(!img.is_empty());
    }

    #[test]
    fn nnz_formulas_match_materialization() {
        for s in [
            Stencil::lap1d(17),
            Stencil::lap2d(5, 7),
            Stencil::lap3d7(3, 4, 5),
            Stencil::lap3d27(3, 4, 5),
            Stencil::lap1d(1),
            Stencil::lap2d(1, 9),
            Stencil::lap3d27(2, 2, 2),
        ] {
            let t = s.to_triples::<f64>();
            assert_eq!(s.nnz(), t.len() as u64, "kind {:?}", s.kind);
        }
    }

    #[test]
    fn csr_build_matches_triples() {
        let s = Stencil::lap2d(6, 6);
        let direct: Csr<f64, u32> = s.to_csr();
        let via_triples: Csr<f64, u32> = Csr::from_triples(s.to_triples());
        let x: Vec<f64> = (0..36).map(|i| (i as f64).sin()).collect();
        let mut y1 = vec![0.0; 36];
        let mut y2 = vec![0.0; 36];
        direct.spmv(&x, &mut y1);
        via_triples.spmv(&x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn laplacian_is_symmetric() {
        for s in [
            Stencil::lap2d(5, 5),
            Stencil::lap3d7(3, 3, 3),
            Stencil::lap3d27(3, 3, 3),
        ] {
            let c: Csr<f64> = s.to_csr();
            let x = rhs_vector::<f64>(s.unknowns(), 1);
            let y = rhs_vector::<f64>(s.unknowns(), 2);
            let mut ax = vec![0.0; x.len()];
            let mut ay = vec![0.0; y.len()];
            c.spmv(&x, &mut ax);
            c.spmv(&y, &mut ay);
            let yax: f64 = y.iter().zip(&ax).map(|(a, b)| a * b).sum();
            let xay: f64 = x.iter().zip(&ay).map(|(a, b)| a * b).sum();
            assert!((yax - xay).abs() < 1e-9 * yax.abs().max(1.0));
        }
    }

    #[test]
    fn laplacian_row_sums() {
        // With the constant diagonal, boundary rows have positive row
        // sums and interior rows sum to zero.
        let s = Stencil::lap2d(4, 4);
        let c: Csr<f64> = s.to_csr();
        let ones = vec![1.0; 16];
        let mut y = vec![0.0; 16];
        c.spmv(&ones, &mut y);
        // Interior point (x=1..3, y=1..3) with all 4 neighbors: sum 0.
        assert_eq!(y[5], 0.0);
        // Corner: 4 - 2 = 2.
        assert_eq!(y[0], 2.0);
    }

    #[test]
    fn tiles_reassemble_to_whole() {
        let s = Stencil::lap2d(8, 4);
        let n = s.unknowns();
        let whole: Csr<f64> = s.to_csr();
        let x = rhs_vector::<f64>(n, 5);
        let mut expect = vec![0.0; n as usize];
        whole.spmv(&x, &mut expect);
        // Cut into 2x2 tiles of size 16.
        let mut acc = vec![0.0; n as usize];
        for ti in 0..2u64 {
            for tj in 0..2u64 {
                let tile: Csr<f64> = s.tile_csr(ti * 16, (ti + 1) * 16, tj * 16, (tj + 1) * 16);
                let xs = &x[(tj * 16) as usize..((tj + 1) * 16) as usize];
                let mut ys = vec![0.0; 16];
                tile.spmv(xs, &mut ys);
                for (r, v) in ys.into_iter().enumerate() {
                    acc[(ti * 16) as usize + r] += v;
                }
            }
        }
        for i in 0..n as usize {
            assert!((acc[i] - expect[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn slab_nnz_matches_exact() {
        for s in [
            Stencil::lap2d(8, 8),
            Stencil::lap3d7(4, 4, 4),
            Stencil::lap3d27(4, 3, 3),
            Stencil::lap1d(32),
        ] {
            let n = s.unknowns();
            let bounds = [(0, n), (0, n / 2), (n / 4, 3 * n / 4), (n - 1, n), (5, 5)];
            for (lo, hi) in bounds {
                let tile: Csr<f64> = s.tile_csr(lo, hi, 0, n);
                assert_eq!(
                    s.slab_nnz(lo, hi),
                    tile.nnz(),
                    "kind {:?} slab {lo}..{hi}",
                    s.kind
                );
            }
        }
    }

    #[test]
    fn slab_nnz_mid_layer_slab_not_double_counted() {
        // Regression: a slab strictly inside one x-layer that does not
        // start on a layer boundary used to be counted by both the
        // partial-head and partial-tail loops.
        for s in [
            Stencil::lap2d(1, 3),
            Stencil::lap3d7(1, 1, 3),
            Stencil::lap3d27(1, 1, 3),
            Stencil::lap3d7(4, 4, 4),
        ] {
            let n = s.unknowns();
            for lo in 0..n {
                for hi in lo..=n {
                    let tile: Csr<f64> = s.tile_csr(lo, hi, 0, n);
                    assert_eq!(
                        s.slab_nnz(lo, hi),
                        tile.nnz(),
                        "kind {:?} slab {lo}..{hi}",
                        s.kind
                    );
                }
            }
        }
    }

    #[test]
    fn rhs_vector_in_unit_interval() {
        let v = rhs_vector::<f64>(1000, 42);
        assert!(v.iter().all(|&x| (0.0..=1.0).contains(&x)));
        // Deterministic.
        assert_eq!(v, rhs_vector::<f64>(1000, 42));
        // Not constant.
        assert!(v.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn dims_validation() {
        assert_eq!(StencilKind::Lap2D5.dims(), 2);
        assert_eq!(StencilKind::Lap3D27.points(), 27);
    }

    #[test]
    #[should_panic(expected = "needs nz = 1")]
    fn bad_dims_rejected() {
        Stencil::new(StencilKind::Lap2D5, 4, 4, 2);
    }
}
