//! The [`SparseMatrix`] trait: a matrix *is* its K/D/R description
//! plus kernels.
//!
//! This is the library boundary the paper argues for: a format
//! participates in KDRSolvers by exposing its kernel space and its
//! row/column relations — nothing else. Co-partitioning, dependence
//! analysis and solver code never look inside the format; only the
//! computational kernels do.

use kdr_index::{IndexSpace, IntervalSet, Relation};

use crate::scalar::Scalar;

/// A sparse (or dense) matrix described by kernel/domain/range spaces,
/// row and column relations, and matrix-vector kernels.
///
/// Kernels use *add* semantics (`y += A x`) because multi-operator
/// systems accumulate several components into one output vector
/// (paper §4.1); plain `y = A x` is a zero-fill followed by an add.
pub trait SparseMatrix<T: Scalar>: Send + Sync {
    /// The kernel space `K` indexing stored entries.
    fn kernel_space(&self) -> IndexSpace;

    /// The domain space `D` (solution/input vector coordinates).
    fn domain_space(&self) -> IndexSpace;

    /// The range space `R` (right-hand-side/output vector coordinates).
    fn range_space(&self) -> IndexSpace;

    /// The column relation `col ⊆ K × D` (canonical direction
    /// `K -> D`).
    fn col_relation(&self) -> Box<dyn Relation>;

    /// The row relation `row ⊆ K × R` (canonical direction `K -> R`).
    fn row_relation(&self) -> Box<dyn Relation>;

    /// Number of stored entries (size of `K`).
    fn nnz(&self) -> u64 {
        self.kernel_space().size()
    }

    /// Visit every stored entry as `(kernel point, range point,
    /// domain point, value)`. Entries whose implicit relations fall
    /// outside the grid (DIA padding) are skipped.
    fn for_each_entry(&self, f: &mut dyn FnMut(u64, u64, u64, T));

    /// `y += A x` restricted to the kernel points in `piece`.
    ///
    /// `x` spans the full domain space and `y` the full range space;
    /// only entries in `piece` contribute. This is the kernel launched
    /// per color after co-partitioning.
    fn spmv_add_piece(&self, piece: &IntervalSet, x: &[T], y: &mut [T]);

    /// `y += Aᵀ x` restricted to the kernel points in `piece`
    /// (`x` over `R`, `y` over `D`).
    fn spmv_transpose_add_piece(&self, piece: &IntervalSet, x: &[T], y: &mut [T]);

    /// `y += A x` over the whole kernel space.
    fn spmv_add(&self, x: &[T], y: &mut [T]) {
        self.spmv_add_piece(&self.kernel_space().all(), x, y);
    }

    /// `y += Aᵀ x` over the whole kernel space.
    fn spmv_transpose_add(&self, x: &[T], y: &mut [T]) {
        self.spmv_transpose_add_piece(&self.kernel_space().all(), x, y);
    }

    /// `y = A x` (zero-fill then add).
    fn spmv(&self, x: &[T], y: &mut [T]) {
        y.fill(T::ZERO);
        self.spmv_add(x, y);
    }

    /// `y = Aᵀ x` (zero-fill then add).
    fn spmv_transpose(&self, x: &[T], y: &mut [T]) {
        y.fill(T::ZERO);
        self.spmv_transpose_add(x, y);
    }

    /// Extract the diagonal `diag[i] = A[i, i]` (for Jacobi
    /// preconditioning). Sums aliased entries; requires `D = R`.
    fn diagonal(&self) -> Vec<T> {
        assert_eq!(
            self.domain_space().size(),
            self.range_space().size(),
            "diagonal of a non-square operator"
        );
        let mut diag = vec![T::ZERO; self.range_space().size() as usize];
        self.for_each_entry(&mut |_, i, j, v| {
            if i == j {
                diag[i as usize] += v;
            }
        });
        diag
    }

    /// Lower to a coordinate list (the interchange representation for
    /// format conversions).
    fn to_triples(&self) -> crate::triples::Triples<T> {
        let mut t =
            crate::triples::Triples::new(self.range_space().size(), self.domain_space().size());
        self.for_each_entry(&mut |_, i, j, v| t.push(i, j, v));
        t
    }

    /// Fallback entry-wise piece kernel used by formats without a
    /// faster override; provided for implementors.
    fn generic_spmv_add_piece(&self, piece: &IntervalSet, x: &[T], y: &mut [T]) {
        self.for_each_entry(&mut |k, i, j, v| {
            if piece.contains(k) {
                y[i as usize] += v * x[j as usize];
            }
        });
    }
}

/// Estimate of the memory traffic (bytes) of one `y += A x` with a
/// given format, used by the machine cost model. Counts entry loads,
/// index metadata loads, vector reads and output writes.
pub fn spmv_bytes(nnz: u64, rows: u64, cols: u64, entry_bytes: u64, index_bytes: u64) -> u64 {
    // entries + column indices per nonzero, rowptr per row, x read,
    // y read+write.
    nnz * (entry_bytes + index_bytes)
        + rows * index_bytes
        + cols * entry_bytes
        + 2 * rows * entry_bytes
}

/// Flop count of one `y += A x` (one multiply + one add per stored
/// entry).
pub fn spmv_flops(nnz: u64) -> u64 {
    2 * nnz
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_helpers() {
        assert_eq!(spmv_flops(10), 20);
        // 10 nnz, 4 rows, 4 cols, f64 + u32 indices.
        let b = spmv_bytes(10, 4, 4, 8, 4);
        assert_eq!(b, 10 * 12 + 4 * 4 + 4 * 8 + 2 * 4 * 8);
    }
}
