//! Numeric and index type abstractions.
//!
//! LegionSolvers uses C++ templates to stay generic over entry types
//! (`float`, `double`, …) and index types (signed/unsigned, 32/64-bit).
//! These traits play the same role: every format is generic over a
//! [`Scalar`] entry type and an [`IndexInt`] storage index type, so a
//! CSR matrix can store 32-bit column indices while the framework
//! addresses points as `u64`.

use std::fmt::Debug;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A real scalar usable as a matrix/vector entry type.
pub trait Scalar:
    Copy
    + Clone
    + Debug
    + PartialEq
    + PartialOrd
    + Default
    + Send
    + Sync
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + Sum
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;

    /// Lossy conversion from `f64` (used by generators and tolerances).
    fn from_f64(v: f64) -> Self;

    /// Lossy conversion to `f64` (used for reporting and comparisons).
    fn to_f64(self) -> f64;

    /// Absolute value.
    fn abs(self) -> Self;

    /// Square root (needed by GMRES Givens rotations and norms).
    fn sqrt(self) -> Self;

    /// Machine epsilon for this type.
    fn epsilon() -> Self;

    /// Smallest positive normal value; used to guard divisions that
    /// are exactly 0/0 at lucky breakdowns (yielding 0 instead of
    /// NaN) without perturbing any realistic denominator.
    fn tiny() -> Self;

    /// Fused or plain multiply-add `self * a + b`.
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        self * a + b
    }
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    #[inline]
    fn from_f64(v: f64) -> Self {
        v
    }

    #[inline]
    fn to_f64(self) -> f64 {
        self
    }

    #[inline]
    fn abs(self) -> Self {
        f64::abs(self)
    }

    #[inline]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }

    #[inline]
    fn epsilon() -> Self {
        f64::EPSILON
    }

    #[inline]
    fn tiny() -> Self {
        f64::MIN_POSITIVE
    }

    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f64::mul_add(self, a, b)
    }
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    #[inline]
    fn from_f64(v: f64) -> Self {
        v as f32
    }

    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }

    #[inline]
    fn abs(self) -> Self {
        f32::abs(self)
    }

    #[inline]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }

    #[inline]
    fn epsilon() -> Self {
        f32::EPSILON
    }

    #[inline]
    fn tiny() -> Self {
        f32::MIN_POSITIVE
    }

    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f32::mul_add(self, a, b)
    }
}

/// An integer type usable for stored matrix indices.
pub trait IndexInt:
    Copy + Clone + Debug + PartialEq + Eq + PartialOrd + Ord + Send + Sync + 'static
{
    /// Convert from a global `u64` point; panics on overflow.
    fn from_u64(v: u64) -> Self;

    /// Widen to a global `u64` point.
    fn to_u64(self) -> u64;

    /// Convert to a `usize` for slice indexing.
    #[inline]
    fn to_usize(self) -> usize {
        self.to_u64() as usize
    }
}

macro_rules! impl_index_int {
    ($($t:ty),*) => {$(
        impl IndexInt for $t {
            #[inline]
            fn from_u64(v: u64) -> Self {
                <$t>::try_from(v).unwrap_or_else(|_| {
                    panic!("index {v} does not fit in {}", stringify!($t))
                })
            }

            #[inline]
            fn to_u64(self) -> u64 {
                self as u64
            }
        }
    )*};
}

impl_index_int!(u16, u32, u64, usize);

// Signed index types (PETSc-style) are also supported; negative values
// never arise because construction goes through `from_u64`.
macro_rules! impl_index_int_signed {
    ($($t:ty),*) => {$(
        impl IndexInt for $t {
            #[inline]
            fn from_u64(v: u64) -> Self {
                <$t>::try_from(v).unwrap_or_else(|_| {
                    panic!("index {v} does not fit in {}", stringify!($t))
                })
            }

            #[inline]
            fn to_u64(self) -> u64 {
                debug_assert!(self >= 0, "negative stored index");
                self as u64
            }
        }
    )*};
}

impl_index_int_signed!(i32, i64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_f64_basics() {
        assert_eq!(f64::ZERO + f64::ONE, 1.0);
        assert_eq!(Scalar::abs(-2.5f64), 2.5);
        assert_eq!(Scalar::sqrt(9.0f64), 3.0);
        assert_eq!(f64::from_f64(1.5), 1.5);
        assert_eq!(Scalar::mul_add(2.0f64, 3.0, 1.0), 7.0);
    }

    #[test]
    fn scalar_f32_roundtrip() {
        let x = f32::from_f64(0.25);
        assert_eq!(x.to_f64(), 0.25);
        assert!(f32::epsilon() > 0.0);
    }

    #[test]
    fn index_int_roundtrips() {
        assert_eq!(u32::from_u64(7).to_u64(), 7);
        assert_eq!(i32::from_u64(7).to_usize(), 7);
        assert_eq!(u16::from_u64(65535).to_u64(), 65535);
        assert_eq!(usize::from_u64(123).to_usize(), 123);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn index_int_overflow_panics() {
        u16::from_u64(1 << 20);
    }
}
