//! Format conversions.
//!
//! Conversions route through [`Triples`](crate::Triples), the neutral interchange
//! representation: any [`SparseMatrix`] can be lowered with
//! [`SparseMatrix::to_triples`] and rebuilt in another format. Note
//! that padded formats (ELL, DIA, BCSR/BCSC) may introduce explicit
//! structural zeros when converted *from*, which is semantically
//! harmless (and matches what real libraries do).

use crate::formats::bcsr::{Bcsc, Bcsr};
use crate::formats::coo::{Coo, CooAos};
use crate::formats::csc::Csc;
use crate::formats::csr::Csr;
use crate::formats::dense::Dense;
use crate::formats::dia::Dia;
use crate::formats::ell::{Ell, EllT};
use crate::matrix::SparseMatrix;
use crate::scalar::{IndexInt, Scalar};

/// Convert any matrix to CSR.
pub fn to_csr<T: Scalar, I: IndexInt>(m: &dyn SparseMatrix<T>) -> Csr<T, I> {
    Csr::from_triples(m.to_triples())
}

/// Convert any matrix to CSC.
pub fn to_csc<T: Scalar, I: IndexInt>(m: &dyn SparseMatrix<T>) -> Csc<T, I> {
    Csc::from_triples(m.to_triples())
}

/// Convert any matrix to SoA COO.
pub fn to_coo<T: Scalar, I: IndexInt>(m: &dyn SparseMatrix<T>) -> Coo<T, I> {
    Coo::from_triples(m.to_triples())
}

/// Convert any matrix to AoS COO.
pub fn to_coo_aos<T: Scalar, I: IndexInt>(m: &dyn SparseMatrix<T>) -> CooAos<T, I> {
    CooAos::from_triples(m.to_triples())
}

/// Convert any matrix to ELL.
pub fn to_ell<T: Scalar, I: IndexInt>(m: &dyn SparseMatrix<T>) -> Ell<T, I> {
    Ell::from_triples(m.to_triples())
}

/// Convert any matrix to ELL'.
pub fn to_ellt<T: Scalar, I: IndexInt>(m: &dyn SparseMatrix<T>) -> EllT<T, I> {
    EllT::from_triples(m.to_triples())
}

/// Convert any matrix to HYB (ELL body + COO overflow).
pub fn to_hyb<T: Scalar, I: IndexInt>(m: &dyn SparseMatrix<T>) -> crate::formats::hyb::Hyb<T, I> {
    crate::formats::hyb::Hyb::from_triples(m.to_triples())
}

/// Convert any matrix to DIA.
pub fn to_dia<T: Scalar>(m: &dyn SparseMatrix<T>) -> Dia<T> {
    Dia::from_triples(m.to_triples())
}

/// Convert any matrix to dense.
pub fn to_dense<T: Scalar>(m: &dyn SparseMatrix<T>) -> Dense<T> {
    Dense::from_triples(m.to_triples())
}

/// Convert any matrix to BCSR with the given block shape.
pub fn to_bcsr<T: Scalar, I: IndexInt>(m: &dyn SparseMatrix<T>, br: u64, bd: u64) -> Bcsr<T, I> {
    Bcsr::from_triples(m.to_triples(), br, bd)
}

/// Convert any matrix to BCSC with the given block shape.
pub fn to_bcsc<T: Scalar, I: IndexInt>(m: &dyn SparseMatrix<T>, br: u64, bd: u64) -> Bcsc<T, I> {
    Bcsc::from_triples(m.to_triples(), br, bd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stencil::{rhs_vector, Stencil};

    fn apply<T: Scalar>(m: &dyn SparseMatrix<T>, x: &[T]) -> Vec<T> {
        let mut y = vec![T::ZERO; m.range_space().size() as usize];
        m.spmv(x, &mut y);
        y
    }

    #[test]
    fn all_formats_define_the_same_operator() {
        let s = Stencil::lap2d(6, 4);
        let base: Csr<f64, u32> = s.to_csr();
        let x = rhs_vector::<f64>(24, 3);
        let expect = apply(&base, &x);

        let formats: Vec<Box<dyn SparseMatrix<f64>>> = vec![
            Box::new(to_csc::<f64, u32>(&base)),
            Box::new(to_coo::<f64, u64>(&base)),
            Box::new(to_coo_aos::<f64, u32>(&base)),
            Box::new(to_ell::<f64, u32>(&base)),
            Box::new(to_ellt::<f64, u32>(&base)),
            Box::new(to_dia::<f64>(&base)),
            Box::new(to_hyb::<f64, u32>(&base)),
            Box::new(to_dense::<f64>(&base)),
            Box::new(to_bcsr::<f64, u32>(&base, 2, 2)),
            Box::new(to_bcsc::<f64, u32>(&base, 4, 3)),
        ];
        for (idx, m) in formats.iter().enumerate() {
            let y = apply(m.as_ref(), &x);
            for i in 0..y.len() {
                assert!(
                    (y[i] - expect[i]).abs() < 1e-12,
                    "format #{idx} row {i}: {} vs {}",
                    y[i],
                    expect[i]
                );
            }
        }
    }

    #[test]
    fn adjoints_agree_across_formats() {
        let s = Stencil::lap2d(4, 5);
        let base: Csr<f64, u32> = s.to_csr();
        let x = rhs_vector::<f64>(20, 9);
        let mut expect = vec![0.0; 20];
        base.spmv_transpose(&x, &mut expect);

        let csc = to_csc::<f64, u32>(&base);
        let ell = to_ell::<f64, u32>(&base);
        let dia = to_dia::<f64>(&base);
        for m in [&csc as &dyn SparseMatrix<f64>, &ell, &dia] {
            let mut y = vec![0.0; 20];
            m.spmv_transpose(&x, &mut y);
            for i in 0..20 {
                assert!((y[i] - expect[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn roundtrip_csr_csc_csr_is_identity() {
        let s = Stencil::lap3d7(3, 3, 3);
        let a: Csr<f64> = s.to_csr();
        let b: Csr<f64> = to_csr(&to_csc::<f64, u64>(&a));
        assert_eq!(a.rowptr(), b.rowptr());
        assert_eq!(a.colidx(), b.colidx());
        assert_eq!(a.values(), b.values());
    }
}
