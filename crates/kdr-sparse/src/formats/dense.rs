//! Dense matrices as a degenerate "sparse" format.
//!
//! Structural assumption: `K = R × D` (row-major). Both relations are
//! the implicit projections `π1`/`π2`, so — as the paper puts it — a
//! dense matrix is "a structural assumption paired with an empty data
//! structure": no metadata is stored at all.

#[cfg(test)]
use kdr_index::Shape;
use kdr_index::{IndexSpace, IntervalSet, ProjectionAxis, ProjectionRelation, Relation};

use crate::matrix::SparseMatrix;
use crate::scalar::Scalar;
use crate::triples::Triples;

/// A dense row-major matrix.
#[derive(Clone, Debug)]
pub struct Dense<T> {
    data: Vec<T>,
    rows: u64,
    cols: u64,
}

impl<T: Scalar> Dense<T> {
    /// A zero matrix.
    pub fn zeros(rows: u64, cols: u64) -> Self {
        Dense {
            data: vec![T::ZERO; (rows * cols) as usize],
            rows,
            cols,
        }
    }

    /// Build from a coordinate list (missing coordinates are zero,
    /// duplicates sum).
    pub fn from_triples(t: Triples<T>) -> Self {
        let mut m = Dense::zeros(t.rows(), t.cols());
        for &(i, j, v) in t.entries() {
            *m.at_mut(i, j) += v;
        }
        m
    }

    /// Build from a row-major data vector.
    pub fn from_row_major(rows: u64, cols: u64, data: Vec<T>) -> Self {
        assert_eq!(data.len() as u64, rows * cols);
        Dense { data, rows, cols }
    }

    /// Row count.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> u64 {
        self.cols
    }

    /// Entry accessor.
    pub fn at(&self, i: u64, j: u64) -> T {
        self.data[(i * self.cols + j) as usize]
    }

    /// Mutable entry accessor.
    pub fn at_mut(&mut self, i: u64, j: u64) -> &mut T {
        &mut self.data[(i * self.cols + j) as usize]
    }
}

impl<T: Scalar> SparseMatrix<T> for Dense<T> {
    fn kernel_space(&self) -> IndexSpace {
        // The structural assumption K = R × D, exposed as a 2-D grid.
        IndexSpace::grid2(self.rows, self.cols)
    }

    fn domain_space(&self) -> IndexSpace {
        IndexSpace::flat(self.cols)
    }

    fn range_space(&self) -> IndexSpace {
        IndexSpace::flat(self.rows)
    }

    fn col_relation(&self) -> Box<dyn Relation> {
        Box::new(ProjectionRelation::new(
            self.rows,
            self.cols,
            ProjectionAxis::Inner,
        ))
    }

    fn row_relation(&self) -> Box<dyn Relation> {
        Box::new(ProjectionRelation::new(
            self.rows,
            self.cols,
            ProjectionAxis::Outer,
        ))
    }

    fn for_each_entry(&self, f: &mut dyn FnMut(u64, u64, u64, T)) {
        for i in 0..self.rows {
            for j in 0..self.cols {
                let k = i * self.cols + j;
                f(k, i, j, self.data[k as usize]);
            }
        }
    }

    fn spmv_add_piece(&self, piece: &IntervalSet, x: &[T], y: &mut [T]) {
        debug_assert_eq!(x.len() as u64, self.cols);
        debug_assert_eq!(y.len() as u64, self.rows);
        let cols = self.cols as usize;
        for run in piece.runs() {
            let mut k = run.lo;
            while k < run.hi {
                let i = (k / self.cols) as usize;
                let j0 = (k % self.cols) as usize;
                // Process the remainder of this row within the run.
                let row_end = ((i as u64 + 1) * self.cols).min(run.hi);
                let j1 = j0 + (row_end - k) as usize;
                let base = i * cols;
                let mut acc = T::ZERO;
                for (j, &xj) in x.iter().enumerate().take(j1).skip(j0) {
                    acc = self.data[base + j].mul_add(xj, acc);
                }
                y[i] += acc;
                k = row_end;
            }
        }
    }

    fn spmv_transpose_add_piece(&self, piece: &IntervalSet, x: &[T], y: &mut [T]) {
        debug_assert_eq!(x.len() as u64, self.rows);
        debug_assert_eq!(y.len() as u64, self.cols);
        let cols = self.cols as usize;
        for run in piece.runs() {
            let mut k = run.lo;
            while k < run.hi {
                let i = (k / self.cols) as usize;
                let j0 = (k % self.cols) as usize;
                let row_end = ((i as u64 + 1) * self.cols).min(run.hi);
                let j1 = j0 + (row_end - k) as usize;
                let base = i * cols;
                let xi = x[i];
                for (j, yj) in y.iter_mut().enumerate().take(j1).skip(j0) {
                    *yj += self.data[base + j] * xi;
                }
                k = row_end;
            }
        }
    }

    fn nnz(&self) -> u64 {
        self.rows * self.cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dense<f64> {
        Dense::from_row_major(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    }

    #[test]
    fn kernel_space_is_product() {
        let m = sample();
        assert_eq!(m.kernel_space().shape(), Shape::Grid2 { nx: 2, ny: 3 });
        assert_eq!(m.nnz(), 6);
    }

    #[test]
    fn spmv() {
        let m = sample();
        let mut y = vec![0.0; 2];
        m.spmv(&[1.0, 1.0, 1.0], &mut y);
        assert_eq!(y, vec![6.0, 15.0]);
    }

    #[test]
    fn spmv_transpose() {
        let m = sample();
        let mut y = vec![0.0; 3];
        m.spmv_transpose(&[1.0, 1.0], &mut y);
        assert_eq!(y, vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn piece_restricted_spmv() {
        let m = sample();
        // Kernel points 1..5 cover row 0 cols 1,2 and row 1 cols 0,1.
        let piece = IntervalSet::from_range(1, 5);
        let mut y = vec![0.0; 2];
        m.spmv_add_piece(&piece, &[1.0, 1.0, 1.0], &mut y);
        assert_eq!(y, vec![5.0, 9.0]);
        let mut z = vec![0.0; 3];
        m.spmv_transpose_add_piece(&piece, &[1.0, 1.0], &mut z);
        assert_eq!(z, vec![4.0, 7.0, 3.0]);
    }

    #[test]
    fn implicit_relations() {
        let m = sample();
        let row = m.row_relation();
        let col = m.col_relation();
        // Row 1 owns kernel points 3..6.
        assert_eq!(
            row.preimage(&IntervalSet::from_points([1])),
            IntervalSet::from_range(3, 6)
        );
        // Column 2 appears at kernel points 2 and 5.
        assert_eq!(
            col.preimage(&IntervalSet::from_points([2])),
            IntervalSet::from_points([2, 5])
        );
    }

    #[test]
    fn from_triples_fills_and_sums() {
        let m = Dense::from_triples(Triples::from_entries(
            2,
            2,
            vec![(0, 0, 1.0), (0, 0, 2.0), (1, 1, 5.0)],
        ));
        assert_eq!(m.at(0, 0), 3.0);
        assert_eq!(m.at(0, 1), 0.0);
        assert_eq!(m.at(1, 1), 5.0);
    }
}
