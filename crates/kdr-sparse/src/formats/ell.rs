//! ELLPACK formats.
//!
//! ELL imposes the structural assumption `K = R × K0`: every row
//! stores exactly `K0` slots (padded with explicit zeros), so the row
//! relation is the implicit projection `π1` and only the column
//! indices are stored metadata. ELL' (here [`EllT`]) is the mirrored
//! layout `K = D × K0` with the *column* relation implicit.
//!
//! Padding slots hold value zero and duplicate the row's last real
//! coordinate (or 0 for empty rows), so the stored relations stay
//! total without introducing artificial dependencies on column 0.

use kdr_index::{
    FnRelation, IndexSpace, IntervalSet, ProjectionAxis, ProjectionRelation, Relation,
};

use crate::matrix::SparseMatrix;
use crate::scalar::{IndexInt, Scalar};
use crate::triples::Triples;

/// Row-major ELLPACK: kernel point `k = i * width + s` is slot `s` of
/// row `i`.
#[derive(Clone, Debug)]
pub struct Ell<T, I = u64> {
    colidx: Vec<I>,
    values: Vec<T>,
    rows: u64,
    cols: u64,
    width: u64,
}

impl<T: Scalar, I: IndexInt> Ell<T, I> {
    /// Build from a coordinate list; the slot width is the maximum row
    /// population (duplicates summed first).
    pub fn from_triples(t: Triples<T>) -> Self {
        let rows = t.rows();
        let cols = t.cols();
        let t = t.canonicalize();
        let width = t.max_row_nnz().max(1);
        let mut colidx = vec![I::from_u64(0); (rows * width) as usize];
        let mut values = vec![T::ZERO; (rows * width) as usize];
        let mut fill = vec![0u64; rows as usize];
        for &(i, j, v) in t.entries() {
            let s = fill[i as usize];
            debug_assert!(s < width);
            let k = (i * width + s) as usize;
            colidx[k] = I::from_u64(j);
            values[k] = v;
            fill[i as usize] = s + 1;
        }
        // Point padding slots at the row's last real column.
        for i in 0..rows as usize {
            let f = fill[i];
            if f == 0 {
                continue;
            }
            let last = colidx[(i as u64 * width + f - 1) as usize];
            for s in f..width {
                colidx[(i as u64 * width + s) as usize] = last;
            }
        }
        Ell {
            colidx,
            values,
            rows,
            cols,
            width,
        }
    }

    /// Row count.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> u64 {
        self.cols
    }

    /// Slots per row (`K0`).
    pub fn width(&self) -> u64 {
        self.width
    }
}

impl<T: Scalar, I: IndexInt> SparseMatrix<T> for Ell<T, I> {
    fn kernel_space(&self) -> IndexSpace {
        // Structural assumption K = R × K0.
        IndexSpace::grid2(self.rows, self.width)
    }

    fn domain_space(&self) -> IndexSpace {
        IndexSpace::flat(self.cols)
    }

    fn range_space(&self) -> IndexSpace {
        IndexSpace::flat(self.rows)
    }

    fn col_relation(&self) -> Box<dyn Relation> {
        Box::new(FnRelation::new(
            self.colidx.iter().map(|&j| j.to_u64()).collect(),
            self.cols,
        ))
    }

    fn row_relation(&self) -> Box<dyn Relation> {
        // Implicit π1 : R × K0 -> R.
        Box::new(ProjectionRelation::new(
            self.rows,
            self.width,
            ProjectionAxis::Outer,
        ))
    }

    fn for_each_entry(&self, f: &mut dyn FnMut(u64, u64, u64, T)) {
        for k in 0..self.values.len() as u64 {
            f(
                k,
                k / self.width,
                self.colidx[k as usize].to_u64(),
                self.values[k as usize],
            );
        }
    }

    fn spmv_add_piece(&self, piece: &IntervalSet, x: &[T], y: &mut [T]) {
        for run in piece.runs() {
            for k in run.lo..run.hi {
                let i = (k / self.width) as usize;
                y[i] += self.values[k as usize] * x[self.colidx[k as usize].to_usize()];
            }
        }
    }

    fn spmv_transpose_add_piece(&self, piece: &IntervalSet, x: &[T], y: &mut [T]) {
        for run in piece.runs() {
            for k in run.lo..run.hi {
                let i = (k / self.width) as usize;
                y[self.colidx[k as usize].to_usize()] += self.values[k as usize] * x[i];
            }
        }
    }
}

/// Column-major ELLPACK (the paper's ELL'): kernel point
/// `k = j * width + s` is slot `s` of *column* `j`; the column
/// relation is implicit and row indices are stored.
#[derive(Clone, Debug)]
pub struct EllT<T, I = u64> {
    rowidx: Vec<I>,
    values: Vec<T>,
    rows: u64,
    cols: u64,
    width: u64,
}

impl<T: Scalar, I: IndexInt> EllT<T, I> {
    /// Build from a coordinate list; the slot width is the maximum
    /// *column* population.
    pub fn from_triples(t: Triples<T>) -> Self {
        let rows = t.rows();
        let cols = t.cols();
        let tt = t.transposed().canonicalize();
        let width = tt.max_row_nnz().max(1);
        let mut rowidx = vec![I::from_u64(0); (cols * width) as usize];
        let mut values = vec![T::ZERO; (cols * width) as usize];
        let mut fill = vec![0u64; cols as usize];
        for &(j, i, v) in tt.entries() {
            let s = fill[j as usize];
            let k = (j * width + s) as usize;
            rowidx[k] = I::from_u64(i);
            values[k] = v;
            fill[j as usize] = s + 1;
        }
        for j in 0..cols as usize {
            let f = fill[j];
            if f == 0 {
                continue;
            }
            let last = rowidx[(j as u64 * width + f - 1) as usize];
            for s in f..width {
                rowidx[(j as u64 * width + s) as usize] = last;
            }
        }
        EllT {
            rowidx,
            values,
            rows,
            cols,
            width,
        }
    }

    /// Slots per column (`K0`).
    pub fn width(&self) -> u64 {
        self.width
    }
}

impl<T: Scalar, I: IndexInt> SparseMatrix<T> for EllT<T, I> {
    fn kernel_space(&self) -> IndexSpace {
        // Structural assumption K = D × K0.
        IndexSpace::grid2(self.cols, self.width)
    }

    fn domain_space(&self) -> IndexSpace {
        IndexSpace::flat(self.cols)
    }

    fn range_space(&self) -> IndexSpace {
        IndexSpace::flat(self.rows)
    }

    fn col_relation(&self) -> Box<dyn Relation> {
        // Implicit π1 : D × K0 -> D.
        Box::new(ProjectionRelation::new(
            self.cols,
            self.width,
            ProjectionAxis::Outer,
        ))
    }

    fn row_relation(&self) -> Box<dyn Relation> {
        Box::new(FnRelation::new(
            self.rowidx.iter().map(|&i| i.to_u64()).collect(),
            self.rows,
        ))
    }

    fn for_each_entry(&self, f: &mut dyn FnMut(u64, u64, u64, T)) {
        for k in 0..self.values.len() as u64 {
            f(
                k,
                self.rowidx[k as usize].to_u64(),
                k / self.width,
                self.values[k as usize],
            );
        }
    }

    fn spmv_add_piece(&self, piece: &IntervalSet, x: &[T], y: &mut [T]) {
        for run in piece.runs() {
            for k in run.lo..run.hi {
                let j = (k / self.width) as usize;
                y[self.rowidx[k as usize].to_usize()] += self.values[k as usize] * x[j];
            }
        }
    }

    fn spmv_transpose_add_piece(&self, piece: &IntervalSet, x: &[T], y: &mut [T]) {
        for run in piece.runs() {
            for k in run.lo..run.hi {
                let j = (k / self.width) as usize;
                y[j] += self.values[k as usize] * x[self.rowidx[k as usize].to_usize()];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formats::csr::Csr;

    fn t() -> Triples<f64> {
        Triples::from_entries(
            4,
            4,
            vec![
                (0, 0, 2.0),
                (0, 1, -1.0),
                (1, 0, -1.0),
                (1, 1, 2.0),
                (1, 2, -1.0),
                (3, 3, 2.0),
            ],
        )
    }

    #[test]
    fn ell_width_and_padding() {
        let m: Ell<f64, u32> = Ell::from_triples(t());
        assert_eq!(m.width(), 3); // row 1 has three entries
        assert_eq!(m.nnz(), 12); // padded kernel space
        let x = [1.0, 2.0, 3.0, 4.0];
        let mut y = vec![0.0; 4];
        m.spmv(&x, &mut y);
        let reference = t().dense_apply(&x);
        assert_eq!(y, reference);
    }

    #[test]
    fn ell_matches_csr_on_transpose() {
        let m: Ell<f64> = Ell::from_triples(t());
        let c: Csr<f64> = Csr::from_triples(t());
        let x = [1.0, -1.0, 2.0, 0.5];
        let mut y1 = vec![0.0; 4];
        let mut y2 = vec![0.0; 4];
        m.spmv_transpose(&x, &mut y1);
        c.spmv_transpose(&x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn ellt_matches_reference() {
        let m: EllT<f64, u32> = EllT::from_triples(t());
        assert_eq!(m.width(), 2); // columns 0 and 1 have two entries
        let x = [1.0, 2.0, 3.0, 4.0];
        let mut y = vec![0.0; 4];
        m.spmv(&x, &mut y);
        assert_eq!(y, t().dense_apply(&x));
        let xr = [1.0, 1.0, 1.0, 1.0];
        let mut z = vec![0.0; 4];
        m.spmv_transpose(&xr, &mut z);
        assert_eq!(z, t().dense_apply_transpose(&xr));
    }

    #[test]
    fn implicit_relations_have_product_structure() {
        let m: Ell<f64> = Ell::from_triples(t());
        let row = m.row_relation();
        // Row 2 (empty in the matrix) still owns its padded slots.
        assert_eq!(
            row.preimage(&IntervalSet::from_points([2])),
            IntervalSet::from_range(6, 9)
        );
        let mt: EllT<f64> = EllT::from_triples(t());
        let col = mt.col_relation();
        assert_eq!(
            col.preimage(&IntervalSet::from_points([0])),
            IntervalSet::from_range(0, 2)
        );
    }

    #[test]
    fn piece_kernels_sum_to_whole() {
        let m: Ell<f64> = Ell::from_triples(t());
        let x = [1.0, 2.0, 3.0, 4.0];
        let mut whole = vec![0.0; 4];
        m.spmv(&x, &mut whole);
        let mut acc = vec![0.0; 4];
        for p in m.kernel_space().all().split_equal(5) {
            m.spmv_add_piece(&p, &x, &mut acc);
        }
        assert_eq!(acc, whole);
    }

    #[test]
    fn padding_points_at_last_real_column() {
        let m: Ell<f64> = Ell::from_triples(t());
        let col = m.col_relation();
        // Row 0 has entries at columns 0, 1 and one padding slot that
        // must duplicate column 1 rather than defaulting to column 0.
        assert_eq!(
            col.image(&IntervalSet::from_points([2])),
            IntervalSet::from_points([1])
        );
    }
}
