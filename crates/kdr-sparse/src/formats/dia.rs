//! Diagonal format.
//!
//! Structural assumptions (paper Figure 3): `D = {0..d}`, `R = {0..r}`,
//! `K = K0 × D` where `K0` indexes the stored diagonals with an
//! `offset : K0 -> Z` table. Both relations are implicit:
//! `col : (k0, i) ↦ i` and `row : (k0, i) ↦ i − offset(k0)`, the
//! latter *partial* — kernel points whose row falls off the grid are
//! padding. DIA stores no per-entry metadata at all, only the offset
//! table, making it the most compact format for banded stencil
//! matrices.

use kdr_index::{
    DiagonalRelation, IndexSpace, IntervalSet, ProjectionAxis, ProjectionRelation, Relation,
};

use crate::matrix::SparseMatrix;
use crate::scalar::Scalar;
use crate::triples::Triples;

/// A diagonal-format matrix: `data[k0 * d + i]` holds the entry at
/// column `i`, row `i − offsets[k0]`.
#[derive(Clone, Debug)]
pub struct Dia<T> {
    offsets: Vec<i64>,
    data: Vec<T>,
    rows: u64,
    cols: u64,
}

impl<T: Scalar> Dia<T> {
    /// Build from a coordinate list: stores one diagonal per distinct
    /// `col − row` offset present (duplicates summed).
    pub fn from_triples(t: Triples<T>) -> Self {
        let rows = t.rows();
        let cols = t.cols();
        let t = t.canonicalize();
        let offsets = t.diagonal_offsets();
        let offsets = if offsets.is_empty() { vec![0] } else { offsets };
        let mut data = vec![T::ZERO; offsets.len() * cols as usize];
        for &(i, j, v) in t.entries() {
            let off = j as i64 - i as i64;
            let k0 = offsets.binary_search(&off).expect("offset must be present");
            data[k0 * cols as usize + j as usize] += v;
        }
        Dia {
            offsets,
            data,
            rows,
            cols,
        }
    }

    /// Build from an explicit offset table and diagonal data
    /// (`data.len() == offsets.len() * cols`).
    pub fn from_raw(offsets: Vec<i64>, data: Vec<T>, rows: u64, cols: u64) -> Self {
        assert!(!offsets.is_empty());
        assert_eq!(data.len() as u64, offsets.len() as u64 * cols);
        Dia {
            offsets,
            data,
            rows,
            cols,
        }
    }

    /// Stored diagonal offsets.
    pub fn offsets(&self) -> &[i64] {
        &self.offsets
    }

    /// Row count.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> u64 {
        self.cols
    }

    /// Valid column range `[lo, hi)` of diagonal `k0` (columns whose
    /// row lands inside the grid).
    fn valid_cols(&self, k0: usize) -> (u64, u64) {
        let off = self.offsets[k0];
        // row = i - off must lie in [0, rows): i in [off, rows + off).
        let lo = off.max(0) as u64;
        let hi = (self.rows as i64 + off).clamp(0, self.cols as i64) as u64;
        (lo.min(self.cols), hi.max(lo).min(self.cols))
    }
}

impl<T: Scalar> SparseMatrix<T> for Dia<T> {
    fn kernel_space(&self) -> IndexSpace {
        // Structural assumption K = K0 × D.
        IndexSpace::grid2(self.offsets.len() as u64, self.cols)
    }

    fn domain_space(&self) -> IndexSpace {
        IndexSpace::flat(self.cols)
    }

    fn range_space(&self) -> IndexSpace {
        IndexSpace::flat(self.rows)
    }

    fn col_relation(&self) -> Box<dyn Relation> {
        // Implicit (k0, i) ↦ i.
        Box::new(ProjectionRelation::new(
            self.offsets.len() as u64,
            self.cols,
            ProjectionAxis::Inner,
        ))
    }

    fn row_relation(&self) -> Box<dyn Relation> {
        // Implicit partial (k0, i) ↦ i − offset(k0).
        Box::new(DiagonalRelation::new(
            self.offsets.clone(),
            self.cols,
            self.rows,
        ))
    }

    fn for_each_entry(&self, f: &mut dyn FnMut(u64, u64, u64, T)) {
        for k0 in 0..self.offsets.len() {
            let off = self.offsets[k0];
            let (lo, hi) = self.valid_cols(k0);
            for i in lo..hi {
                let k = k0 as u64 * self.cols + i;
                f(k, (i as i64 - off) as u64, i, self.data[k as usize]);
            }
        }
    }

    fn spmv_add_piece(&self, piece: &IntervalSet, x: &[T], y: &mut [T]) {
        debug_assert_eq!(x.len() as u64, self.cols);
        debug_assert_eq!(y.len() as u64, self.rows);
        for k0 in 0..self.offsets.len() {
            let off = self.offsets[k0];
            let base = k0 as u64 * self.cols;
            let (lo, hi) = self.valid_cols(k0);
            let slab = piece.intersect(&IntervalSet::from_range(base + lo, base + hi));
            for run in slab.runs() {
                for k in run.lo..run.hi {
                    let i = k - base;
                    let row = (i as i64 - off) as usize;
                    y[row] += self.data[k as usize] * x[i as usize];
                }
            }
        }
    }

    fn spmv_transpose_add_piece(&self, piece: &IntervalSet, x: &[T], y: &mut [T]) {
        debug_assert_eq!(x.len() as u64, self.rows);
        debug_assert_eq!(y.len() as u64, self.cols);
        for k0 in 0..self.offsets.len() {
            let off = self.offsets[k0];
            let base = k0 as u64 * self.cols;
            let (lo, hi) = self.valid_cols(k0);
            let slab = piece.intersect(&IntervalSet::from_range(base + lo, base + hi));
            for run in slab.runs() {
                for k in run.lo..run.hi {
                    let i = k - base;
                    let row = (i as i64 - off) as usize;
                    y[i as usize] += self.data[k as usize] * x[row];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formats::csr::Csr;

    /// 4x4 1-D Laplacian (tridiagonal).
    fn lap() -> Triples<f64> {
        let mut t = Triples::new(4, 4);
        for i in 0..4u64 {
            t.push(i, i, 2.0);
            if i > 0 {
                t.push(i, i - 1, -1.0);
            }
            if i < 3 {
                t.push(i, i + 1, -1.0);
            }
        }
        t
    }

    #[test]
    fn offsets_inferred() {
        let m = Dia::from_triples(lap());
        assert_eq!(m.offsets(), &[-1, 0, 1]);
        // Kernel space is K0 × D = 3 × 4.
        assert_eq!(m.nnz(), 12);
    }

    #[test]
    fn spmv_matches_csr() {
        let m = Dia::from_triples(lap());
        let c: Csr<f64> = Csr::from_triples(lap());
        let x = [1.0, 2.0, 3.0, 4.0];
        let mut y1 = vec![0.0; 4];
        let mut y2 = vec![0.0; 4];
        m.spmv(&x, &mut y1);
        c.spmv(&x, &mut y2);
        assert_eq!(y1, y2);
        let mut z1 = vec![0.0; 4];
        let mut z2 = vec![0.0; 4];
        m.spmv_transpose(&x, &mut z1);
        c.spmv_transpose(&x, &mut z2);
        assert_eq!(z1, z2);
    }

    #[test]
    fn rectangular_dia() {
        // 2x4 matrix with entries on offsets 0 and 2.
        let t = Triples::from_entries(
            2,
            4,
            vec![(0, 0, 1.0), (1, 1, 2.0), (0, 2, 3.0), (1, 3, 4.0)],
        );
        let m = Dia::from_triples(t.clone());
        assert_eq!(m.offsets(), &[0, 2]);
        let x = [1.0, 1.0, 1.0, 1.0];
        let mut y = vec![0.0; 2];
        m.spmv(&x, &mut y);
        assert_eq!(y, t.dense_apply(&x));
    }

    #[test]
    fn padding_excluded_from_entries() {
        let m = Dia::from_triples(lap());
        let mut count = 0;
        m.for_each_entry(&mut |_, i, j, _| {
            assert!(i < 4 && j < 4);
            count += 1;
        });
        // 10 real entries out of 12 kernel points (2 padding).
        assert_eq!(count, 10);
    }

    #[test]
    fn piece_kernels_sum_to_whole() {
        let m = Dia::from_triples(lap());
        let x = [1.0, -2.0, 3.0, -4.0];
        let mut whole = vec![0.0; 4];
        m.spmv(&x, &mut whole);
        let mut acc = vec![0.0; 4];
        for p in m.kernel_space().all().split_equal(5) {
            m.spmv_add_piece(&p, &x, &mut acc);
        }
        assert_eq!(acc, whole);
    }

    #[test]
    fn relations_match_entries() {
        let m = Dia::from_triples(lap());
        let row = m.row_relation();
        let col = m.col_relation();
        m.for_each_entry(&mut |k, i, j, _| {
            let mut r = Vec::new();
            row.targets_of(k, &mut r);
            assert_eq!(r, vec![i], "row relation at k={k}");
            let mut c = Vec::new();
            col.targets_of(k, &mut c);
            assert_eq!(c, vec![j], "col relation at k={k}");
        });
        // Padding points relate to no row.
        let mut padding = 0;
        for k in 0..m.nnz() {
            let mut r = Vec::new();
            row.targets_of(k, &mut r);
            if r.is_empty() {
                padding += 1;
            }
        }
        assert_eq!(padding, 2);
    }
}
