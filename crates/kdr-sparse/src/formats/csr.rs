//! Compressed Sparse Row.
//!
//! Structural assumption: `K` is totally ordered so that each row's
//! entries form a contiguous interval. Metadata: `col : K -> D`
//! (stored column indices) and `rowptr : R -> [K, K]` (stored
//! offsets). This is the format used by all of the paper's
//! performance experiments, because it is the only GPU-accelerated
//! format PETSc supports.

use kdr_index::{
    FnRelation, IndexSpace, IntervalMapRelation, IntervalSet, Relation, TransposedRelation,
};

use crate::matrix::SparseMatrix;
use crate::scalar::{IndexInt, Scalar};
use crate::triples::Triples;

/// A CSR matrix generic over entry type `T` and stored index type `I`.
#[derive(Clone, Debug)]
pub struct Csr<T, I = u64> {
    rowptr: Vec<u64>,
    colidx: Vec<I>,
    values: Vec<T>,
    cols: u64,
}

impl<T: Scalar, I: IndexInt> Csr<T, I> {
    /// Build from a coordinate list (duplicates are summed).
    pub fn from_triples(t: Triples<T>) -> Self {
        let rows = t.rows();
        let cols = t.cols();
        let t = t.canonicalize();
        let mut rowptr = vec![0u64; rows as usize + 1];
        for &(i, _, _) in t.entries() {
            rowptr[i as usize + 1] += 1;
        }
        for r in 1..rowptr.len() {
            rowptr[r] += rowptr[r - 1];
        }
        let mut colidx = Vec::with_capacity(t.len());
        let mut values = Vec::with_capacity(t.len());
        for &(_, j, v) in t.entries() {
            colidx.push(I::from_u64(j));
            values.push(v);
        }
        Csr {
            rowptr,
            colidx,
            values,
            cols,
        }
    }

    /// Build from raw CSR arrays. Panics on malformed inputs.
    pub fn from_raw(rowptr: Vec<u64>, colidx: Vec<I>, values: Vec<T>, cols: u64) -> Self {
        assert!(!rowptr.is_empty(), "rowptr must have at least one entry");
        assert!(
            rowptr.windows(2).all(|w| w[0] <= w[1]),
            "rowptr not monotone"
        );
        assert_eq!(colidx.len(), values.len());
        assert_eq!(*rowptr.last().unwrap() as usize, values.len());
        assert!(
            colidx.iter().all(|&j| j.to_u64() < cols),
            "column index out of bounds"
        );
        Csr {
            rowptr,
            colidx,
            values,
            cols,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> u64 {
        self.rowptr.len() as u64 - 1
    }

    /// Number of columns.
    pub fn cols(&self) -> u64 {
        self.cols
    }

    /// The rowptr offsets array (length `rows + 1`).
    pub fn rowptr(&self) -> &[u64] {
        &self.rowptr
    }

    /// Stored column indices, kernel-ordered.
    pub fn colidx(&self) -> &[I] {
        &self.colidx
    }

    /// Stored entry values, kernel-ordered.
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Row owning kernel point `k`.
    #[inline]
    fn row_of(&self, k: u64) -> u64 {
        (self.rowptr.partition_point(|&p| p <= k) - 1) as u64
    }
}

impl<T: Scalar, I: IndexInt> SparseMatrix<T> for Csr<T, I> {
    fn kernel_space(&self) -> IndexSpace {
        IndexSpace::flat(self.values.len() as u64)
    }

    fn domain_space(&self) -> IndexSpace {
        IndexSpace::flat(self.cols)
    }

    fn range_space(&self) -> IndexSpace {
        IndexSpace::flat(self.rows())
    }

    fn col_relation(&self) -> Box<dyn Relation> {
        Box::new(FnRelation::new(
            self.colidx.iter().map(|&j| j.to_u64()).collect(),
            self.cols,
        ))
    }

    fn row_relation(&self) -> Box<dyn Relation> {
        Box::new(TransposedRelation::new(Box::new(
            IntervalMapRelation::from_offsets(&self.rowptr, self.values.len() as u64),
        )))
    }

    fn for_each_entry(&self, f: &mut dyn FnMut(u64, u64, u64, T)) {
        for i in 0..self.rows() {
            let (lo, hi) = (self.rowptr[i as usize], self.rowptr[i as usize + 1]);
            for k in lo..hi {
                f(
                    k,
                    i,
                    self.colidx[k as usize].to_u64(),
                    self.values[k as usize],
                );
            }
        }
    }

    fn spmv_add_piece(&self, piece: &IntervalSet, x: &[T], y: &mut [T]) {
        debug_assert_eq!(x.len() as u64, self.cols);
        debug_assert_eq!(y.len() as u64, self.rows());
        for run in piece.runs() {
            let mut row = self.row_of(run.lo);
            let mut row_end = self.rowptr[row as usize + 1];
            let mut acc = T::ZERO;
            for k in run.lo..run.hi {
                while k >= row_end {
                    y[row as usize] += acc;
                    acc = T::ZERO;
                    row += 1;
                    row_end = self.rowptr[row as usize + 1];
                }
                acc = self.values[k as usize].mul_add(x[self.colidx[k as usize].to_usize()], acc);
            }
            y[row as usize] += acc;
        }
    }

    fn spmv_transpose_add_piece(&self, piece: &IntervalSet, x: &[T], y: &mut [T]) {
        debug_assert_eq!(x.len() as u64, self.rows());
        debug_assert_eq!(y.len() as u64, self.cols);
        for run in piece.runs() {
            let mut row = self.row_of(run.lo);
            let mut row_end = self.rowptr[row as usize + 1];
            for k in run.lo..run.hi {
                while k >= row_end {
                    row += 1;
                    row_end = self.rowptr[row as usize + 1];
                }
                y[self.colidx[k as usize].to_usize()] += self.values[k as usize] * x[row as usize];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr<f64, u32> {
        // [ 1 2 0 ]
        // [ 0 0 3 ]
        // [ 4 0 5 ]
        Csr::from_triples(Triples::from_entries(
            3,
            3,
            vec![
                (0, 0, 1.0),
                (0, 1, 2.0),
                (1, 2, 3.0),
                (2, 0, 4.0),
                (2, 2, 5.0),
            ],
        ))
    }

    #[test]
    fn construction() {
        let m = sample();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.rowptr(), &[0, 2, 3, 5]);
        assert_eq!(m.colidx(), &[0u32, 1, 2, 0, 2]);
    }

    #[test]
    fn spmv_matches_reference() {
        let m = sample();
        let x = [1.0, 2.0, 3.0];
        let mut y = vec![0.0; 3];
        m.spmv(&x, &mut y);
        assert_eq!(y, vec![5.0, 9.0, 19.0]);
    }

    #[test]
    fn spmv_transpose_matches_reference() {
        let m = sample();
        let x = [1.0, 2.0, 3.0];
        let mut y = vec![0.0; 3];
        m.spmv_transpose(&x, &mut y);
        assert_eq!(y, vec![13.0, 2.0, 21.0]);
    }

    #[test]
    fn piece_kernels_partition_the_work() {
        let m = sample();
        let x = [1.0, 2.0, 3.0];
        let mut whole = vec![0.0; 3];
        m.spmv(&x, &mut whole);
        // Split the kernel space into two pieces; piece kernels must sum
        // to the full product.
        let pieces = m.kernel_space().all().split_equal(2);
        let mut acc = vec![0.0; 3];
        for p in &pieces {
            m.spmv_add_piece(p, &x, &mut acc);
        }
        assert_eq!(acc, whole);
    }

    #[test]
    fn piece_kernel_crossing_row_boundary() {
        let m = sample();
        let x = [1.0, 1.0, 1.0];
        // Kernel points 1..4 span rows 0, 1, 2 partially.
        let piece = IntervalSet::from_range(1, 4);
        let mut y = vec![0.0; 3];
        m.spmv_add_piece(&piece, &x, &mut y);
        assert_eq!(y, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn relations_reproduce_entries() {
        let m = sample();
        let row = m.row_relation();
        let col = m.col_relation();
        m.for_each_entry(&mut |k, i, j, _| {
            let mut r = Vec::new();
            row.targets_of(k, &mut r);
            assert_eq!(r, vec![i]);
            let mut c = Vec::new();
            col.targets_of(k, &mut c);
            assert_eq!(c, vec![j]);
        });
    }

    #[test]
    fn duplicates_summed() {
        let m: Csr<f64> =
            Csr::from_triples(Triples::from_entries(2, 2, vec![(0, 0, 1.0), (0, 0, 2.5)]));
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.values(), &[3.5]);
    }

    #[test]
    fn diagonal_extraction() {
        let m = sample();
        assert_eq!(m.diagonal(), vec![1.0, 0.0, 5.0]);
    }

    #[test]
    fn empty_rows_handled() {
        let m: Csr<f64> = Csr::from_triples(Triples::from_entries(4, 2, vec![(3, 1, 2.0)]));
        let mut y = vec![0.0; 4];
        m.spmv(&[1.0, 1.0], &mut y);
        assert_eq!(y, vec![0.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "not monotone")]
    fn from_raw_validates() {
        Csr::<f64, u32>::from_raw(vec![0, 2, 1], vec![0, 0], vec![1.0, 1.0], 2);
    }
}
