//! Compressed Sparse Column.
//!
//! Structural assumption: `K` is totally ordered so that each
//! *column's* entries form a contiguous interval. Metadata:
//! `colptr : D -> [K, K]` and `row : K -> R`. CSC is CSR's mirror
//! image; its adjoint SpMV is the fast direction.

use kdr_index::{
    FnRelation, IndexSpace, IntervalMapRelation, IntervalSet, Relation, TransposedRelation,
};

use crate::matrix::SparseMatrix;
use crate::scalar::{IndexInt, Scalar};
use crate::triples::Triples;

/// A CSC matrix generic over entry type `T` and stored index type `I`.
#[derive(Clone, Debug)]
pub struct Csc<T, I = u64> {
    colptr: Vec<u64>,
    rowidx: Vec<I>,
    values: Vec<T>,
    rows: u64,
}

impl<T: Scalar, I: IndexInt> Csc<T, I> {
    /// Build from a coordinate list (duplicates summed).
    pub fn from_triples(t: Triples<T>) -> Self {
        let rows = t.rows();
        let cols = t.cols();
        // Canonicalize in transposed order: sort by (col, row).
        let tt = t.transposed().canonicalize();
        let mut colptr = vec![0u64; cols as usize + 1];
        for &(j, _, _) in tt.entries() {
            colptr[j as usize + 1] += 1;
        }
        for c in 1..colptr.len() {
            colptr[c] += colptr[c - 1];
        }
        let mut rowidx = Vec::with_capacity(tt.len());
        let mut values = Vec::with_capacity(tt.len());
        for &(_, i, v) in tt.entries() {
            rowidx.push(I::from_u64(i));
            values.push(v);
        }
        Csc {
            colptr,
            rowidx,
            values,
            rows,
        }
    }

    /// Row count.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> u64 {
        self.colptr.len() as u64 - 1
    }

    /// Column-pointer array (`cols + 1` entries).
    pub fn colptr(&self) -> &[u64] {
        &self.colptr
    }

    /// Column owning kernel point `k`.
    #[inline]
    fn col_of(&self, k: u64) -> u64 {
        (self.colptr.partition_point(|&p| p <= k) - 1) as u64
    }
}

impl<T: Scalar, I: IndexInt> SparseMatrix<T> for Csc<T, I> {
    fn kernel_space(&self) -> IndexSpace {
        IndexSpace::flat(self.values.len() as u64)
    }

    fn domain_space(&self) -> IndexSpace {
        IndexSpace::flat(self.cols())
    }

    fn range_space(&self) -> IndexSpace {
        IndexSpace::flat(self.rows)
    }

    fn col_relation(&self) -> Box<dyn Relation> {
        Box::new(TransposedRelation::new(Box::new(
            IntervalMapRelation::from_offsets(&self.colptr, self.values.len() as u64),
        )))
    }

    fn row_relation(&self) -> Box<dyn Relation> {
        Box::new(FnRelation::new(
            self.rowidx.iter().map(|&i| i.to_u64()).collect(),
            self.rows,
        ))
    }

    fn for_each_entry(&self, f: &mut dyn FnMut(u64, u64, u64, T)) {
        for j in 0..self.cols() {
            let (lo, hi) = (self.colptr[j as usize], self.colptr[j as usize + 1]);
            for k in lo..hi {
                f(
                    k,
                    self.rowidx[k as usize].to_u64(),
                    j,
                    self.values[k as usize],
                );
            }
        }
    }

    fn spmv_add_piece(&self, piece: &IntervalSet, x: &[T], y: &mut [T]) {
        debug_assert_eq!(x.len() as u64, self.cols());
        debug_assert_eq!(y.len() as u64, self.rows);
        for run in piece.runs() {
            let mut col = self.col_of(run.lo);
            let mut col_end = self.colptr[col as usize + 1];
            for k in run.lo..run.hi {
                while k >= col_end {
                    col += 1;
                    col_end = self.colptr[col as usize + 1];
                }
                y[self.rowidx[k as usize].to_usize()] += self.values[k as usize] * x[col as usize];
            }
        }
    }

    fn spmv_transpose_add_piece(&self, piece: &IntervalSet, x: &[T], y: &mut [T]) {
        debug_assert_eq!(x.len() as u64, self.rows);
        debug_assert_eq!(y.len() as u64, self.cols());
        for run in piece.runs() {
            let mut col = self.col_of(run.lo);
            let mut col_end = self.colptr[col as usize + 1];
            let mut acc = T::ZERO;
            for k in run.lo..run.hi {
                while k >= col_end {
                    y[col as usize] += acc;
                    acc = T::ZERO;
                    col += 1;
                    col_end = self.colptr[col as usize + 1];
                }
                acc = self.values[k as usize].mul_add(x[self.rowidx[k as usize].to_usize()], acc);
            }
            y[col as usize] += acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formats::csr::Csr;

    fn t() -> Triples<f64> {
        Triples::from_entries(
            3,
            3,
            vec![
                (0, 0, 1.0),
                (0, 1, 2.0),
                (1, 2, 3.0),
                (2, 0, 4.0),
                (2, 2, 5.0),
            ],
        )
    }

    #[test]
    fn matches_csr() {
        let csc: Csc<f64, u32> = Csc::from_triples(t());
        let csr: Csr<f64, u32> = Csr::from_triples(t());
        let x = [1.0, 2.0, 3.0];
        let mut y1 = vec![0.0; 3];
        let mut y2 = vec![0.0; 3];
        csc.spmv(&x, &mut y1);
        csr.spmv(&x, &mut y2);
        assert_eq!(y1, y2);
        let mut z1 = vec![0.0; 3];
        let mut z2 = vec![0.0; 3];
        csc.spmv_transpose(&x, &mut z1);
        csr.spmv_transpose(&x, &mut z2);
        assert_eq!(z1, z2);
    }

    #[test]
    fn layout_is_column_major() {
        let m: Csc<f64> = Csc::from_triples(t());
        assert_eq!(m.colptr(), &[0, 2, 3, 5]);
        // Column 0 holds rows 0 and 2.
        let mut coords = Vec::new();
        m.for_each_entry(&mut |k, i, j, _| coords.push((k, i, j)));
        assert_eq!(coords[0], (0, 0, 0));
        assert_eq!(coords[1], (1, 2, 0));
    }

    #[test]
    fn relations_reproduce_entries() {
        let m: Csc<f64> = Csc::from_triples(t());
        let row = m.row_relation();
        let col = m.col_relation();
        m.for_each_entry(&mut |k, i, j, _| {
            let mut r = Vec::new();
            row.targets_of(k, &mut r);
            assert_eq!(r, vec![i]);
            let mut c = Vec::new();
            col.targets_of(k, &mut c);
            assert_eq!(c, vec![j]);
        });
    }

    #[test]
    fn piece_kernels_sum_to_whole() {
        let m: Csc<f64> = Csc::from_triples(t());
        let x = [1.0, -2.0, 0.5];
        let mut whole = vec![0.0; 3];
        m.spmv(&x, &mut whole);
        let mut acc = vec![0.0; 3];
        for p in m.kernel_space().all().split_equal(2) {
            m.spmv_add_piece(&p, &x, &mut acc);
        }
        assert_eq!(acc, whole);
        let mut wt = vec![0.0; 3];
        m.spmv_transpose(&x, &mut wt);
        let mut at = vec![0.0; 3];
        for p in m.kernel_space().all().split_equal(4) {
            m.spmv_transpose_add_piece(&p, &x, &mut at);
        }
        assert_eq!(at, wt);
    }
}
