//! Block compressed sparse row/column formats.
//!
//! Structural assumptions (paper Figure 3): `K = K0 × B_R × B_D`,
//! `D = D0 × B_D`, `R = R0 × B_R`, with `K0` totally ordered. Metadata
//! lives at *block* granularity: BCSR stores
//! `rowptr : R0 -> [K0, K0]` and `col : K0 -> D0`; BCSC mirrors them.
//! The full-space row/column relations are compositions of the block
//! relations with implicit projections and block-expansion maps —
//! expressed here literally as [`ComposedRelation`] chains, so the
//! universal projection operators work at block granularity exactly
//! as the paper prescribes.

use kdr_index::{
    ComposedRelation, FnRelation, IndexSpace, IntervalMapRelation, IntervalSet, ProjectionAxis,
    ProjectionRelation, Relation, TransposedRelation,
};

use crate::matrix::SparseMatrix;
use crate::scalar::{IndexInt, Scalar};
use crate::triples::Triples;

/// Block CSR: dense `br × bd` blocks at block coordinates compressed
/// by block row.
#[derive(Clone, Debug)]
pub struct Bcsr<T, I = u64> {
    block_rowptr: Vec<u64>,
    block_colidx: Vec<I>,
    /// Block-major storage: block `k0` occupies
    /// `blocks[k0 * br * bd ..][..br * bd]`, row-major within a block.
    blocks: Vec<T>,
    br: u64,
    bd: u64,
    rows: u64,
    cols: u64,
}

impl<T: Scalar, I: IndexInt> Bcsr<T, I> {
    /// Build from a coordinate list with the given block shape; the
    /// matrix dimensions must be multiples of the block dimensions.
    pub fn from_triples(t: Triples<T>, br: u64, bd: u64) -> Self {
        assert!(br > 0 && bd > 0, "degenerate block shape");
        assert_eq!(t.rows() % br, 0, "rows not a multiple of block rows");
        assert_eq!(t.cols() % bd, 0, "cols not a multiple of block cols");
        let rows = t.rows();
        let cols = t.cols();
        let r0 = rows / br;
        let t = t.canonicalize();
        // Collect occupied block coordinates.
        let mut coords: Vec<(u64, u64)> = t
            .entries()
            .iter()
            .map(|&(i, j, _)| (i / br, j / bd))
            .collect();
        coords.sort_unstable();
        coords.dedup();
        let mut block_rowptr = vec![0u64; r0 as usize + 1];
        for &(bi, _) in &coords {
            block_rowptr[bi as usize + 1] += 1;
        }
        for i in 1..block_rowptr.len() {
            block_rowptr[i] += block_rowptr[i - 1];
        }
        let block_colidx: Vec<I> = coords.iter().map(|&(_, bj)| I::from_u64(bj)).collect();
        let mut blocks = vec![T::ZERO; coords.len() * (br * bd) as usize];
        // coords is sorted (bi, bj); binary search for each entry.
        for &(i, j, v) in t.entries() {
            let key = (i / br, j / bd);
            let k0 = coords.binary_search(&key).expect("block must exist");
            let (r, c) = (i % br, j % bd);
            blocks[k0 * (br * bd) as usize + (r * bd + c) as usize] += v;
        }
        Bcsr {
            block_rowptr,
            block_colidx,
            blocks,
            br,
            bd,
            rows,
            cols,
        }
    }

    /// Number of stored blocks (`|K0|`).
    pub fn num_blocks(&self) -> u64 {
        self.block_colidx.len() as u64
    }

    /// Block shape `(br, bd)`.
    pub fn block_shape(&self) -> (u64, u64) {
        (self.br, self.bd)
    }

    fn block_size(&self) -> u64 {
        self.br * self.bd
    }
}

impl<T: Scalar, I: IndexInt> SparseMatrix<T> for Bcsr<T, I> {
    fn kernel_space(&self) -> IndexSpace {
        // K = K0 × B_R × B_D, linearized block-major.
        IndexSpace::grid3(self.num_blocks(), self.br, self.bd)
    }

    fn domain_space(&self) -> IndexSpace {
        IndexSpace::flat(self.cols)
    }

    fn range_space(&self) -> IndexSpace {
        IndexSpace::flat(self.rows)
    }

    fn col_relation(&self) -> Box<dyn Relation> {
        // K -> K0 (implicit projection) ; K0 -> D0 (stored) ;
        // D0 -> D (block expansion).
        let to_block = ProjectionRelation::new(
            self.num_blocks().max(1),
            self.block_size(),
            ProjectionAxis::Outer,
        );
        let col0 = FnRelation::new(
            self.block_colidx.iter().map(|&j| j.to_u64()).collect(),
            self.cols / self.bd,
        );
        let expand = IntervalMapRelation::uniform_blocks(self.cols / self.bd, self.bd);
        Box::new(ComposedRelation::new(
            Box::new(ComposedRelation::new(Box::new(to_block), Box::new(col0))),
            Box::new(expand),
        ))
    }

    fn row_relation(&self) -> Box<dyn Relation> {
        // K -> K0 ; K0 -> R0 (transposed block rowptr) ; R0 -> R.
        let to_block = ProjectionRelation::new(
            self.num_blocks().max(1),
            self.block_size(),
            ProjectionAxis::Outer,
        );
        let row0 = TransposedRelation::new(Box::new(IntervalMapRelation::from_offsets(
            &self.block_rowptr,
            self.num_blocks(),
        )));
        let expand = IntervalMapRelation::uniform_blocks(self.rows / self.br, self.br);
        Box::new(ComposedRelation::new(
            Box::new(ComposedRelation::new(Box::new(to_block), Box::new(row0))),
            Box::new(expand),
        ))
    }

    fn for_each_entry(&self, f: &mut dyn FnMut(u64, u64, u64, T)) {
        let bs = self.block_size();
        for bi in 0..self.block_rowptr.len() - 1 {
            for k0 in self.block_rowptr[bi]..self.block_rowptr[bi + 1] {
                let bj = self.block_colidx[k0 as usize].to_u64();
                for r in 0..self.br {
                    for c in 0..self.bd {
                        let k = k0 * bs + r * self.bd + c;
                        f(
                            k,
                            bi as u64 * self.br + r,
                            bj * self.bd + c,
                            self.blocks[k as usize],
                        );
                    }
                }
            }
        }
    }

    fn spmv_add_piece(&self, piece: &IntervalSet, x: &[T], y: &mut [T]) {
        let bs = self.block_size();
        for run in piece.runs() {
            for k in run.lo..run.hi {
                let k0 = k / bs;
                let within = k % bs;
                let (r, c) = (within / self.bd, within % self.bd);
                let bi = (self.block_rowptr.partition_point(|&p| p <= k0) - 1) as u64;
                let bj = self.block_colidx[k0 as usize].to_u64();
                y[(bi * self.br + r) as usize] +=
                    self.blocks[k as usize] * x[(bj * self.bd + c) as usize];
            }
        }
    }

    fn spmv_transpose_add_piece(&self, piece: &IntervalSet, x: &[T], y: &mut [T]) {
        let bs = self.block_size();
        for run in piece.runs() {
            for k in run.lo..run.hi {
                let k0 = k / bs;
                let within = k % bs;
                let (r, c) = (within / self.bd, within % self.bd);
                let bi = (self.block_rowptr.partition_point(|&p| p <= k0) - 1) as u64;
                let bj = self.block_colidx[k0 as usize].to_u64();
                y[(bj * self.bd + c) as usize] +=
                    self.blocks[k as usize] * x[(bi * self.br + r) as usize];
            }
        }
    }

    fn spmv_add(&self, x: &[T], y: &mut [T]) {
        // Fast whole-matrix path: iterate blocks without per-point
        // decoding.
        let bs = self.block_size() as usize;
        for bi in 0..self.block_rowptr.len() - 1 {
            for k0 in self.block_rowptr[bi] as usize..self.block_rowptr[bi + 1] as usize {
                let bj = self.block_colidx[k0].to_usize();
                let block = &self.blocks[k0 * bs..(k0 + 1) * bs];
                for r in 0..self.br as usize {
                    let mut acc = T::ZERO;
                    for c in 0..self.bd as usize {
                        acc = block[r * self.bd as usize + c]
                            .mul_add(x[bj * self.bd as usize + c], acc);
                    }
                    y[bi * self.br as usize + r] += acc;
                }
            }
        }
    }
}

/// Block CSC: dense blocks compressed by block column.
#[derive(Clone, Debug)]
pub struct Bcsc<T, I = u64> {
    block_colptr: Vec<u64>,
    block_rowidx: Vec<I>,
    blocks: Vec<T>,
    br: u64,
    bd: u64,
    rows: u64,
    cols: u64,
}

impl<T: Scalar, I: IndexInt> Bcsc<T, I> {
    /// Build from a coordinate list with the given block shape.
    pub fn from_triples(t: Triples<T>, br: u64, bd: u64) -> Self {
        assert!(br > 0 && bd > 0, "degenerate block shape");
        assert_eq!(t.rows() % br, 0, "rows not a multiple of block rows");
        assert_eq!(t.cols() % bd, 0, "cols not a multiple of block cols");
        let rows = t.rows();
        let cols = t.cols();
        let d0 = cols / bd;
        let t = t.canonicalize();
        let mut coords: Vec<(u64, u64)> = t
            .entries()
            .iter()
            .map(|&(i, j, _)| (j / bd, i / br)) // (block col, block row)
            .collect();
        coords.sort_unstable();
        coords.dedup();
        let mut block_colptr = vec![0u64; d0 as usize + 1];
        for &(bj, _) in &coords {
            block_colptr[bj as usize + 1] += 1;
        }
        for i in 1..block_colptr.len() {
            block_colptr[i] += block_colptr[i - 1];
        }
        let block_rowidx: Vec<I> = coords.iter().map(|&(_, bi)| I::from_u64(bi)).collect();
        let mut blocks = vec![T::ZERO; coords.len() * (br * bd) as usize];
        for &(i, j, v) in t.entries() {
            let key = (j / bd, i / br);
            let k0 = coords.binary_search(&key).expect("block must exist");
            let (r, c) = (i % br, j % bd);
            blocks[k0 * (br * bd) as usize + (r * bd + c) as usize] += v;
        }
        Bcsc {
            block_colptr,
            block_rowidx,
            blocks,
            br,
            bd,
            rows,
            cols,
        }
    }

    /// Number of stored blocks (`|K0|`).
    pub fn num_blocks(&self) -> u64 {
        self.block_rowidx.len() as u64
    }

    fn block_size(&self) -> u64 {
        self.br * self.bd
    }
}

impl<T: Scalar, I: IndexInt> SparseMatrix<T> for Bcsc<T, I> {
    fn kernel_space(&self) -> IndexSpace {
        IndexSpace::grid3(self.num_blocks(), self.br, self.bd)
    }

    fn domain_space(&self) -> IndexSpace {
        IndexSpace::flat(self.cols)
    }

    fn range_space(&self) -> IndexSpace {
        IndexSpace::flat(self.rows)
    }

    fn col_relation(&self) -> Box<dyn Relation> {
        let to_block = ProjectionRelation::new(
            self.num_blocks().max(1),
            self.block_size(),
            ProjectionAxis::Outer,
        );
        let col0 = TransposedRelation::new(Box::new(IntervalMapRelation::from_offsets(
            &self.block_colptr,
            self.num_blocks(),
        )));
        let expand = IntervalMapRelation::uniform_blocks(self.cols / self.bd, self.bd);
        Box::new(ComposedRelation::new(
            Box::new(ComposedRelation::new(Box::new(to_block), Box::new(col0))),
            Box::new(expand),
        ))
    }

    fn row_relation(&self) -> Box<dyn Relation> {
        let to_block = ProjectionRelation::new(
            self.num_blocks().max(1),
            self.block_size(),
            ProjectionAxis::Outer,
        );
        let row0 = FnRelation::new(
            self.block_rowidx.iter().map(|&i| i.to_u64()).collect(),
            self.rows / self.br,
        );
        let expand = IntervalMapRelation::uniform_blocks(self.rows / self.br, self.br);
        Box::new(ComposedRelation::new(
            Box::new(ComposedRelation::new(Box::new(to_block), Box::new(row0))),
            Box::new(expand),
        ))
    }

    fn for_each_entry(&self, f: &mut dyn FnMut(u64, u64, u64, T)) {
        let bs = self.block_size();
        for bj in 0..self.block_colptr.len() - 1 {
            for k0 in self.block_colptr[bj]..self.block_colptr[bj + 1] {
                let bi = self.block_rowidx[k0 as usize].to_u64();
                for r in 0..self.br {
                    for c in 0..self.bd {
                        let k = k0 * bs + r * self.bd + c;
                        f(
                            k,
                            bi * self.br + r,
                            bj as u64 * self.bd + c,
                            self.blocks[k as usize],
                        );
                    }
                }
            }
        }
    }

    fn spmv_add_piece(&self, piece: &IntervalSet, x: &[T], y: &mut [T]) {
        let bs = self.block_size();
        for run in piece.runs() {
            for k in run.lo..run.hi {
                let k0 = k / bs;
                let within = k % bs;
                let (r, c) = (within / self.bd, within % self.bd);
                let bj = (self.block_colptr.partition_point(|&p| p <= k0) - 1) as u64;
                let bi = self.block_rowidx[k0 as usize].to_u64();
                y[(bi * self.br + r) as usize] +=
                    self.blocks[k as usize] * x[(bj * self.bd + c) as usize];
            }
        }
    }

    fn spmv_transpose_add_piece(&self, piece: &IntervalSet, x: &[T], y: &mut [T]) {
        let bs = self.block_size();
        for run in piece.runs() {
            for k in run.lo..run.hi {
                let k0 = k / bs;
                let within = k % bs;
                let (r, c) = (within / self.bd, within % self.bd);
                let bj = (self.block_colptr.partition_point(|&p| p <= k0) - 1) as u64;
                let bi = self.block_rowidx[k0 as usize].to_u64();
                y[(bj * self.bd + c) as usize] +=
                    self.blocks[k as usize] * x[(bi * self.br + r) as usize];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formats::csr::Csr;
    use crate::triples::{random_triples, xorshift};

    fn t() -> Triples<f64> {
        // 6x6 with 2x3 blocks.
        Triples::from_entries(
            6,
            6,
            vec![
                (0, 0, 1.0),
                (1, 2, 2.0),
                (0, 4, 3.0),
                (3, 3, 4.0),
                (5, 5, 5.0),
                (4, 0, 6.0),
            ],
        )
    }

    #[test]
    fn bcsr_matches_csr() {
        let b: Bcsr<f64, u32> = Bcsr::from_triples(t(), 2, 3);
        let c: Csr<f64> = Csr::from_triples(t());
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut y1 = vec![0.0; 6];
        let mut y2 = vec![0.0; 6];
        b.spmv(&x, &mut y1);
        c.spmv(&x, &mut y2);
        assert_eq!(y1, y2);
        let mut z1 = vec![0.0; 6];
        let mut z2 = vec![0.0; 6];
        b.spmv_transpose(&x, &mut z1);
        c.spmv_transpose(&x, &mut z2);
        assert_eq!(z1, z2);
    }

    #[test]
    fn bcsc_matches_csr() {
        let b: Bcsc<f64, u32> = Bcsc::from_triples(t(), 2, 3);
        let c: Csr<f64> = Csr::from_triples(t());
        let x = [1.0, -2.0, 3.0, -4.0, 5.0, -6.0];
        let mut y1 = vec![0.0; 6];
        let mut y2 = vec![0.0; 6];
        b.spmv(&x, &mut y1);
        c.spmv(&x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn block_count_and_kernel_space() {
        let b: Bcsr<f64> = Bcsr::from_triples(t(), 2, 3);
        // Occupied blocks: (0,0), (0,1), (1,1), (2,0), (2,1) -> 5 blocks.
        assert_eq!(b.num_blocks(), 5);
        assert_eq!(b.nnz(), 5 * 6);
        assert_eq!(b.block_shape(), (2, 3));
    }

    #[test]
    fn relations_cover_entries_block_granular() {
        let b: Bcsr<f64> = Bcsr::from_triples(t(), 2, 3);
        let row = b.row_relation();
        let col = b.col_relation();
        // Block relations relate each kernel point to its whole block
        // row/column span — verify containment of the true coordinate.
        b.for_each_entry(&mut |k, i, j, _| {
            let mut r = Vec::new();
            row.targets_of(k, &mut r);
            assert!(r.contains(&i), "row span of k={k} must contain {i}");
            assert_eq!(r.len(), 2, "row span is one block tall");
            let mut c = Vec::new();
            col.targets_of(k, &mut c);
            assert!(c.contains(&j), "col span of k={k} must contain {j}");
            assert_eq!(c.len(), 3, "col span is one block wide");
        });
    }

    #[test]
    fn piece_kernels_sum_to_whole() {
        let b: Bcsr<f64> = Bcsr::from_triples(t(), 2, 3);
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut whole = vec![0.0; 6];
        b.spmv(&x, &mut whole);
        let mut acc = vec![0.0; 6];
        for p in b.kernel_space().all().split_equal(7) {
            b.spmv_add_piece(&p, &x, &mut acc);
        }
        assert_eq!(acc, whole);
    }

    #[test]
    fn random_roundtrip_against_reference() {
        let t = random_triples::<f64>(8, 12, 30, xorshift(7)).canonicalize();
        let b: Bcsr<f64> = Bcsr::from_triples(t.clone(), 4, 3);
        let bc: Bcsc<f64> = Bcsc::from_triples(t.clone(), 2, 4);
        let x: Vec<f64> = (0..12).map(|i| i as f64 * 0.5 - 3.0).collect();
        let expect = t.dense_apply(&x);
        let mut y1 = vec![0.0; 8];
        let mut y2 = vec![0.0; 8];
        b.spmv(&x, &mut y1);
        bc.spmv(&x, &mut y2);
        for i in 0..8 {
            assert!((y1[i] - expect[i]).abs() < 1e-12);
            assert!((y2[i] - expect[i]).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn misaligned_blocks_rejected() {
        Bcsr::<f64>::from_triples(t(), 4, 3);
    }
}
