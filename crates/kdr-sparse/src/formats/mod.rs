//! Storage format implementations.
//!
//! Each module realizes one row of the paper's Figure 3 as a concrete
//! type implementing [`crate::SparseMatrix`]: the format's structural
//! assumptions determine its kernel-space shape, and its stored
//! metadata (or lack thereof) determines its row/column relations.

pub mod bcsr;
pub mod coo;
pub mod csc;
pub mod csr;
pub mod dense;
pub mod dia;
pub mod ell;
pub mod hyb;
