//! Hybrid format: ELL body plus COO overflow.
//!
//! The paper's §7 ("Mixing and composing sparse array storage
//! formats") points out that multi-operator systems let KDRSolvers
//! process pieces of a matrix in different formats; this module
//! implements the classic single-matrix version of that idea — the
//! cuSPARSE-style HYB format, which stores each row's first `width`
//! entries in a regular ELL body and spills irregular rows into a COO
//! tail. Its kernel space is the disjoint union `K = K_ell ⊔ K_coo`,
//! and its row/column relations are literally
//! [`UnionRelation`]s of the two parts' relations shifted into the
//! combined space — composing formats at the relation level, exactly
//! as the paper anticipates.

use kdr_index::{DiagonalRelation, FnRelation, IndexSpace, IntervalSet, Relation, UnionRelation};

use crate::matrix::SparseMatrix;
use crate::scalar::{IndexInt, Scalar};
use crate::triples::Triples;

/// HYB = ELL body (`rows × width`, row-major) + COO overflow.
#[derive(Clone, Debug)]
pub struct Hyb<T, I = u64> {
    // ELL body: slot k = i * width + s.
    ell_cols: Vec<I>,
    ell_vals: Vec<T>,
    width: u64,
    // COO tail.
    coo_rows: Vec<I>,
    coo_cols: Vec<I>,
    coo_vals: Vec<T>,
    rows: u64,
    cols: u64,
}

impl<T: Scalar, I: IndexInt> Hyb<T, I> {
    /// Build with an explicit ELL width: each row's first `width`
    /// entries go to the body, the rest overflow to COO. Duplicates
    /// are summed first.
    pub fn with_width(t: Triples<T>, width: u64) -> Self {
        assert!(width >= 1);
        let rows = t.rows();
        let cols = t.cols();
        let t = t.canonicalize();
        let mut ell_cols = vec![I::from_u64(0); (rows * width) as usize];
        let mut ell_vals = vec![T::ZERO; (rows * width) as usize];
        let mut fill = vec![0u64; rows as usize];
        let mut coo_rows = Vec::new();
        let mut coo_cols = Vec::new();
        let mut coo_vals = Vec::new();
        for &(i, j, v) in t.entries() {
            let f = fill[i as usize];
            if f < width {
                let k = (i * width + f) as usize;
                ell_cols[k] = I::from_u64(j);
                ell_vals[k] = v;
                fill[i as usize] = f + 1;
            } else {
                coo_rows.push(I::from_u64(i));
                coo_cols.push(I::from_u64(j));
                coo_vals.push(v);
            }
        }
        // Padding slots duplicate the row's last stored column.
        for i in 0..rows as usize {
            let f = fill[i];
            if f == 0 {
                continue;
            }
            let last = ell_cols[(i as u64 * width + f - 1) as usize];
            for s in f..width {
                ell_cols[(i as u64 * width + s) as usize] = last;
            }
        }
        Hyb {
            ell_cols,
            ell_vals,
            width,
            coo_rows,
            coo_cols,
            coo_vals,
            rows,
            cols,
        }
    }

    /// Build with the cuSPARSE-style heuristic width: the average row
    /// population, so regular rows stay in the body and outliers
    /// overflow.
    pub fn from_triples(t: Triples<T>) -> Self {
        let rows = t.rows().max(1);
        let avg = (t.len() as u64).div_ceil(rows).max(1);
        Self::with_width(t, avg)
    }

    /// ELL body slots per row.
    pub fn width(&self) -> u64 {
        self.width
    }

    /// Entries in the COO overflow.
    pub fn overflow_len(&self) -> usize {
        self.coo_vals.len()
    }

    fn ell_size(&self) -> u64 {
        self.rows * self.width
    }
}

impl<T: Scalar, I: IndexInt> SparseMatrix<T> for Hyb<T, I> {
    fn kernel_space(&self) -> IndexSpace {
        IndexSpace::flat(self.ell_size() + self.coo_vals.len() as u64)
    }

    fn domain_space(&self) -> IndexSpace {
        IndexSpace::flat(self.cols)
    }

    fn range_space(&self) -> IndexSpace {
        IndexSpace::flat(self.rows)
    }

    fn col_relation(&self) -> Box<dyn Relation> {
        // One stored function covering both parts of K (columns are
        // stored for every kernel point in HYB).
        let mut table: Vec<u64> = self.ell_cols.iter().map(|&j| j.to_u64()).collect();
        table.extend(self.coo_cols.iter().map(|&j| j.to_u64()));
        Box::new(FnRelation::new(table, self.cols))
    }

    fn row_relation(&self) -> Box<dyn Relation> {
        // ELL part: implicit π1 over K_ell, extended with padding over
        // the COO tail (a zero-width diagonal trick won't fit here, so
        // the ELL projection is expressed as a diagonal-style partial
        // relation over the full K and united with the stored COO
        // rows).
        //
        // Simpler and exact: a stored function for the COO part and
        // the implicit division for the ELL part, both expressed as
        // one FnRelation — but that would materialize the implicit
        // part. To honor the format's structure we keep the union:
        // the ELL sub-relation is implicit (computed), the COO
        // sub-relation stored.
        let ell = EllRowsPartial {
            rows: self.rows,
            width: self.width,
            total: self.ell_size() + self.coo_vals.len() as u64,
        };
        let mut table: Vec<u64> = vec![0; self.ell_size() as usize];
        // The stored part must be total over K; point the ELL half at
        // the row it belongs to (duplicating the implicit relation is
        // harmless under union).
        for k in 0..self.ell_size() {
            table[k as usize] = k / self.width;
        }
        let mut full = table;
        full.extend(self.coo_rows.iter().map(|&i| i.to_u64()));
        let coo = FnRelation::new(full, self.rows);
        Box::new(UnionRelation::new(vec![Box::new(ell), Box::new(coo)]))
    }

    fn for_each_entry(&self, f: &mut dyn FnMut(u64, u64, u64, T)) {
        for k in 0..self.ell_size() {
            f(
                k,
                k / self.width,
                self.ell_cols[k as usize].to_u64(),
                self.ell_vals[k as usize],
            );
        }
        let base = self.ell_size();
        for i in 0..self.coo_vals.len() {
            f(
                base + i as u64,
                self.coo_rows[i].to_u64(),
                self.coo_cols[i].to_u64(),
                self.coo_vals[i],
            );
        }
    }

    fn spmv_add_piece(&self, piece: &IntervalSet, x: &[T], y: &mut [T]) {
        let base = self.ell_size();
        for run in piece.runs() {
            for k in run.lo..run.hi {
                if k < base {
                    let i = (k / self.width) as usize;
                    y[i] += self.ell_vals[k as usize] * x[self.ell_cols[k as usize].to_usize()];
                } else {
                    let i = (k - base) as usize;
                    y[self.coo_rows[i].to_usize()] +=
                        self.coo_vals[i] * x[self.coo_cols[i].to_usize()];
                }
            }
        }
    }

    fn spmv_transpose_add_piece(&self, piece: &IntervalSet, x: &[T], y: &mut [T]) {
        let base = self.ell_size();
        for run in piece.runs() {
            for k in run.lo..run.hi {
                if k < base {
                    let i = (k / self.width) as usize;
                    y[self.ell_cols[k as usize].to_usize()] += self.ell_vals[k as usize] * x[i];
                } else {
                    let i = (k - base) as usize;
                    y[self.coo_cols[i].to_usize()] +=
                        self.coo_vals[i] * x[self.coo_rows[i].to_usize()];
                }
            }
        }
    }
}

/// The ELL body's implicit row relation, partial over the combined
/// kernel space (COO tail points relate to nothing here).
struct EllRowsPartial {
    rows: u64,
    width: u64,
    total: u64,
}

impl Relation for EllRowsPartial {
    fn source_size(&self) -> u64 {
        self.total
    }

    fn target_size(&self) -> u64 {
        self.rows
    }

    fn targets_of(&self, s: u64, out: &mut Vec<u64>) {
        if s < self.rows * self.width {
            out.push(s / self.width);
        }
    }

    fn image(&self, set: &IntervalSet) -> IntervalSet {
        let ell = set.intersect(&IntervalSet::from_range(0, self.rows * self.width));
        let proj = kdr_index::ProjectionRelation::new(
            self.rows,
            self.width,
            kdr_index::ProjectionAxis::Outer,
        );
        proj.image(&ell)
    }

    fn preimage(&self, set: &IntervalSet) -> IntervalSet {
        let proj = kdr_index::ProjectionRelation::new(
            self.rows,
            self.width,
            kdr_index::ProjectionAxis::Outer,
        );
        proj.preimage(set)
    }
}

// Quiet the unused-import warning for DiagonalRelation referenced in
// docs.
#[allow(unused_imports)]
use DiagonalRelation as _DocOnly;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formats::csr::Csr;
    use crate::stencil::rhs_vector;

    /// A matrix with regular rows plus two heavy outlier rows.
    fn t() -> Triples<f64> {
        let mut t = Triples::new(8, 8);
        for i in 0..8u64 {
            t.push(i, i, 4.0);
            if i > 0 {
                t.push(i, i - 1, -1.0);
            }
        }
        // Outliers: dense-ish rows 2 and 5.
        for j in 0..8u64 {
            t.push(2, j, 0.25);
            t.push(5, j, -0.5);
        }
        t
    }

    #[test]
    fn splits_body_and_overflow() {
        let m: Hyb<f64, u32> = Hyb::from_triples(t());
        assert!(m.width() >= 1);
        assert!(m.overflow_len() > 0, "outlier rows must spill");
        // Total stored = ELL slots + overflow.
        assert_eq!(m.nnz(), 8 * m.width() + m.overflow_len() as u64);
    }

    #[test]
    fn spmv_matches_csr() {
        let m: Hyb<f64, u32> = Hyb::from_triples(t());
        let c: Csr<f64> = Csr::from_triples(t());
        let x = rhs_vector::<f64>(8, 3);
        let mut y1 = vec![0.0; 8];
        let mut y2 = vec![0.0; 8];
        m.spmv(&x, &mut y1);
        c.spmv(&x, &mut y2);
        for i in 0..8 {
            assert!((y1[i] - y2[i]).abs() < 1e-12, "row {i}");
        }
        let mut z1 = vec![0.0; 8];
        let mut z2 = vec![0.0; 8];
        m.spmv_transpose(&x, &mut z1);
        c.spmv_transpose(&x, &mut z2);
        for i in 0..8 {
            assert!((z1[i] - z2[i]).abs() < 1e-12, "t row {i}");
        }
    }

    #[test]
    fn relations_cover_entries() {
        let m: Hyb<f64, u32> = Hyb::from_triples(t());
        let row = m.row_relation();
        let col = m.col_relation();
        m.for_each_entry(&mut |k, i, j, _| {
            let mut r = Vec::new();
            row.targets_of(k, &mut r);
            assert!(r.contains(&i), "row at k={k}");
            let mut c = Vec::new();
            col.targets_of(k, &mut c);
            assert!(c.contains(&j), "col at k={k}");
        });
    }

    #[test]
    fn piece_kernels_sum_to_whole() {
        let m: Hyb<f64, u32> = Hyb::from_triples(t());
        let x = rhs_vector::<f64>(8, 9);
        let mut whole = vec![0.0; 8];
        m.spmv(&x, &mut whole);
        let mut acc = vec![0.0; 8];
        for p in m.kernel_space().all().split_equal(5) {
            m.spmv_add_piece(&p, &x, &mut acc);
        }
        for i in 0..8 {
            assert!((acc[i] - whole[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn explicit_width_controls_split() {
        let narrow: Hyb<f64, u32> = Hyb::with_width(t(), 1);
        let wide: Hyb<f64, u32> = Hyb::with_width(t(), 10);
        assert!(narrow.overflow_len() > wide.overflow_len());
        assert_eq!(wide.overflow_len(), 0);
        let x = rhs_vector::<f64>(8, 1);
        let mut y1 = vec![0.0; 8];
        let mut y2 = vec![0.0; 8];
        narrow.spmv(&x, &mut y1);
        wide.spmv(&x, &mut y2);
        for i in 0..8 {
            assert!((y1[i] - y2[i]).abs() < 1e-12);
        }
    }
}
