//! Coordinate format, in structure-of-arrays and array-of-structures
//! layouts.
//!
//! COO carries no structural assumptions: its metadata is exactly the
//! two stored functions `row : K -> R` and `col : K -> D`. The paper
//! notes that the abstract format does not fix a physical layout —
//! an indexed collection of records `{entry, col, row}` can be laid
//! out SoA or AoS — so this module provides both ([`Coo`] and
//! [`CooAos`]) behind the same trait.

use kdr_index::{FnRelation, IndexSpace, IntervalSet, Relation};

use crate::matrix::SparseMatrix;
use crate::scalar::{IndexInt, Scalar};
use crate::triples::Triples;

/// COO in structure-of-arrays layout (separate row/col/value arrays).
#[derive(Clone, Debug)]
pub struct Coo<T, I = u64> {
    rowidx: Vec<I>,
    colidx: Vec<I>,
    values: Vec<T>,
    rows: u64,
    cols: u64,
}

impl<T: Scalar, I: IndexInt> Coo<T, I> {
    /// Build from a coordinate list. Duplicates are preserved (COO
    /// permits them; kernels sum them), insertion order kept.
    pub fn from_triples(t: Triples<T>) -> Self {
        let rows = t.rows();
        let cols = t.cols();
        let mut rowidx = Vec::with_capacity(t.len());
        let mut colidx = Vec::with_capacity(t.len());
        let mut values = Vec::with_capacity(t.len());
        for &(i, j, v) in t.entries() {
            rowidx.push(I::from_u64(i));
            colidx.push(I::from_u64(j));
            values.push(v);
        }
        Coo {
            rowidx,
            colidx,
            values,
            rows,
            cols,
        }
    }

    /// Row count.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> u64 {
        self.cols
    }
}

impl<T: Scalar, I: IndexInt> SparseMatrix<T> for Coo<T, I> {
    fn kernel_space(&self) -> IndexSpace {
        IndexSpace::flat(self.values.len() as u64)
    }

    fn domain_space(&self) -> IndexSpace {
        IndexSpace::flat(self.cols)
    }

    fn range_space(&self) -> IndexSpace {
        IndexSpace::flat(self.rows)
    }

    fn col_relation(&self) -> Box<dyn Relation> {
        Box::new(FnRelation::new(
            self.colidx.iter().map(|&j| j.to_u64()).collect(),
            self.cols,
        ))
    }

    fn row_relation(&self) -> Box<dyn Relation> {
        Box::new(FnRelation::new(
            self.rowidx.iter().map(|&i| i.to_u64()).collect(),
            self.rows,
        ))
    }

    fn for_each_entry(&self, f: &mut dyn FnMut(u64, u64, u64, T)) {
        for k in 0..self.values.len() {
            f(
                k as u64,
                self.rowidx[k].to_u64(),
                self.colidx[k].to_u64(),
                self.values[k],
            );
        }
    }

    fn spmv_add_piece(&self, piece: &IntervalSet, x: &[T], y: &mut [T]) {
        for run in piece.runs() {
            for k in run.lo as usize..run.hi as usize {
                y[self.rowidx[k].to_usize()] += self.values[k] * x[self.colidx[k].to_usize()];
            }
        }
    }

    fn spmv_transpose_add_piece(&self, piece: &IntervalSet, x: &[T], y: &mut [T]) {
        for run in piece.runs() {
            for k in run.lo as usize..run.hi as usize {
                y[self.colidx[k].to_usize()] += self.values[k] * x[self.rowidx[k].to_usize()];
            }
        }
    }
}

/// One COO record: entry plus its grid coordinates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CooRecord<T, I> {
    /// Row index.
    pub row: I,
    /// Column index.
    pub col: I,
    /// Stored value.
    pub value: T,
}

/// COO in array-of-structures layout (one record per entry).
#[derive(Clone, Debug)]
pub struct CooAos<T, I = u64> {
    records: Vec<CooRecord<T, I>>,
    rows: u64,
    cols: u64,
}

impl<T: Scalar, I: IndexInt> CooAos<T, I> {
    /// Build from a coordinate list, preserving duplicates and order.
    pub fn from_triples(t: Triples<T>) -> Self {
        let rows = t.rows();
        let cols = t.cols();
        let records = t
            .entries()
            .iter()
            .map(|&(i, j, v)| CooRecord {
                row: I::from_u64(i),
                col: I::from_u64(j),
                value: v,
            })
            .collect();
        CooAos {
            records,
            rows,
            cols,
        }
    }

    /// The stored records, in insertion order.
    pub fn records(&self) -> &[CooRecord<T, I>] {
        &self.records
    }
}

impl<T: Scalar, I: IndexInt> SparseMatrix<T> for CooAos<T, I> {
    fn kernel_space(&self) -> IndexSpace {
        IndexSpace::flat(self.records.len() as u64)
    }

    fn domain_space(&self) -> IndexSpace {
        IndexSpace::flat(self.cols)
    }

    fn range_space(&self) -> IndexSpace {
        IndexSpace::flat(self.rows)
    }

    fn col_relation(&self) -> Box<dyn Relation> {
        Box::new(FnRelation::new(
            self.records.iter().map(|r| r.col.to_u64()).collect(),
            self.cols,
        ))
    }

    fn row_relation(&self) -> Box<dyn Relation> {
        Box::new(FnRelation::new(
            self.records.iter().map(|r| r.row.to_u64()).collect(),
            self.rows,
        ))
    }

    fn for_each_entry(&self, f: &mut dyn FnMut(u64, u64, u64, T)) {
        for (k, r) in self.records.iter().enumerate() {
            f(k as u64, r.row.to_u64(), r.col.to_u64(), r.value);
        }
    }

    fn spmv_add_piece(&self, piece: &IntervalSet, x: &[T], y: &mut [T]) {
        for run in piece.runs() {
            for r in &self.records[run.lo as usize..run.hi as usize] {
                y[r.row.to_usize()] += r.value * x[r.col.to_usize()];
            }
        }
    }

    fn spmv_transpose_add_piece(&self, piece: &IntervalSet, x: &[T], y: &mut [T]) {
        for run in piece.runs() {
            for r in &self.records[run.lo as usize..run.hi as usize] {
                y[r.col.to_usize()] += r.value * x[r.row.to_usize()];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Triples<f64> {
        Triples::from_entries(
            3,
            4,
            vec![(2, 1, 2.0), (0, 0, 1.0), (0, 3, 3.0), (2, 1, 0.5)],
        )
    }

    #[test]
    fn soa_spmv_sums_duplicates() {
        let m: Coo<f64, u32> = Coo::from_triples(t());
        assert_eq!(m.nnz(), 4); // duplicates preserved in K
        let x = [1.0, 2.0, 3.0, 4.0];
        let mut y = vec![0.0; 3];
        m.spmv(&x, &mut y);
        assert_eq!(y, vec![13.0, 0.0, 5.0]);
    }

    #[test]
    fn aos_equals_soa() {
        let soa: Coo<f64> = Coo::from_triples(t());
        let aos: CooAos<f64> = CooAos::from_triples(t());
        let x = [1.0, -1.0, 0.5, 2.0];
        let mut y1 = vec![0.0; 3];
        let mut y2 = vec![0.0; 3];
        soa.spmv(&x, &mut y1);
        aos.spmv(&x, &mut y2);
        assert_eq!(y1, y2);
        let xr = [1.0, 2.0, 3.0];
        let mut z1 = vec![0.0; 4];
        let mut z2 = vec![0.0; 4];
        soa.spmv_transpose(&xr, &mut z1);
        aos.spmv_transpose(&xr, &mut z2);
        assert_eq!(z1, z2);
    }

    #[test]
    fn relations_are_stored_functions() {
        let m: Coo<f64> = Coo::from_triples(t());
        let row = m.row_relation();
        let col = m.col_relation();
        // Kernel point 0 is entry (2, 1).
        assert_eq!(
            row.image(&IntervalSet::from_points([0])),
            IntervalSet::from_points([2])
        );
        assert_eq!(
            col.image(&IntervalSet::from_points([0])),
            IntervalSet::from_points([1])
        );
        // Duplicate coordinates share images.
        assert_eq!(
            row.preimage(&IntervalSet::from_points([2])),
            IntervalSet::from_points([0, 3])
        );
    }

    #[test]
    fn piece_split_covers_product() {
        let m: CooAos<f64> = CooAos::from_triples(t());
        let x = [1.0, 2.0, 3.0, 4.0];
        let mut whole = vec![0.0; 3];
        m.spmv(&x, &mut whole);
        let mut acc = vec![0.0; 3];
        for p in m.kernel_space().all().split_equal(3) {
            m.spmv_add_piece(&p, &x, &mut acc);
        }
        assert_eq!(acc, whole);
    }
}
