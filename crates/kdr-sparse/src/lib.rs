#![warn(missing_docs)]
//! # kdr-sparse
//!
//! Sparse matrix storage formats for the KDRSolvers framework.
//!
//! Following the paper's §3, a storage format is nothing more than an
//! indexed collection of entries over a *kernel space* `K` together
//! with a *column relation* `col ⊆ K × D` and a *row relation*
//! `row ⊆ K × R`. Every format in this crate implements the
//! [`SparseMatrix`] trait, which exposes exactly those three pieces
//! plus computational kernels (SpMV, adjoint SpMV, and
//! piece-restricted variants used by partitioned execution).
//!
//! Formats implemented (the paper's Figure 3):
//!
//! | Format | Module | Structural assumption |
//! |--------|--------|----------------------|
//! | Dense  | [`formats::dense`] | `K = R × D`, both relations implicit |
//! | COO    | [`formats::coo`]   | none (SoA and AoS layouts) |
//! | CSR    | [`formats::csr`]   | `K` totally ordered, `rowptr : R → [K,K]` |
//! | CSC    | [`formats::csc`]   | `K` totally ordered, `colptr : D → [K,K]` |
//! | ELL    | [`formats::ell`]   | `K = R × K0`, row relation implicit |
//! | ELL'   | [`formats::ell`]   | `K = D × K0`, column relation implicit |
//! | DIA    | [`formats::dia`]   | `K = K0 × D`, both relations implicit |
//! | BCSR   | [`formats::bcsr`]  | `K = K0 × B_R × B_D`, block relations |
//! | BCSC   | [`formats::bcsr`]  | `K = K0 × B_R × B_D`, block relations |
//!
//! Because every format hands back its relations as
//! [`kdr_index::Relation`] trait objects, the universal co-partitioning
//! operators in `kdr-index` apply to all of them — including formats
//! defined *outside* this crate (see the `custom_format` example).

pub mod convert;
pub mod formats;
pub mod io;
pub mod matfree;
pub mod matrix;
pub mod scalar;
pub mod stencil;
pub mod tile;
pub mod triples;

pub use formats::bcsr::{Bcsc, Bcsr};
pub use formats::coo::{Coo, CooAos};
pub use formats::csc::Csc;
pub use formats::csr::Csr;
pub use formats::dense::Dense;
pub use formats::dia::Dia;
pub use formats::ell::{Ell, EllT};
pub use formats::hyb::Hyb;
pub use matfree::StencilTile;
pub use matrix::SparseMatrix;
pub use scalar::{IndexInt, Scalar};
pub use stencil::{Stencil, StencilKind, StencilOperator, VirtualBanded};
pub use tile::{
    KernelAdvisor, KernelChoice, KernelKind, StructureKey, TileKernel, TileStructure, VecIn,
    VecOut,
};
pub use triples::Triples;
