//! Matrix Market I/O.
//!
//! A small reader/writer for the `%%MatrixMarket matrix coordinate
//! real general/symmetric` subset — enough to ingest external test
//! matrices and to dump generated systems for inspection. The paper's
//! experiments need no external data (matrices are generated at
//! runtime), so this module exists for users, not for the benchmarks.

use std::io::{BufRead, Write};

use crate::scalar::Scalar;
use crate::triples::Triples;

/// Errors from Matrix Market parsing.
#[derive(Debug)]
pub enum MmError {
    /// The file could not be read.
    Io(std::io::Error),
    /// The contents were not valid Matrix Market data.
    Parse(String),
}

impl std::fmt::Display for MmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MmError::Io(e) => write!(f, "I/O error: {e}"),
            MmError::Parse(m) => write!(f, "Matrix Market parse error: {m}"),
        }
    }
}

impl std::error::Error for MmError {}

impl From<std::io::Error> for MmError {
    fn from(e: std::io::Error) -> Self {
        MmError::Io(e)
    }
}

/// Read a coordinate-format Matrix Market stream into a [`Triples`].
/// Supports `general` and `symmetric` symmetry (symmetric entries are
/// mirrored; diagonal entries are not duplicated).
pub fn read_matrix_market<T: Scalar, R: BufRead>(reader: R) -> Result<Triples<T>, MmError> {
    let mut lines = reader.lines();
    let header = lines
        .next()
        .ok_or_else(|| MmError::Parse("empty stream".into()))??;
    let header_lc = header.to_lowercase();
    if !header_lc.starts_with("%%matrixmarket") {
        return Err(MmError::Parse(format!("bad header: {header}")));
    }
    if !header_lc.contains("coordinate") || !header_lc.contains("real") {
        return Err(MmError::Parse(
            "only `coordinate real` matrices are supported".into(),
        ));
    }
    let symmetric = header_lc.contains("symmetric");
    if !symmetric && !header_lc.contains("general") {
        return Err(MmError::Parse(
            "only `general` and `symmetric` symmetry are supported".into(),
        ));
    }

    // Skip comments, read the size line.
    let size_line = loop {
        let line = lines
            .next()
            .ok_or_else(|| MmError::Parse("missing size line".into()))??;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        break line;
    };
    let mut it = size_line.split_whitespace();
    let rows: u64 = parse(it.next(), "rows")?;
    let cols: u64 = parse(it.next(), "cols")?;
    let nnz: usize = parse(it.next(), "nnz")?;

    let mut t = Triples::new(rows, cols);
    let mut seen = 0usize;
    for line in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let i: u64 = parse(it.next(), "row index")?;
        let j: u64 = parse(it.next(), "col index")?;
        let v: f64 = parse(it.next(), "value")?;
        if i == 0 || j == 0 || i > rows || j > cols {
            return Err(MmError::Parse(format!(
                "coordinate ({i}, {j}) out of range"
            )));
        }
        // Matrix Market is 1-based.
        t.push(i - 1, j - 1, T::from_f64(v));
        if symmetric && i != j {
            t.push(j - 1, i - 1, T::from_f64(v));
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(MmError::Parse(format!(
            "expected {nnz} entries, found {seen}"
        )));
    }
    Ok(t)
}

fn parse<F: std::str::FromStr>(tok: Option<&str>, what: &str) -> Result<F, MmError> {
    tok.ok_or_else(|| MmError::Parse(format!("missing {what}")))?
        .parse()
        .map_err(|_| MmError::Parse(format!("malformed {what}")))
}

/// Write a coordinate-format `general` Matrix Market stream.
pub fn write_matrix_market<T: Scalar, W: Write>(
    t: &Triples<T>,
    mut writer: W,
) -> Result<(), MmError> {
    writeln!(writer, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(writer, "{} {} {}", t.rows(), t.cols(), t.len())?;
    for &(i, j, v) in t.entries() {
        writeln!(writer, "{} {} {:e}", i + 1, j + 1, v.to_f64())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn roundtrip() {
        let t = Triples::from_entries(3, 4, vec![(0, 1, 1.5), (2, 3, -2.0), (1, 0, 0.25)]);
        let mut buf = Vec::new();
        write_matrix_market(&t, &mut buf).unwrap();
        let back: Triples<f64> = read_matrix_market(BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(back.rows(), 3);
        assert_eq!(back.cols(), 4);
        let mut a = t.entries().to_vec();
        let mut b = back.entries().to_vec();
        a.sort_by(|x, y| x.partial_cmp(y).unwrap());
        b.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn symmetric_mirroring() {
        let src = "%%MatrixMarket matrix coordinate real symmetric\n\
                   % a comment\n\
                   3 3 2\n\
                   1 1 2.0\n\
                   3 1 -1.0\n";
        let t: Triples<f64> = read_matrix_market(BufReader::new(src.as_bytes())).unwrap();
        assert_eq!(t.len(), 3); // diagonal not mirrored, off-diagonal is
        let y = t.dense_apply(&[1.0, 0.0, 1.0]);
        assert_eq!(y, vec![1.0, 0.0, -1.0]);
    }

    #[test]
    fn rejects_bad_header() {
        let src = "not a matrix market file\n1 1 0\n";
        assert!(read_matrix_market::<f64, _>(BufReader::new(src.as_bytes())).is_err());
    }

    #[test]
    fn rejects_out_of_range() {
        let src = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_matrix_market::<f64, _>(BufReader::new(src.as_bytes())).is_err());
    }

    #[test]
    fn rejects_wrong_count() {
        let src = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(read_matrix_market::<f64, _>(BufReader::new(src.as_bytes())).is_err());
    }
}
