//! Matrix-free stencil tile kernels: zero-storage operator apply.
//!
//! Every other member of the [`crate::tile`] kernel family stores the
//! tile's values (CSR/ELL/BCSR exactly, DIA with dense padding). For
//! the paper's Laplacian workloads those values are a pure function
//! of the grid coordinate, so the big-grid regime — bandwidth-bound
//! per BENCH_spmv.json — spends most of its memory traffic streaming
//! numbers that could be recomputed for free. A [`StencilTile`]
//! stores *nothing per entry*: just the [`Stencil`] descriptor and
//! the tile's global row runs. Its apply walks the grid geometry
//! directly — each grid line's interior is swept *offset-major* (one
//! stride-1 fused-`mul_add` sweep per stencil point surviving the
//! line's outer-boundary clip, the DIA loop shape minus the value
//! loads), and the remaining inner-boundary rows delegate to
//! [`Stencil::row_entries`], the single canonical Dirichlet
//! boundary-clipping implementation shared with every assembled path.
//!
//! # Bitwise contract
//!
//! The module honors the family-wide reproducibility contract of
//! [`crate::tile`]: each output element accumulates its contributions
//! in exactly the CSR reference order. The offset table is sorted
//! ascending, and on a row-major grid ascending linear offset *is*
//! ascending column for interior rows — so per output row the forward
//! sweeps land contributions in exactly the order of the
//! [`crate::tile::CsrTile::apply`] `mul_add` chain (sweeping
//! temporally reorders *between* rows, never within one, and masking
//! only removes entries the assembled row never stored). The
//! transpose sweeps offsets **descending**, so each output column
//! receives its contributions in ascending source-row order,
//! matching [`crate::tile::CsrTile::apply_t`] — the same trick as
//! [`crate::tile::DiaTile::apply_t`]. Boundary rows replay
//! [`Stencil::row_entries`], which emits ascending columns with
//! off-grid neighbors dropped — identical to what the assembled CSR
//! stored in the first place. Property tests in
//! `tests/kernel_prop.rs` enforce bit-equality against forced-CSR
//! lowering across random grid shapes, all four stencils, both
//! directions, and tile boundaries straddling grid planes.

use crate::scalar::Scalar;
use crate::stencil::Stencil;
use crate::tile::{VecIn, VecOut};

/// A matrix-free tile over a row slab of a [`Stencil`] operator: the
/// descriptor plus global row runs, zero stored values.
///
/// The tile covers rows `rows` × *all* columns of the stencil's
/// square operator (a row-slab tile of a single-component system, the
/// shape dependent partitioning produces for every paper workload),
/// in global = component-local coordinates.
#[derive(Clone, Debug)]
pub struct StencilTile<T> {
    stencil: Stencil,
    /// Global row runs `[lo, hi)`, ascending and disjoint.
    rows: Vec<(u64, u64)>,
    /// Exact stored-entry count of the assembled equivalent.
    nnz: usize,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Scalar> StencilTile<T> {
    /// A matrix-free tile applying `stencil` over the given global
    /// row runs (ascending, disjoint, within `stencil.unknowns()`).
    pub fn new(stencil: Stencil, rows: Vec<(u64, u64)>) -> Self {
        let n = stencil.unknowns();
        let mut prev = 0u64;
        for &(lo, hi) in &rows {
            assert!(lo <= hi && hi <= n, "row run [{lo}, {hi}) out of bounds");
            assert!(lo >= prev, "row runs must be ascending and disjoint");
            prev = hi;
        }
        let nnz = rows
            .iter()
            .map(|&(lo, hi)| stencil.slab_nnz(lo, hi))
            .sum::<u64>() as usize;
        StencilTile {
            stencil,
            rows,
            nnz,
            _marker: std::marker::PhantomData,
        }
    }

    /// The stencil descriptor.
    pub fn stencil(&self) -> &Stencil {
        &self.stencil
    }

    /// The tile's global row runs.
    pub fn rows(&self) -> &[(u64, u64)] {
        &self.rows
    }

    /// Entry count of the assembled equivalent (nothing is stored).
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Execute `y += A x` (or `y += Aᵀ x` when `transpose`), bitwise
    /// identical to the forced-CSR lowering of the same rows.
    #[inline]
    pub fn apply<X: VecIn<T>, Y: VecOut<T>>(&self, x: &X, y: &mut Y, transpose: bool) {
        let table = self.stencil.offset_table();
        let w = table.len();
        let mut offs = [0i64; 27];
        let mut wts = [T::ZERO; 27];
        let mut disp = [(0i64, 0i64, 0i64); 27];
        for (k, &(o, d)) in table.iter().enumerate() {
            offs[k] = o;
            wts[k] = self.stencil.point_weight(d);
            disp[k] = d;
        }
        let mut scratch: Vec<(u64, T)> = Vec::with_capacity(w);
        for &(lo, hi) in &self.rows {
            self.apply_run(
                lo,
                hi,
                &offs[..w],
                &wts[..w],
                &disp[..w],
                x,
                y,
                transpose,
                &mut scratch,
            );
        }
    }

    /// One row run, decomposed along innermost-axis grid lines. Each
    /// line keeps the stencil points whose *outer* coordinates stay
    /// in-grid (constant along the line); the line's inner-axis
    /// interior is then swept offset-major over that masked table,
    /// and only the ≤ 2 inner-boundary rows replay
    /// [`Stencil::row_entries`]. Lines are visited strictly
    /// ascending, which the transpose contract requires (each output
    /// column must see ascending source rows).
    #[allow(clippy::too_many_arguments)]
    fn apply_run<X: VecIn<T>, Y: VecOut<T>>(
        &self,
        lo: u64,
        hi: u64,
        offs: &[i64],
        wts: &[T],
        disp: &[(i64, i64, i64)],
        x: &X,
        y: &mut Y,
        transpose: bool,
        scratch: &mut Vec<(u64, T)>,
    ) {
        let s = &self.stencil;
        let dims = s.kind.dims();
        // The innermost (fastest-varying) axis; a "line" is one
        // contiguous stretch of rows sharing all outer coordinates.
        let inner_n = match dims {
            1 => s.nx,
            2 => s.ny,
            _ => s.nz,
        };
        let mut m_offs = [0i64; 27];
        let mut m_wts = [T::ZERO; 27];
        let mut r = lo;
        while r < hi {
            let line = r / inner_n;
            let line_lo = line * inner_n;
            let line_hi = line_lo + inner_n;
            let seg_hi = hi.min(line_hi);
            if inner_n >= 3 {
                // Outer-coordinate clip for this line: keep the points
                // whose x/y displacement stays in-grid (the inner
                // displacement is covered by the inner-interior split
                // below). Masking preserves ascending-offset order, so
                // the surviving contributions accumulate exactly as
                // the assembled row stores them.
                let (lx, ly) = match dims {
                    1 => (0i64, 0i64),
                    2 => (line as i64, 0),
                    _ => ((line / s.ny) as i64, (line % s.ny) as i64),
                };
                let mut m = 0usize;
                for (k, &(dx, dy, _)) in disp.iter().enumerate() {
                    let ok = match dims {
                        1 => true,
                        2 => (0..s.nx as i64).contains(&(lx + dx)),
                        _ => {
                            (0..s.nx as i64).contains(&(lx + dx))
                                && (0..s.ny as i64).contains(&(ly + dy))
                        }
                    };
                    if ok {
                        m_offs[m] = offs[k];
                        m_wts[m] = wts[k];
                        m += 1;
                    }
                }
                let w0 = (line_lo + 1).clamp(r, seg_hi);
                let w1 = (line_hi - 1).clamp(r, seg_hi);
                self.boundary_rows(r, w0, x, y, transpose, scratch);
                if transpose {
                    Self::interior_t(w0, w1, &m_offs[..m], &m_wts[..m], x, y);
                } else {
                    Self::interior_fwd(w0, w1, &m_offs[..m], &m_wts[..m], x, y);
                }
                self.boundary_rows(w1, seg_hi, x, y, transpose, scratch);
            } else {
                // Degenerate inner axis: every row clips.
                self.boundary_rows(r, seg_hi, x, y, transpose, scratch);
            }
            r = seg_hi;
        }
    }

    /// Interior forward rows, swept offset-major — the DIA loop
    /// shape, minus the value loads. Per output row the contributions
    /// still land in ascending-offset = ascending-column order, so
    /// the FP accumulation sequence is exactly the CSR chain; but
    /// where a row-major loop is a serial `mul_add` dependency chain
    /// (latency-bound at ~4–5 cycles per entry), each offset sweep
    /// here is an independent stride-1 loop with the weight in a
    /// register, so the hardware overlaps rows freely.
    #[inline]
    fn interior_fwd<X: VecIn<T>, Y: VecOut<T>>(
        lo: u64,
        hi: u64,
        offs: &[i64],
        wts: &[T],
        x: &X,
        y: &mut Y,
    ) {
        let n = (hi - lo) as usize;
        if n == 0 {
            return;
        }
        let row0 = lo as usize;
        for (k, &w) in wts.iter().enumerate() {
            let col0 = (lo as i64 + offs[k]) as usize;
            // Slice fast path: equal-length subslices let the
            // compiler drop per-element bounds checks and vectorize
            // the fused multiply-adds (packed FMA is the same
            // operation per element, so bit-equality is unaffected).
            if let Some(xs) = x.range(col0, n) {
                if let Some(ys) = y.range_mut(row0, n) {
                    for (yi, &xi) in ys.iter_mut().zip(xs) {
                        *yi = w.mul_add(xi, *yi);
                    }
                    continue;
                }
            }
            for i in 0..n {
                let r = row0 + i;
                y.store(r, w.mul_add(x.load(col0 + i), y.load(r)));
            }
        }
    }

    /// Interior transpose rows: offset sweeps **descending**, so each
    /// output column receives its contributions in ascending source
    /// row order — the CSR-transpose contract, same trick as
    /// [`crate::tile::DiaTile::apply_t`].
    #[inline]
    fn interior_t<X: VecIn<T>, Y: VecOut<T>>(
        lo: u64,
        hi: u64,
        offs: &[i64],
        wts: &[T],
        x: &X,
        y: &mut Y,
    ) {
        let n = (hi - lo) as usize;
        if n == 0 {
            return;
        }
        let row0 = lo as usize;
        for (k, &w) in wts.iter().enumerate().rev() {
            let col0 = (lo as i64 + offs[k]) as usize;
            if let Some(xs) = x.range(row0, n) {
                if let Some(ys) = y.range_mut(col0, n) {
                    for (yj, &xi) in ys.iter_mut().zip(xs) {
                        *yj = w.mul_add(xi, *yj);
                    }
                    continue;
                }
            }
            for i in 0..n {
                let j = col0 + i;
                y.store(j, w.mul_add(x.load(row0 + i), y.load(j)));
            }
        }
    }

    /// Boundary rows: replay [`Stencil::row_entries`] — the one
    /// canonical Dirichlet clipping implementation — so the implicit
    /// path cannot drift from what assembly would have stored.
    fn boundary_rows<X: VecIn<T>, Y: VecOut<T>>(
        &self,
        lo: u64,
        hi: u64,
        x: &X,
        y: &mut Y,
        transpose: bool,
        scratch: &mut Vec<(u64, T)>,
    ) {
        for r in lo..hi {
            self.stencil.row_entries(r, scratch);
            if transpose {
                let xv = x.load(r as usize);
                for &(j, v) in scratch.iter() {
                    y.store(j as usize, v.mul_add(xv, y.load(j as usize)));
                }
            } else {
                let mut acc = y.load(r as usize);
                for &(j, v) in scratch.iter() {
                    acc = v.mul_add(x.load(j as usize), acc);
                }
                y.store(r as usize, acc);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stencil::rhs_vector;
    use crate::tile::{KernelChoice, KernelKind, TileKernel};

    /// Forced-CSR lowering of the stencil's assembled rows restricted
    /// to `runs` — the bitwise ground truth.
    fn assembled(s: Stencil, runs: &[(u64, u64)]) -> TileKernel<f64> {
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        let mut row = Vec::new();
        for &(lo, hi) in runs {
            for r in lo..hi {
                s.row_entries::<f64>(r, &mut row);
                for &(c, v) in &row {
                    rows.push(r);
                    cols.push(c);
                    vals.push(v);
                }
            }
        }
        TileKernel::lower(&rows, &cols, &vals, KernelChoice::Force(KernelKind::Csr))
    }

    fn check(s: Stencil, runs: Vec<(u64, u64)>) {
        let n = s.unknowns() as usize;
        let tile = StencilTile::<f64>::new(s, runs.clone());
        let csr = assembled(s, &runs);
        assert_eq!(tile.nnz(), csr.nnz(), "nnz mismatch for {s:?}");
        let x = rhs_vector::<f64>(n as u64, 3);
        for transpose in [false, true] {
            let mut want = vec![0.25; n];
            let mut got = vec![0.25; n];
            csr.apply_slices(&x, &mut want, transpose);
            {
                let mut yy = &mut got[..];
                tile.apply(&(&x[..]), &mut yy, transpose);
            }
            assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{s:?} transpose {transpose} differs"
            );
        }
    }

    #[test]
    fn full_operator_matches_csr_all_kinds() {
        for s in [
            Stencil::lap1d(13),
            Stencil::lap2d(7, 5),
            Stencil::lap3d7(4, 3, 5),
            Stencil::lap3d27(3, 4, 3),
        ] {
            let n = s.unknowns();
            check(s, vec![(0, n)]);
        }
    }

    #[test]
    fn partial_runs_straddling_grid_planes() {
        let s = Stencil::lap3d7(4, 4, 4);
        // Runs cutting mid-line, mid-plane, and across the x boundary.
        check(s, vec![(0, 3), (5, 21), (30, 47), (60, 64)]);
        let s2 = Stencil::lap2d(9, 6);
        check(s2, vec![(2, 11), (17, 40), (49, 54)]);
    }

    #[test]
    fn degenerate_extents_take_boundary_path() {
        // Axes of extent 1 or 2 leave no interior rows; everything
        // must flow through the row_entries boundary path and still
        // match bitwise.
        for s in [
            Stencil::lap1d(2),
            Stencil::lap2d(1, 8),
            Stencil::lap2d(8, 2),
            Stencil::lap3d7(2, 5, 1),
            Stencil::lap3d27(1, 3, 3),
        ] {
            let n = s.unknowns();
            check(s, vec![(0, n)]);
        }
    }

    #[test]
    fn empty_runs_are_noops() {
        let s = Stencil::lap2d(5, 5);
        let tile = StencilTile::<f64>::new(s, vec![(3, 3)]);
        assert_eq!(tile.nnz(), 0);
        let x = [1.0; 25];
        let mut y = [7.0; 25];
        {
            let mut yy = &mut y[..];
            tile.apply(&(&x[..]), &mut yy, false);
        }
        assert!(y.iter().all(|&v| v == 7.0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_run_rejected() {
        StencilTile::<f64>::new(Stencil::lap1d(4), vec![(0, 5)]);
    }
}
