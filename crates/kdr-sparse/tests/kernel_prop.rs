//! Property tests for the specialized tile-kernel family.
//!
//! The contract under test is the bitwise-reproducibility invariant
//! from DESIGN.md: every lowering (CSR, DIA, ELL, BCSR) of the same
//! triplets applies each output element's contributions in exactly
//! the reference order — entries sorted by `(row, col)`, accumulated
//! with `mul_add` — in both transpose directions. So all kernels must
//! agree with the reference *to the bit*, not merely to a tolerance,
//! on every structure the generators can produce: random scatter
//! (with duplicates), banded, blocked, uniform-row, empty, singleton.

use kdr_sparse::{KernelChoice, KernelKind, Stencil, StencilTile, TileKernel, TileStructure};
use proptest::prelude::*;

/// The accumulation-order reference every kernel must reproduce
/// bitwise: entries sorted by `(row, col)` (stable), each applied via
/// one `mul_add` into its output slot.
fn reference(rows: &[u64], cols: &[u64], vals: &[f64], x: &[f64], y: &mut [f64], transpose: bool) {
    let mut order: Vec<usize> = (0..rows.len()).collect();
    order.sort_by_key(|&k| (rows[k], cols[k]));
    for &k in &order {
        let (i, j) = if transpose {
            (cols[k] as usize, rows[k] as usize)
        } else {
            (rows[k] as usize, cols[k] as usize)
        };
        y[i] = vals[k].mul_add(x[j], y[i]);
    }
}

/// Lower `(rows, cols, vals)` under every forced kind plus `Auto` and
/// check each against the reference, both directions, bitwise. The
/// destination starts non-zero so kernels that scribbled on rows they
/// do not own would be caught too.
fn check_all_lowerings(rows: &[u64], cols: &[u64], vals: &[f64]) {
    let span = rows
        .iter()
        .chain(cols.iter())
        .copied()
        .max()
        .map_or(1, |m| m as usize + 2);
    let x: Vec<f64> = (0..span).map(|i| 0.25 + 0.5 * i as f64).collect();
    let choices = [
        KernelChoice::Auto,
        KernelChoice::Force(KernelKind::Csr),
        KernelChoice::Force(KernelKind::Dia),
        KernelChoice::Force(KernelKind::Ell),
        KernelChoice::Force(KernelKind::Bcsr),
        // Stencil cannot be lowered from triplets (no geometry to
        // recover); forcing it must fall back to CSR, never guess.
        KernelChoice::Force(KernelKind::Stencil),
    ];
    for transpose in [false, true] {
        let mut want = vec![0.125; span];
        reference(rows, cols, vals, &x, &mut want, transpose);
        let want_bits: Vec<u64> = want.iter().map(|v| v.to_bits()).collect();
        for choice in choices {
            let k = TileKernel::lower(rows, cols, vals, choice);
            assert_eq!(k.nnz(), vals.len(), "{choice:?} lost entries");
            assert_eq!(k.is_empty(), vals.is_empty());
            let mut got = vec![0.125; span];
            k.apply_slices(&x, &mut got, transpose);
            let got_bits: Vec<u64> = got.iter().map(|v| v.to_bits()).collect();
            assert_eq!(
                got_bits,
                want_bits,
                "{:?} (lowered to {:?}) transpose {} diverges from reference order",
                choice,
                k.kind(),
                transpose
            );
        }
    }
}

type Trip = (Vec<u64>, Vec<u64>, Vec<f64>);

/// Random scatter, duplicates allowed (which must force CSR fallback
/// in every lowering).
fn arb_scatter() -> impl Strategy<Value = Trip> {
    (2u64..24, 2u64..24).prop_flat_map(|(nr, nc)| {
        prop::collection::vec((0..nr, 0..nc, -8i32..8), 0..96).prop_map(|es| {
            let mut r = Vec::new();
            let mut c = Vec::new();
            let mut v = Vec::new();
            for (i, j, q) in es {
                r.push(i);
                c.push(j);
                v.push(q as f64 * 0.375 + 0.0625);
            }
            (r, c, v)
        })
    })
}

/// Banded structure: a few diagonals of a (possibly offset) square
/// tile, each diagonal fully or partially populated. Auto-selection
/// should usually pick DIA here.
fn arb_banded() -> impl Strategy<Value = Trip> {
    (
        4u64..32,
        0u64..64,
        prop::collection::vec(-6i64..6, 1..5),
        0u64..4,
    )
        .prop_map(|(n, base, offsets, skip)| {
            let mut offs = offsets;
            offs.sort_unstable();
            offs.dedup();
            let mut r = Vec::new();
            let mut c = Vec::new();
            let mut v = Vec::new();
            for (oi, &d) in offs.iter().enumerate() {
                for i in 0..n {
                    let j = i as i64 + d;
                    if j < 0 || j as u64 >= n {
                        continue;
                    }
                    // Punch a periodic hole in one diagonal so partial
                    // fills and short runs get exercised.
                    if oi == 0 && skip > 0 && i % (skip + 3) == 0 {
                        continue;
                    }
                    r.push(base + i);
                    c.push(base + j as u64);
                    v.push(1.0 + 0.125 * i as f64 + d as f64);
                }
            }
            (r, c, v)
        })
}

/// Block structure: a random subset of an aligned block grid, every
/// chosen block fully dense. Auto-selection should pick BCSR.
fn arb_blocked() -> impl Strategy<Value = Trip> {
    let block_size = prop_oneof![Just(2u64), Just(4u64), Just(8u64)];
    (block_size, 1u64..5, 1u64..5).prop_flat_map(|(bs, gr, gc)| {
        prop::collection::vec((0..gr, 0..gc), 1..6).prop_map(move |blocks| {
            let mut picked = blocks;
            picked.sort_unstable();
            picked.dedup();
            let mut r = Vec::new();
            let mut c = Vec::new();
            let mut v = Vec::new();
            for &(bi, bj) in &picked {
                for i in 0..bs {
                    for j in 0..bs {
                        r.push(bi * bs + i);
                        c.push(bj * bs + j);
                        v.push(0.5 + (i * bs + j + bi + 2 * bj) as f64 * 0.25);
                    }
                }
            }
            (r, c, v)
        })
    })
}

/// Uniform short rows over a wide column space: ELL territory.
fn arb_uniform_rows() -> impl Strategy<Value = Trip> {
    (2u64..24, 1u64..6, 24u64..64).prop_map(|(nr, w, nc)| {
        let mut r = Vec::new();
        let mut c = Vec::new();
        let mut v = Vec::new();
        for i in 0..nr {
            for k in 0..w {
                r.push(i);
                c.push((i * 7 + k * 11) % nc);
                v.push(1.0 + (i + k) as f64 * 0.5);
            }
        }
        (r, c, v)
    })
}

/// A random stencil descriptor (all four paper kinds, degenerate
/// extents included) plus random ascending, disjoint row runs whose
/// boundaries deliberately straddle grid lines and planes.
fn arb_stencil_tile() -> impl Strategy<Value = (Stencil, Vec<(u64, u64)>)> {
    (0usize..4, 1u64..7, 1u64..7, 1u64..7).prop_flat_map(|(kind, a, b, c)| {
        let s = match kind {
            0 => Stencil::lap1d(a * b * c),
            1 => Stencil::lap2d(a * b, c),
            2 => Stencil::lap3d7(a, b, c),
            _ => Stencil::lap3d27(a, b, c),
        };
        let n = s.unknowns();
        prop::collection::vec((0..n, 1u64..24), 0..4).prop_map(move |seed| {
            let mut runs: Vec<(u64, u64)> =
                seed.into_iter().map(|(lo, len)| (lo, (lo + len).min(n))).collect();
            runs.sort_unstable();
            let mut rows: Vec<(u64, u64)> = Vec::new();
            for (lo, hi) in runs {
                let lo = rows.last().map_or(lo, |&(_, prev_hi)| lo.max(prev_hi));
                if lo < hi {
                    rows.push((lo, hi));
                }
            }
            (s, rows)
        })
    })
}

/// Bitwise-check a [`StencilTile`] against the forced-CSR lowering of
/// the same rows' generated entries, both directions.
fn check_stencil_tile(s: Stencil, rows: &[(u64, u64)]) {
    let n = s.unknowns() as usize;
    let mut tr = Vec::new();
    let mut tc = Vec::new();
    let mut tv = Vec::new();
    let mut scratch: Vec<(u64, f64)> = Vec::new();
    for &(lo, hi) in rows {
        for r in lo..hi {
            s.row_entries(r, &mut scratch);
            for &(col, val) in &scratch {
                tr.push(r);
                tc.push(col);
                tv.push(val);
            }
        }
    }
    let csr = TileKernel::lower(&tr, &tc, &tv, KernelChoice::Force(KernelKind::Csr));
    let matfree = TileKernel::Stencil(StencilTile::new(s, rows.to_vec()));
    assert_eq!(matfree.nnz(), tv.len(), "descriptor nnz disagrees with generator");
    let x: Vec<f64> = (0..n).map(|i| 0.25 + 0.5 * i as f64).collect();
    for transpose in [false, true] {
        let mut want = vec![0.125; n];
        let mut got = vec![0.125; n];
        csr.apply_slices(&x, &mut want, transpose);
        matfree.apply_slices(&x, &mut got, transpose);
        let want_bits: Vec<u64> = want.iter().map(|v| v.to_bits()).collect();
        let got_bits: Vec<u64> = got.iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            got_bits, want_bits,
            "{s:?} rows {rows:?} transpose {transpose}: matrix-free diverges from CSR"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_scatter_all_lowerings_bitwise_match((r, c, v) in arb_scatter()) {
        check_all_lowerings(&r, &c, &v);
    }

    #[test]
    fn banded_all_lowerings_bitwise_match((r, c, v) in arb_banded()) {
        check_all_lowerings(&r, &c, &v);
        let s = TileStructure::analyze(&r, &c, &v);
        prop_assert!(!s.has_duplicates);
        // The generator emits at most 5 distinct diagonals.
        prop_assert!(s.diag_count <= 5, "diag_count {}", s.diag_count);
    }

    #[test]
    fn blocked_all_lowerings_bitwise_match((r, c, v) in arb_blocked()) {
        check_all_lowerings(&r, &c, &v);
        let s = TileStructure::analyze(&r, &c, &v);
        prop_assert!(s.dense_block.is_some(), "dense blocks not detected");
        prop_assert_eq!(s.select(), KernelKind::Bcsr);
    }

    #[test]
    fn uniform_rows_all_lowerings_bitwise_match((r, c, v) in arb_uniform_rows()) {
        check_all_lowerings(&r, &c, &v);
        let s = TileStructure::analyze(&r, &c, &v);
        prop_assert_eq!(s.row_len_variance, 0.0);
    }

    #[test]
    fn stencil_tile_matches_csr_bitwise((s, rows) in arb_stencil_tile()) {
        check_stencil_tile(s, &rows);
    }

    #[test]
    fn auto_agrees_with_structure_selection((r, c, v) in arb_scatter()) {
        let k = TileKernel::lower(&r, &c, &v, KernelChoice::Auto);
        if v.is_empty() {
            prop_assert!(k.is_empty());
        } else {
            prop_assert_eq!(k.kind(), Some(TileStructure::analyze(&r, &c, &v).select()));
        }
    }
}

// ----- deterministic edge cases -------------------------------------

#[test]
fn empty_tile_is_empty_under_every_choice() {
    for choice in [
        KernelChoice::Auto,
        KernelChoice::Force(KernelKind::Csr),
        KernelChoice::Force(KernelKind::Dia),
        KernelChoice::Force(KernelKind::Ell),
        KernelChoice::Force(KernelKind::Bcsr),
        KernelChoice::Force(KernelKind::Stencil),
    ] {
        let k = TileKernel::<f64>::lower(&[], &[], &[], choice);
        assert!(k.is_empty());
        assert_eq!(k.kind(), None);
        // Applying an empty kernel must not touch the destination.
        let x = [1.0, 2.0];
        let mut y = [3.0, 4.0];
        k.apply_slices(&x, &mut y, false);
        k.apply_slices(&x, &mut y, true);
        assert_eq!(y, [3.0, 4.0]);
    }
}

#[test]
fn singleton_tile_matches_everywhere() {
    // One entry far from the origin: exercises row-offset handling in
    // every format (DIA gets a single one-element diagonal, BCSR a
    // padded-fallback, ELL width 1).
    check_all_lowerings(&[41], &[37], &[2.5]);
}

#[test]
fn full_dense_band_matches_everywhere() {
    // A single completely dense diagonal: the DIA fast path with one
    // run covering the whole tile.
    let n = 48u64;
    let r: Vec<u64> = (0..n).collect();
    let c: Vec<u64> = (0..n).collect();
    let v: Vec<f64> = (0..n).map(|i| 1.0 + 0.5 * i as f64).collect();
    let s = TileStructure::analyze(&r, &c, &v);
    assert_eq!(s.diag_count, 1);
    assert_eq!(s.select(), KernelKind::Dia);
    check_all_lowerings(&r, &c, &v);
}

#[test]
fn signed_zero_products_stay_bitwise_identical() {
    // -0.0 entries and cancellations: any kernel that multiplied its
    // structural padding (instead of skipping it) would flip a -0.0
    // to +0.0 somewhere in here.
    let r = vec![0, 0, 1, 2, 2];
    let c = vec![0, 2, 1, 0, 2];
    let v = vec![-0.0, 1.0, -0.0, -1.0, 1.0];
    check_all_lowerings(&r, &c, &v);
}
