//! Property tests: every storage format defines the same linear
//! operator, its relations agree with its entries, and partitioned
//! kernels compose to the whole product.

use kdr_sparse::convert;
use kdr_sparse::{Csr, SparseMatrix, Triples};
use proptest::prelude::*;

const MAX_DIM: u64 = 12;

/// Strategy: a random matrix shape plus entries (duplicates allowed).
fn arb_triples() -> impl Strategy<Value = Triples<f64>> {
    (2..MAX_DIM, 2..MAX_DIM).prop_flat_map(|(rows, cols)| {
        prop::collection::vec((0..rows, 0..cols, -4i32..4), 1..40).prop_map(move |entries| {
            Triples::from_entries(
                rows,
                cols,
                entries
                    .into_iter()
                    .map(|(i, j, v)| (i, j, v as f64 * 0.5))
                    .collect(),
            )
        })
    })
}

fn arb_vec(len: usize) -> Vec<f64> {
    (0..len)
        .map(|i| ((i * 37 + 11) % 17) as f64 - 8.0)
        .collect()
}

fn all_formats(t: &Triples<f64>) -> Vec<(&'static str, Box<dyn SparseMatrix<f64>>)> {
    let base: Csr<f64, u32> = Csr::from_triples(t.clone());
    let mut out: Vec<(&'static str, Box<dyn SparseMatrix<f64>>)> = vec![
        ("csc", Box::new(convert::to_csc::<f64, u32>(&base))),
        ("coo", Box::new(convert::to_coo::<f64, u64>(&base))),
        ("coo_aos", Box::new(convert::to_coo_aos::<f64, u32>(&base))),
        ("ell", Box::new(convert::to_ell::<f64, u32>(&base))),
        ("ellt", Box::new(convert::to_ellt::<f64, u32>(&base))),
        ("dia", Box::new(convert::to_dia::<f64>(&base))),
        ("hyb", Box::new(convert::to_hyb::<f64, u32>(&base))),
        ("dense", Box::new(convert::to_dense::<f64>(&base))),
    ];
    // Block formats need aligned dimensions; use 1xN and Nx1 blocks
    // that always divide, plus 2x2 when aligned.
    if t.rows() % 2 == 0 && t.cols() % 2 == 0 {
        out.push(("bcsr", Box::new(convert::to_bcsr::<f64, u32>(&base, 2, 2))));
        out.push(("bcsc", Box::new(convert::to_bcsc::<f64, u32>(&base, 2, 2))));
    }
    out.push(("bcsr1", Box::new(convert::to_bcsr::<f64, u64>(&base, 1, 1))));
    out.push(("csr", Box::new(base)));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn formats_agree_on_spmv(t in arb_triples()) {
        let t = t.canonicalize();
        let x = arb_vec(t.cols() as usize);
        let expect = t.dense_apply(&x);
        for (name, m) in all_formats(&t) {
            let mut y = vec![0.0; t.rows() as usize];
            m.spmv(&x, &mut y);
            for i in 0..y.len() {
                prop_assert!((y[i] - expect[i]).abs() < 1e-10, "{name} row {i}: {} vs {}", y[i], expect[i]);
            }
        }
    }

    #[test]
    fn formats_agree_on_adjoint(t in arb_triples()) {
        let t = t.canonicalize();
        let x = arb_vec(t.rows() as usize);
        let expect = t.dense_apply_transpose(&x);
        for (name, m) in all_formats(&t) {
            let mut y = vec![0.0; t.cols() as usize];
            m.spmv_transpose(&x, &mut y);
            for j in 0..y.len() {
                prop_assert!((y[j] - expect[j]).abs() < 1e-10, "{name} col {j}");
            }
        }
    }

    #[test]
    fn piece_kernels_sum_to_whole(t in arb_triples(), pieces in 1usize..6) {
        let t = t.canonicalize();
        let x = arb_vec(t.cols() as usize);
        for (name, m) in all_formats(&t) {
            let mut whole = vec![0.0; t.rows() as usize];
            m.spmv(&x, &mut whole);
            let mut acc = vec![0.0; t.rows() as usize];
            for p in m.kernel_space().all().split_equal(pieces) {
                m.spmv_add_piece(&p, &x, &mut acc);
            }
            for i in 0..acc.len() {
                prop_assert!((acc[i] - whole[i]).abs() < 1e-10, "{name} row {i}");
            }
        }
    }

    #[test]
    fn relations_contain_every_entry(t in arb_triples()) {
        let t = t.canonicalize();
        for (name, m) in all_formats(&t) {
            let row = m.row_relation();
            let col = m.col_relation();
            prop_assert_eq!(row.source_size(), m.kernel_space().size(), "{} row source", name);
            prop_assert_eq!(col.source_size(), m.kernel_space().size(), "{} col source", name);
            prop_assert_eq!(row.target_size(), m.range_space().size(), "{} row target", name);
            prop_assert_eq!(col.target_size(), m.domain_space().size(), "{} col target", name);
            let mut ok = true;
            m.for_each_entry(&mut |k, i, j, _| {
                let mut r = Vec::new();
                row.targets_of(k, &mut r);
                let mut c = Vec::new();
                col.targets_of(k, &mut c);
                // Block formats relate kernel points at block
                // granularity, so we check containment, not equality.
                ok &= r.contains(&i) && c.contains(&j);
            });
            prop_assert!(ok, "{name} relation does not cover its entries");
        }
    }

    #[test]
    fn to_triples_roundtrip_preserves_operator(t in arb_triples()) {
        let t = t.canonicalize();
        let x = arb_vec(t.cols() as usize);
        let expect = t.dense_apply(&x);
        for (name, m) in all_formats(&t) {
            let back: Csr<f64> = Csr::from_triples(m.to_triples());
            let mut y = vec![0.0; t.rows() as usize];
            back.spmv(&x, &mut y);
            for i in 0..y.len() {
                prop_assert!((y[i] - expect[i]).abs() < 1e-10, "{name} roundtrip row {i}");
            }
        }
    }

    #[test]
    fn diagonal_matches_reference(t in arb_triples()) {
        let t = t.canonicalize();
        let n = t.rows().min(t.cols());
        // Make it square by truncation for the diagonal test.
        let sq = t.sub_block(0, n, 0, n);
        let m: Csr<f64> = Csr::from_triples(sq.clone());
        let diag = m.diagonal();
        for i in 0..n {
            let expect: f64 = sq
                .entries()
                .iter()
                .filter(|&&(r, c, _)| r == i && c == i)
                .map(|&(_, _, v)| v)
                .sum();
            prop_assert!((diag[i as usize] - expect).abs() < 1e-12);
        }
    }
}
