#!/usr/bin/env bash
# Tier-1 gate: build, test, lint. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo test --doc -q
cargo clippy --all-targets -- -D warnings

# Kernel-dispatch benchmark: regenerates BENCH_spmv.json (kernel x
# structure grid vs. the forced-CSR baseline) and asserts bitwise
# agreement between every specialized kernel and the CSR lowering.
cargo run --release -p kdr-bench --bin spmv_kernels
