#!/usr/bin/env bash
# Tier-1 gate: build, test, lint. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo test --doc -q
cargo clippy --all-targets -- -D warnings

# Documentation gate: every public item documented (missing_docs is
# warn at the crate level, promoted to an error here) and no broken
# intra-doc links anywhere in the workspace.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

# Fault-injection matrix, as an explicit leg so a fault-path
# regression fails loudly on its own: panic isolation, deterministic
# injection, breakdown detection, checkpoint/restart. The dev profile
# keeps debug assertions (buffer disjointness, poison bookkeeping)
# armed on these paths; the release leg re-runs the same matrix under
# optimized codegen.
cargo test -q -p kdr-core --test fault_tolerance
cargo test -q -p kdr-runtime -- fault poison panic
cargo test -q --release -p kdr-core --test fault_tolerance

# Kernel-dispatch benchmark: regenerates BENCH_spmv.json (kernel x
# structure grid vs. the forced-CSR baseline, plus the matrix-free
# stencil legs) and asserts bitwise agreement between every
# specialized kernel and the CSR lowering. `--ci` arms the regression
# gates: auto-selection within 1% of forced CSR on random_scatter,
# matrix-free >= 1.5x assembled-auto on the large 3D grid, zero
# stored operator value bytes for stencil-described registration, a
# matrix-free CG residual history bitwise identical to assembled, and
# the catalogue-advised arm (a cost-catalogue snapshot fed the
# measured per-kernel latencies) never slower than the structure
# heuristic beyond noise (<= 1.05x) on any workload.
cargo run --release -p kdr-bench --bin spmv_kernels -- --ci

# Multi-tenant service leg (dev profile): 16 tenants over one shared
# runtime with the seeded scheduler, asserting zero lost and zero
# duplicated responses, fairness (max/min completed-iteration ratio
# <= 2.0 at equal weights), warm-beats-cold time-to-first-iteration,
# and a bit-identical completion order on a same-seed rerun.
cargo run -p kdr-bench --bin service_stress -- --ci

# Sharded-service leg (dev profile): 16 tenants across 4 shard
# runtimes behind one front door, fixed-budget jobs, asserting zero
# lost and zero duplicated jobs, exact iteration budgets, per-shard
# fairness <= 1.05 over a continuously-runnable window, and a
# bit-identical fleet-wide response fingerprint on a same-seed rerun.
cargo run -p kdr-bench --bin service_stress -- --ci-sharded

# Service chaos leg: the sharded fleet under seeded per-shard fault
# plans (injected task panics, watchdog stalls, silent NaN write
# corruption) plus one forced shard kill mid-solve. Asserts the
# supervisor's recovery contracts — zero lost and zero duplicated
# jobs, bounded retry, and delivered (iterations, residual-history)
# pairs bitwise identical to the fault-free oracle run. The dev leg
# keeps debug assertions armed on the evacuation/resubmission paths;
# the release leg re-runs the same matrix under optimized codegen.
cargo run -p kdr-bench --bin service_stress -- --ci-chaos
cargo run --release -p kdr-bench --bin service_stress -- --ci-chaos

# Warm-restart (store) leg: a cold fleet with a fresh cost catalogue
# runs one batch, persists its durable state (`save_store`), and a
# second fleet reopens the file (`open_store`) and runs the next
# batch. Asserts every restored session's first job starts warm,
# store-warm time-to-first-iteration beats cold by >= 2x (the
# persisted plans + pinned kernels skip the lowering/analysis
# prologue), and the reopened fleet's residual histories are bitwise
# identical to the uninterrupted oracle's — the store round-trip may
# cost time, never bits. Corrupt/truncated store files are covered by
# `kdr-store` property tests and `kdr-service` integration tests in
# the `cargo test` leg above.
cargo run -p kdr-bench --bin service_stress -- --ci-store

# Fence-minimal Krylov leg: asserts classic CG spends exactly 2
# reduction stages per iteration, the fused/pipelined variants
# exactly 1, and that every fence-minimal variant converges to the
# classic-CG solution. Structural contracts only — no timing
# assertions in CI.
cargo run --release -p kdr-bench --bin pipelined_bench -- --ci
