//! Integration tests for the simulation path: the same solver code
//! must drive both backends, and the simulated execution models must
//! show the paper's qualitative behaviors.

use std::sync::Arc;

use kdr_baselines::{build_iteration_graph, per_iteration_seconds, KsmKind, LibraryProfile};
use kdr_core::simbackend::SimBackend;
use kdr_core::solvers::{BiCgStabSolver, CgSolver, GmresSolver, Solver};
use kdr_core::{solve, ExecBackend, Planner, SolveControl, StepOutcome, SOL};
use kdr_index::Partition;
use kdr_machine::{simulate, MachineConfig};
use kdr_sparse::stencil::rhs_vector;
use kdr_sparse::{SparseMatrix, Stencil, StencilOperator};

/// The identical solver type runs on the simulation backend without
/// modification (the backend split is invisible to solvers).
#[test]
fn same_solver_code_runs_on_sim_backend() {
    let s = Stencil::lap2d(1 << 8, 1 << 8);
    let n = s.unknowns();
    let op: Arc<dyn SparseMatrix<f64>> = Arc::new(StencilOperator::<f64>::new(s));
    let machine = MachineConfig::lassen(4).legion_profile();
    let mut planner = Planner::new(Box::new(SimBackend::<f64>::new(machine.clone())));
    let part = Partition::equal_blocks(n, 16);
    let d = planner.add_sol_vector(n, Some(part.clone()));
    let r = planner.add_rhs_vector(n, Some(part));
    planner.add_operator(op, d, r);
    let mut solver = CgSolver::new(&mut planner);
    for _ in 0..3 {
        solver.step(&mut planner);
    }
    drop(solver);
    let graph = planner.with_backend(|b| {
        b.as_any()
            .downcast_mut::<SimBackend<f64>>()
            .unwrap()
            .take_graph()
            .0
    });
    assert!(graph.len() > 100, "three CG iterations must emit real work");
    let result = simulate(&graph, &machine, None);
    assert!(result.makespan > 0.0);
    assert!(result.utilization() > 0.1);
}

/// Simulated per-iteration time grows roughly linearly in problem
/// size once out of the overhead regime (bandwidth-bound scaling).
#[test]
fn per_iteration_time_scales_linearly_at_large_sizes() {
    let t26 = per_iteration_seconds(
        Stencil::lap2d(1 << 14, 1 << 14),
        KsmKind::Cg,
        64,
        LibraryProfile::LegionSolvers,
        16,
        2,
        3,
    );
    let t28 = per_iteration_seconds(
        Stencil::lap2d(1 << 15, 1 << 15),
        KsmKind::Cg,
        64,
        LibraryProfile::LegionSolvers,
        16,
        2,
        3,
    );
    let ratio = t28 / t26;
    assert!(
        (3.0..5.0).contains(&ratio),
        "4x problem should be ~4x slower, got {ratio}"
    );
}

/// The bulk-synchronous execution model emits strictly more
/// synchronization than the task-oriented one, and never finishes
/// faster on identical work.
#[test]
fn bulk_sync_never_beats_task_oriented_on_identical_profiles() {
    // Same machine profile for both, so only the execution model
    // differs.
    let s = Stencil::lap2d(1 << 12, 1 << 12);
    let machine = MachineConfig::lassen(4).legion_profile();
    let build = |bulk: bool| {
        let n = s.unknowns();
        let op: Arc<dyn SparseMatrix<f64>> = Arc::new(StencilOperator::<f64>::new(s));
        let mut backend = SimBackend::<f64>::new(machine.clone());
        if bulk {
            backend = backend.bulk_synchronous();
        }
        let mut planner = Planner::new(Box::new(backend));
        let part = Partition::equal_blocks(n, 16);
        let d = planner.add_sol_vector(n, Some(part.clone()));
        let r = planner.add_rhs_vector(n, Some(part));
        planner.add_operator(op, d, r);
        let mut solver = CgSolver::new(&mut planner);
        for _ in 0..4 {
            solver.step(&mut planner);
        }
        drop(solver);
        planner.with_backend(|b| {
            b.as_any()
                .downcast_mut::<SimBackend<f64>>()
                .unwrap()
                .take_graph()
                .0
        })
    };
    let t_async = simulate(&build(false), &machine, None).makespan;
    let t_sync = simulate(&build(true), &machine, None).makespan;
    assert!(
        t_sync >= t_async,
        "barriers cannot make identical work faster: {t_sync} vs {t_async}"
    );
}

/// GMRES graphs grow within a restart cycle (more dots per Arnoldi
/// step) — sanity on the simulated op stream.
#[test]
fn gmres_graph_structure() {
    let g5 = build_iteration_graph(
        Stencil::lap2d(1 << 6, 1 << 6),
        KsmKind::Gmres,
        8,
        LibraryProfile::LegionSolvers,
        2,
        5,
    );
    let g10 = build_iteration_graph(
        Stencil::lap2d(1 << 6, 1 << 6),
        KsmKind::Gmres,
        8,
        LibraryProfile::LegionSolvers,
        2,
        10,
    );
    // The second five Arnoldi steps orthogonalize against more basis
    // vectors, so the graph more than doubles.
    assert!(g10.len() > 2 * g5.len());
}

// ----- Traced-stepping consistency ----------------------------------
//
// The execution backend's traced fast path replays memoized
// dependence graphs for repeated iteration shapes. These tests pin
// the contract: replay changes *when analysis happens*, never *what
// executes* — residual sequences must be bitwise identical.

fn exec_planner(s: Stencil, pieces: usize, traced: bool) -> Planner<f64> {
    let n = s.unknowns();
    let m: Arc<dyn SparseMatrix<f64>> = Arc::new(s.to_csr::<f64, u64>());
    let mut backend = ExecBackend::<f64>::new(4);
    backend.set_tracing(traced);
    let mut planner = Planner::new(Box::new(backend));
    let part = Partition::equal_blocks(n, pieces);
    let d = planner.add_sol_vector(n, Some(part.clone()));
    let r = planner.add_rhs_vector(n, Some(part));
    planner.add_operator(m, d, r);
    planner.set_rhs_data(r, &rhs_vector::<f64>(n, 11));
    planner
}

/// Per-iteration residual bits plus step outcomes for a solver run
/// driven through the step_begin/step_end bracket.
fn residual_bits(
    planner: &mut Planner<f64>,
    solver: &mut dyn Solver<f64>,
    steps: usize,
) -> (Vec<u64>, Vec<StepOutcome>) {
    let mut bits = Vec::new();
    let mut outcomes = Vec::new();
    for _ in 0..steps {
        planner.step_begin();
        solver.step(planner);
        outcomes.push(planner.step_end());
        let m = solver.convergence_measure().expect("measure");
        bits.push(m.get().to_bits());
    }
    (bits, outcomes)
}

/// Replayed CG produces the *bitwise identical* residual sequence of
/// the analyzed run: tracing memoizes analysis, not arithmetic.
#[test]
fn traced_cg_residuals_bitwise_match_analyzed() {
    let s = Stencil::lap2d(24, 24);
    let steps = 30;
    let run = |traced: bool| {
        let mut planner = exec_planner(s, 4, traced);
        let mut solver = CgSolver::new(&mut planner);
        let out = residual_bits(&mut planner, &mut solver, steps);
        drop(solver);
        let stats = planner.with_backend(|b| {
            b.as_any()
                .downcast_mut::<ExecBackend<f64>>()
                .unwrap()
                .metrics()
                .runtime
        });
        (out, stats)
    };
    let ((bits_a, outcomes_a), stats_a) = run(false);
    let ((bits_t, outcomes_t), stats_t) = run(true);
    assert_eq!(bits_a, bits_t, "replay must not change a single bit");
    assert!(outcomes_a.iter().all(|&o| o == StepOutcome::Analyzed));
    // After warmup (slot-cycle variants get captured once each), every
    // CG step replays.
    let replayed = outcomes_t
        .iter()
        .filter(|&&o| o == StepOutcome::Replayed)
        .count();
    assert!(
        replayed >= steps - 4,
        "expected steady-state replay, outcomes: {outcomes_t:?}"
    );
    assert_eq!(stats_a.tasks_replayed, 0);
    assert!(stats_t.tasks_replayed > 0, "no tasks replayed");
    assert!(
        stats_t.tasks_analyzed < stats_a.tasks_analyzed,
        "tracing must shrink analyzed-task count: {} vs {}",
        stats_t.tasks_analyzed,
        stats_a.tasks_analyzed
    );
}

/// Once the step shape stabilizes, the analyzed-task counter stays
/// flat across iterations: traced steps skip dependence analysis
/// entirely.
#[test]
fn traced_cg_analysis_count_is_flat_in_steady_state() {
    let s = Stencil::lap2d(24, 24);
    let mut planner = exec_planner(s, 4, true);
    let mut solver = CgSolver::new(&mut planner);
    let mut analyzed_after = Vec::new();
    for _ in 0..12 {
        planner.step_begin();
        solver.step(&mut planner);
        planner.step_end();
        analyzed_after.push(planner.with_backend(|b| {
            b.as_any()
                .downcast_mut::<ExecBackend<f64>>()
                .unwrap()
                .metrics()
                .runtime
                .tasks_analyzed
        }));
    }
    drop(solver);
    // Steps 3.. must not add analyzed tasks (steps 1–2 capture the
    // scalar-slot cycle's two shape variants).
    for w in analyzed_after[2..].windows(2) {
        assert_eq!(
            w[0], w[1],
            "analysis ran in steady state: {analyzed_after:?}"
        );
    }
}

/// BiCGStab (two applies, four dots, forcing-free steps) also replays
/// bitwise identically.
#[test]
fn traced_bicgstab_residuals_bitwise_match_analyzed() {
    let s = Stencil::lap2d(20, 20);
    let steps = 25;
    let run = |traced: bool| {
        let mut planner = exec_planner(s, 4, traced);
        let mut solver = BiCgStabSolver::new(&mut planner);
        residual_bits(&mut planner, &mut solver, steps)
    };
    let (bits_a, _) = run(false);
    let (bits_t, outcomes_t) = run(true);
    assert_eq!(bits_a, bits_t, "replay must not change a single bit");
    assert!(
        outcomes_t.contains(&StepOutcome::Replayed),
        "outcomes: {outcomes_t:?}"
    );
}

/// GMRES's step shape grows within a restart cycle, so most steps
/// cannot replay — the fallback to analyzed submission must keep the
/// solver exactly correct.
#[test]
fn gmres_shape_changes_fall_back_to_analyzed_and_stay_correct() {
    let s = Stencil::lap2d(16, 16);
    let run = |traced: bool| {
        let mut planner = exec_planner(s, 4, traced);
        let mut solver = GmresSolver::with_restart(&mut planner, 10);
        let report = solve(
            &mut planner,
            &mut solver,
            SolveControl::to_tolerance(1e-10, 2_000),
        )
        .expect("solve failed");
        assert!(report.converged);
        planner.read_component(SOL, 0)
    };
    let x_analyzed = run(false);
    let x_traced = run(true);
    for (a, t) in x_analyzed.iter().zip(&x_traced) {
        assert_eq!(a.to_bits(), t.to_bits(), "solutions must be identical");
    }
}

/// The scalar slot arena is bounded by peak liveness, not iteration
/// count: 1,000 CG steps must not grow it (the seed leaked one slot
/// per scalar op forever).
#[test]
fn scalar_arena_stays_bounded_over_thousand_steps() {
    let s = Stencil::lap2d(12, 12);
    let mut planner = exec_planner(s, 2, true);
    let mut solver = CgSolver::new(&mut planner);
    let slots = |p: &mut Planner<f64>| {
        p.with_backend(|b| {
            b.as_any()
                .downcast_mut::<ExecBackend<f64>>()
                .unwrap()
                .scalar_slots()
        })
    };
    // Warm up, then the arena must stop growing entirely.
    for _ in 0..10 {
        planner.step_begin();
        solver.step(&mut planner);
        planner.step_end();
    }
    let after_warmup = slots(&mut planner);
    for _ in 0..990 {
        planner.step_begin();
        solver.step(&mut planner);
        planner.step_end();
    }
    planner.fence();
    let after = slots(&mut planner);
    assert_eq!(
        after_warmup, after,
        "scalar arena grew from {after_warmup} to {after} over 1,000 steps"
    );
    assert!(after < 32, "arena unexpectedly large: {after}");
    drop(solver);
}

/// The Trilinos profile prices identical graphs higher than PETSc
/// (kernel-efficiency derating), for any stencil.
#[test]
fn trilinos_never_faster_than_petsc() {
    for kind in [
        kdr_sparse::StencilKind::Lap2D5,
        kdr_sparse::StencilKind::Lap3D7,
    ] {
        let s = if kind == kdr_sparse::StencilKind::Lap2D5 {
            Stencil::lap2d(1 << 11, 1 << 11)
        } else {
            Stencil::lap3d7(1 << 8, 1 << 7, 1 << 7)
        };
        let t_pet = per_iteration_seconds(s, KsmKind::BiCgStab, 16, LibraryProfile::Petsc, 4, 2, 3);
        let t_tri =
            per_iteration_seconds(s, KsmKind::BiCgStab, 16, LibraryProfile::Trilinos, 4, 2, 3);
        assert!(t_tri >= t_pet, "{kind:?}: {t_tri} vs {t_pet}");
    }
}
