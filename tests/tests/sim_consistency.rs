//! Integration tests for the simulation path: the same solver code
//! must drive both backends, and the simulated execution models must
//! show the paper's qualitative behaviors.

use std::sync::Arc;

use kdr_baselines::{build_iteration_graph, per_iteration_seconds, KsmKind, LibraryProfile};
use kdr_core::simbackend::SimBackend;
use kdr_core::solvers::{CgSolver, Solver};
use kdr_core::Planner;
use kdr_index::Partition;
use kdr_machine::{simulate, MachineConfig};
use kdr_sparse::{SparseMatrix, Stencil, StencilOperator};

/// The identical solver type runs on the simulation backend without
/// modification (the backend split is invisible to solvers).
#[test]
fn same_solver_code_runs_on_sim_backend() {
    let s = Stencil::lap2d(1 << 8, 1 << 8);
    let n = s.unknowns();
    let op: Arc<dyn SparseMatrix<f64>> = Arc::new(StencilOperator::<f64>::new(s));
    let machine = MachineConfig::lassen(4).legion_profile();
    let mut planner = Planner::new(Box::new(SimBackend::<f64>::new(machine.clone())));
    let part = Partition::equal_blocks(n, 16);
    let d = planner.add_sol_vector(n, Some(part.clone()));
    let r = planner.add_rhs_vector(n, Some(part));
    planner.add_operator(op, d, r);
    let mut solver = CgSolver::new(&mut planner);
    for _ in 0..3 {
        solver.step(&mut planner);
    }
    drop(solver);
    let graph = planner.with_backend(|b| {
        b.as_any()
            .downcast_mut::<SimBackend<f64>>()
            .unwrap()
            .take_graph()
            .0
    });
    assert!(graph.len() > 100, "three CG iterations must emit real work");
    let result = simulate(&graph, &machine, None);
    assert!(result.makespan > 0.0);
    assert!(result.utilization() > 0.1);
}

/// Simulated per-iteration time grows roughly linearly in problem
/// size once out of the overhead regime (bandwidth-bound scaling).
#[test]
fn per_iteration_time_scales_linearly_at_large_sizes() {
    let t26 = per_iteration_seconds(
        Stencil::lap2d(1 << 14, 1 << 14),
        KsmKind::Cg,
        64,
        LibraryProfile::LegionSolvers,
        16,
        2,
        3,
    );
    let t28 = per_iteration_seconds(
        Stencil::lap2d(1 << 15, 1 << 15),
        KsmKind::Cg,
        64,
        LibraryProfile::LegionSolvers,
        16,
        2,
        3,
    );
    let ratio = t28 / t26;
    assert!(
        (3.0..5.0).contains(&ratio),
        "4x problem should be ~4x slower, got {ratio}"
    );
}

/// The bulk-synchronous execution model emits strictly more
/// synchronization than the task-oriented one, and never finishes
/// faster on identical work.
#[test]
fn bulk_sync_never_beats_task_oriented_on_identical_profiles() {
    // Same machine profile for both, so only the execution model
    // differs.
    let s = Stencil::lap2d(1 << 12, 1 << 12);
    let machine = MachineConfig::lassen(4).legion_profile();
    let build = |bulk: bool| {
        let n = s.unknowns();
        let op: Arc<dyn SparseMatrix<f64>> = Arc::new(StencilOperator::<f64>::new(s));
        let mut backend = SimBackend::<f64>::new(machine.clone());
        if bulk {
            backend = backend.bulk_synchronous();
        }
        let mut planner = Planner::new(Box::new(backend));
        let part = Partition::equal_blocks(n, 16);
        let d = planner.add_sol_vector(n, Some(part.clone()));
        let r = planner.add_rhs_vector(n, Some(part));
        planner.add_operator(op, d, r);
        let mut solver = CgSolver::new(&mut planner);
        for _ in 0..4 {
            solver.step(&mut planner);
        }
        drop(solver);
        planner.with_backend(|b| {
            b.as_any()
                .downcast_mut::<SimBackend<f64>>()
                .unwrap()
                .take_graph()
                .0
        })
    };
    let t_async = simulate(&build(false), &machine, None).makespan;
    let t_sync = simulate(&build(true), &machine, None).makespan;
    assert!(
        t_sync >= t_async,
        "barriers cannot make identical work faster: {t_sync} vs {t_async}"
    );
}

/// GMRES graphs grow within a restart cycle (more dots per Arnoldi
/// step) — sanity on the simulated op stream.
#[test]
fn gmres_graph_structure() {
    let g5 = build_iteration_graph(
        Stencil::lap2d(1 << 6, 1 << 6),
        KsmKind::Gmres,
        8,
        LibraryProfile::LegionSolvers,
        2,
        5,
    );
    let g10 = build_iteration_graph(
        Stencil::lap2d(1 << 6, 1 << 6),
        KsmKind::Gmres,
        8,
        LibraryProfile::LegionSolvers,
        2,
        10,
    );
    // The second five Arnoldi steps orthogonalize against more basis
    // vectors, so the graph more than doubles.
    assert!(g10.len() > 2 * g5.len());
}

/// The Trilinos profile prices identical graphs higher than PETSc
/// (kernel-efficiency derating), for any stencil.
#[test]
fn trilinos_never_faster_than_petsc() {
    for kind in [kdr_sparse::StencilKind::Lap2D5, kdr_sparse::StencilKind::Lap3D7] {
        let s = if kind == kdr_sparse::StencilKind::Lap2D5 {
            Stencil::lap2d(1 << 11, 1 << 11)
        } else {
            Stencil::lap3d7(1 << 8, 1 << 7, 1 << 7)
        };
        let t_pet =
            per_iteration_seconds(s, KsmKind::BiCgStab, 16, LibraryProfile::Petsc, 4, 2, 3);
        let t_tri =
            per_iteration_seconds(s, KsmKind::BiCgStab, 16, LibraryProfile::Trilinos, 4, 2, 3);
        assert!(t_tri >= t_pet, "{kind:?}: {t_tri} vs {t_pet}");
    }
}
