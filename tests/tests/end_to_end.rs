//! Cross-crate integration: the full KDRSolvers stack against the
//! independent SPMD baseline implementation, on the same problems.

use std::sync::Arc;

use kdr_baselines::{solve_spmd, BaselineKsm};
use kdr_core::{
    solve, BiCgStabSolver, CgSolver, ExecBackend, GmresSolver, Planner, SolveControl, Solver, SOL,
};
use kdr_index::Partition;
use kdr_sparse::stencil::rhs_vector;
use kdr_sparse::{Csr, SparseMatrix, Stencil};

fn kdr_solution(
    s: Stencil,
    b: &[f64],
    make: impl FnOnce(&mut Planner<f64>) -> Box<dyn Solver<f64>>,
    tol: f64,
) -> Vec<f64> {
    let n = s.unknowns();
    let m: Arc<dyn SparseMatrix<f64>> = Arc::new(s.to_csr::<f64, u64>());
    let mut planner = Planner::new(Box::new(ExecBackend::<f64>::new(4)));
    let part = Partition::equal_blocks(n, 4);
    let d = planner.add_sol_vector(n, Some(part.clone()));
    let r = planner.add_rhs_vector(n, Some(part));
    planner.add_operator(m, d, r);
    planner.set_rhs_data(r, b);
    let mut solver = make(&mut planner);
    let report = solve(
        &mut planner,
        solver.as_mut(),
        SolveControl::to_tolerance(tol, 20_000),
    )
    .expect("solve failed");
    assert!(report.converged, "{} did not converge", solver.name());
    planner.read_component(SOL, 0)
}

/// KDRSolvers (task-oriented) and the SPMD baseline (bulk-synchronous)
/// must agree on the solution of the same system — two entirely
/// independent execution paths over independent kernels.
#[test]
fn kdr_and_spmd_agree() {
    let s = Stencil::lap2d(16, 16);
    let n = s.unknowns();
    let b = rhs_vector::<f64>(n, 11);
    let m: Csr<f64, u64> = s.to_csr();

    type MakeSolver = Box<dyn Fn(&mut Planner<f64>) -> Box<dyn Solver<f64>>>;
    let cases: Vec<(BaselineKsm, MakeSolver)> = vec![
        (
            BaselineKsm::Cg,
            Box::new(|p: &mut Planner<f64>| Box::new(CgSolver::new(p)) as Box<dyn Solver<f64>>),
        ),
        (
            BaselineKsm::BiCgStab,
            Box::new(|p: &mut Planner<f64>| {
                Box::new(BiCgStabSolver::new(p)) as Box<dyn Solver<f64>>
            }),
        ),
        (
            BaselineKsm::Gmres(10),
            Box::new(|p: &mut Planner<f64>| {
                Box::new(GmresSolver::with_restart(p, 10)) as Box<dyn Solver<f64>>
            }),
        ),
    ];
    for (baseline, make) in cases {
        let x_kdr = kdr_solution(s, &b, make, 1e-11);
        let x_spmd = solve_spmd(&m, &b, baseline, 4, 20_000, 1e-11).x;
        for i in 0..n as usize {
            assert!(
                (x_kdr[i] - x_spmd[i]).abs() < 1e-7,
                "{baseline:?} row {i}: kdr {} vs spmd {}",
                x_kdr[i],
                x_spmd[i]
            );
        }
    }
}

/// Every storage format can serve as the planner's operator and
/// produce the same solution.
#[test]
fn every_format_solves_through_the_planner() {
    use kdr_sparse::convert;
    let s = Stencil::lap2d(12, 12);
    let n = s.unknowns();
    let b = rhs_vector::<f64>(n, 4);
    let base = s.to_csr::<f64, u32>();
    let reference = kdr_solution(s, &b, |p| Box::new(CgSolver::new(p)), 1e-11);

    let formats: Vec<(&str, Arc<dyn SparseMatrix<f64>>)> = vec![
        ("csc", Arc::new(convert::to_csc::<f64, u32>(&base))),
        ("coo", Arc::new(convert::to_coo::<f64, u64>(&base))),
        ("ell", Arc::new(convert::to_ell::<f64, u32>(&base))),
        ("dia", Arc::new(convert::to_dia::<f64>(&base))),
        ("bcsr", Arc::new(convert::to_bcsr::<f64, u32>(&base, 2, 2))),
        ("dense", Arc::new(convert::to_dense::<f64>(&base))),
        (
            "stencil_mf",
            Arc::new(kdr_sparse::StencilOperator::<f64>::new(s)),
        ),
    ];
    for (name, m) in formats {
        let mut planner = Planner::new(Box::new(ExecBackend::<f64>::new(3)));
        let part = Partition::equal_blocks(n, 3);
        let d = planner.add_sol_vector(n, Some(part.clone()));
        let r = planner.add_rhs_vector(n, Some(part));
        planner.add_operator(m, d, r);
        planner.set_rhs_data(r, &b);
        let mut solver = CgSolver::new(&mut planner);
        let report = solve(
            &mut planner,
            &mut solver,
            SolveControl::to_tolerance(1e-11, 20_000),
        )
        .expect("solve failed");
        assert!(report.converged, "{name}");
        let x = planner.read_component(SOL, 0);
        for i in 0..n as usize {
            assert!(
                (x[i] - reference[i]).abs() < 1e-7,
                "{name} row {i}: {} vs {}",
                x[i],
                reference[i]
            );
        }
    }
}

/// Non-trivial partitioning strategies (2-D tiles, round-robin-ish
/// block maps) flow through the whole stack unchanged — P3 end to end.
#[test]
fn exotic_partitions_work_end_to_end() {
    let s = Stencil::lap2d(16, 16);
    let n = s.unknowns();
    let b = rhs_vector::<f64>(n, 6);
    let reference = kdr_solution(s, &b, |p| Box::new(CgSolver::new(p)), 1e-11);

    // 2-D tile partition of the (grid-structured) domain space.
    let grid = kdr_index::IndexSpace::grid2(16, 16);
    let tiled = Partition::grid2_tiles(&grid, 2, 2);
    // Size-imbalanced blocks.
    let skew = Partition::new(
        n,
        vec![
            kdr_index::IntervalSet::from_range(0, 10),
            kdr_index::IntervalSet::from_range(10, 200),
            kdr_index::IntervalSet::from_range(200, 256),
        ],
    );

    for (name, part) in [("tiled2d", tiled), ("skewed", skew)] {
        let m: Arc<dyn SparseMatrix<f64>> = Arc::new(s.to_csr::<f64, u64>());
        let mut planner = Planner::new(Box::new(ExecBackend::<f64>::new(4)));
        let d = planner.add_sol_vector(n, Some(part.clone()));
        let r = planner.add_rhs_vector(n, Some(part));
        planner.add_operator(m, d, r);
        planner.set_rhs_data(r, &b);
        let mut solver = CgSolver::new(&mut planner);
        let report = solve(
            &mut planner,
            &mut solver,
            SolveControl::to_tolerance(1e-11, 20_000),
        )
        .expect("solve failed");
        assert!(report.converged, "{name}");
        let x = planner.read_component(SOL, 0);
        for i in 0..n as usize {
            assert!((x[i] - reference[i]).abs() < 1e-7, "{name} row {i}");
        }
    }
}

/// Rectangular multi-component systems: a least-squares-style normal
/// equation assembled as AᵀA x = Aᵀ b via matmul_transpose.
#[test]
fn adjoint_products_through_planner() {
    // Solve the square system with BiCG, which uses A and Aᵀ.
    let s = Stencil::lap2d(10, 10);
    let n = s.unknowns();
    let b = rhs_vector::<f64>(n, 2);
    let x = kdr_solution(s, &b, |p| Box::new(kdr_core::BiCgSolver::new(p)), 1e-11);
    let m: Csr<f64> = s.to_csr();
    let mut ax = vec![0.0; n as usize];
    m.spmv(&x, &mut ax);
    let res: f64 = ax
        .iter()
        .zip(&b)
        .map(|(a, bb)| (a - bb) * (a - bb))
        .sum::<f64>()
        .sqrt();
    assert!(res < 1e-8);
}
