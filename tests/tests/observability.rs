//! Integration tests for the observability layer: span nesting,
//! never-blocking ring buffers, Chrome-trace schema stability, metrics
//! consistency with the traced-stepping contract, and the
//! events-disabled overhead bound.

use std::sync::Arc;

use kdr_core::{solve_traced, CgSolver, ExecBackend, PhaseSplit, Planner, SolveControl, Solver};
use kdr_index::{IntervalSet, Partition};
use kdr_runtime::{
    chrome_trace_json, critical_path, Buffer, Provenance, Runtime, TaskBuilder, TaskSpan,
};
use kdr_sparse::stencil::rhs_vector;
use kdr_sparse::{SparseMatrix, Stencil};

// ----- helpers ------------------------------------------------------

fn exec_planner(s: Stencil, pieces: usize, events: bool) -> Planner<f64> {
    let n = s.unknowns();
    let m: Arc<dyn SparseMatrix<f64>> = Arc::new(s.to_csr::<f64, u64>());
    let backend = ExecBackend::<f64>::new(4);
    backend.set_event_logging(events);
    let mut planner = Planner::new(Box::new(backend));
    let part = Partition::equal_blocks(n, pieces);
    let d = planner.add_sol_vector(n, Some(part.clone()));
    let r = planner.add_rhs_vector(n, Some(part));
    planner.add_operator(m, d, r);
    planner.set_rhs_data(r, &rhs_vector::<f64>(n, 11));
    planner
}

fn with_exec<R>(planner: &mut Planner<f64>, f: impl FnOnce(&mut ExecBackend<f64>) -> R) -> R {
    planner.with_backend(|b| f(b.as_any().downcast_mut::<ExecBackend<f64>>().unwrap()))
}

// ----- span lifecycle -----------------------------------------------

/// Every span's timestamps are properly nested (submit ≤ ready ≤
/// start ≤ end ≤ retire) and every recorded dependence edge is
/// honored in time: a predecessor's body finishes before its
/// successor becomes ready.
#[test]
fn spans_nest_and_respect_dependences() {
    let rt = Runtime::new(3);
    rt.enable_events(true);
    let a = Buffer::filled(64, 0.0f64);
    for wave in 0..20 {
        // Alternating full-buffer writes: a strict chain.
        rt.submit(
            TaskBuilder::new(if wave % 2 == 0 { "even" } else { "odd" })
                .write_all(&a)
                .body(move |ctx| {
                    let w = ctx.write::<f64>(0);
                    w.set(0, wave as f64);
                }),
        )
        .unwrap();
    }
    let spans = rt.take_spans();
    assert_eq!(spans.len(), 20);
    let by_id: std::collections::HashMap<u64, &TaskSpan> =
        spans.iter().map(|s| (s.id, s)).collect();
    for s in &spans {
        assert!(
            s.submit_ns <= s.ready_ns,
            "submit>{}ready task {}",
            s.ready_ns,
            s.id
        );
        assert!(s.ready_ns <= s.start_ns, "ready>start task {}", s.id);
        assert!(s.start_ns <= s.end_ns, "start>end task {}", s.id);
        assert!(s.end_ns <= s.retire_ns, "end>retire task {}", s.id);
        assert_eq!(s.provenance, Provenance::Analyzed);
        for d in &s.deps {
            let pred = by_id[d];
            assert!(
                pred.end_ns <= s.ready_ns,
                "dep {} must finish before {} is ready",
                d,
                s.id
            );
        }
    }
    // The chain produced 19 edges; the critical path is the chain.
    let cp = critical_path(&spans);
    assert_eq!(cp.path.len(), 20, "chain critical path spans every task");
}

/// Replayed submissions carry Replayed provenance in their spans.
#[test]
fn replayed_spans_carry_provenance() {
    let rt = Runtime::new(2);
    rt.enable_events(true);
    let v = Buffer::filled(4, 0.0f64);
    let step = |v: &Buffer<f64>| {
        TaskBuilder::new("inc").write_all(v).body(|ctx| {
            let w = ctx.write::<f64>(0);
            w.set(0, w.get(0) + 1.0);
        })
    };
    rt.begin_trace().unwrap();
    rt.submit(step(&v)).unwrap();
    rt.submit(step(&v)).unwrap();
    let trace = rt.end_trace().unwrap();
    rt.replay(&trace, vec![step(&v), step(&v)]).unwrap();
    let spans = rt.take_spans();
    assert_eq!(spans.len(), 4);
    assert_eq!(spans[0].provenance, Provenance::Analyzed);
    assert_eq!(spans[1].provenance, Provenance::Analyzed);
    assert_eq!(spans[2].provenance, Provenance::Replayed);
    assert_eq!(spans[3].provenance, Provenance::Replayed);
    // The replayed edge was recorded in the span deps.
    assert_eq!(spans[3].deps, vec![spans[2].id]);
}

// ----- ring buffer never blocks -------------------------------------

/// With a ring far smaller than the task count, every task still
/// executes (recording overwrites, never blocks) and the loss is
/// reported as a drop count.
#[test]
fn ring_overflow_drops_instead_of_blocking() {
    let rt = Runtime::with_event_capacity(2, 8);
    rt.enable_events(true);
    let v = Buffer::filled(1, 0.0f64);
    for _ in 0..300 {
        rt.submit(TaskBuilder::new("inc").write_all(&v).body(|ctx| {
            let w = ctx.write::<f64>(0);
            w.set(0, w.get(0) + 1.0);
        }))
        .unwrap();
    }
    let spans = rt.take_spans();
    // Nothing blocked: all 300 bodies ran.
    assert_eq!(v.snapshot(), vec![300.0]);
    // Retention is bounded by ring capacity (8 per worker).
    assert!(spans.len() <= 16, "retained {} spans", spans.len());
    let m = rt.metrics();
    assert_eq!(m.tasks_executed, 300);
    assert_eq!(m.events_recorded, 300);
    assert_eq!(m.events_dropped + spans.len() as u64, 300);
    assert!(m.events_dropped >= 284);
    // Histograms saw every task even though spans wrapped.
    assert_eq!(m.execute_ns.count, 300);
    assert_eq!(m.queue_wait_ns.count, 300);
}

/// Event logging off: nothing recorded, nothing retained.
#[test]
fn disabled_events_record_nothing() {
    let rt = Runtime::new(2);
    let v = Buffer::filled(1, 0.0f64);
    for _ in 0..10 {
        rt.submit(TaskBuilder::new("inc").write_all(&v).body(|ctx| {
            let w = ctx.write::<f64>(0);
            w.set(0, w.get(0) + 1.0);
        }))
        .unwrap();
    }
    let spans = rt.take_spans();
    assert!(spans.is_empty());
    let m = rt.metrics();
    assert_eq!(m.events_recorded, 0);
    assert_eq!(m.events_dropped, 0);
    assert!(m.execute_ns.is_empty());
    assert_eq!(m.tasks_executed, 10);
}

// ----- Chrome trace golden schema -----------------------------------

/// Replace the value after every occurrence of `key` with `#` —
/// timestamps and durations vary run to run; everything else in the
/// export is deterministic for a 1-worker runtime.
fn canonicalize(json: &str, keys: &[&str]) -> String {
    let mut out = json.to_string();
    for key in keys {
        let pat = format!("\"{key}\":");
        let mut result = String::with_capacity(out.len());
        let mut rest = out.as_str();
        while let Some(pos) = rest.find(&pat) {
            let after = pos + pat.len();
            result.push_str(&rest[..after]);
            let tail = &rest[after..];
            let num_len = tail
                .find(|c: char| !c.is_ascii_digit() && c != '.')
                .unwrap_or(tail.len());
            result.push('#');
            rest = &tail[num_len..];
        }
        result.push_str(rest);
        out = result;
    }
    out
}

/// The canonicalized Chrome-trace export of a fixed DAG matches the
/// committed golden file — any schema change must be deliberate.
/// Regenerate with `BLESS=1 cargo test -p kdr-integration chrome_trace_schema`.
#[test]
fn chrome_trace_schema_matches_golden() {
    // One worker => tid 0 for every event, deterministic execution
    // order for a chain, deterministic task ids.
    let rt = Runtime::new(1);
    rt.enable_events(true);
    let a = Buffer::filled(8, 0.0f64);
    let b = Buffer::filled(8, 0.0f64);
    rt.submit(TaskBuilder::new("load").write_all(&a).body(|_| {}))
        .unwrap();
    rt.submit(
        TaskBuilder::new("compute")
            .read_all(&a)
            .write(&b, IntervalSet::from_range(0, 4))
            .body(|_| {}),
    )
    .unwrap();
    rt.submit(
        TaskBuilder::new("compute")
            .read_all(&a)
            .write(&b, IntervalSet::from_range(4, 8))
            .body(|_| {}),
    )
    .unwrap();
    rt.submit(TaskBuilder::new("store").read_all(&b).body(|_| {}))
        .unwrap();
    let spans = rt.take_spans();
    assert_eq!(spans.len(), 4);
    let json = chrome_trace_json(&spans);
    let canon = canonicalize(&json, &["ts", "dur", "queue_wait_us"]);

    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/golden/chrome_trace.golden");
    if std::env::var("BLESS").is_ok() {
        std::fs::write(golden_path, &canon).unwrap();
    }
    let golden = std::fs::read_to_string(golden_path)
        .expect("golden file missing; run with BLESS=1 to create");
    assert_eq!(
        canon, golden,
        "Chrome trace schema drifted from golden file"
    );
}

// ----- minimal JSON validity parser ---------------------------------

/// A tiny recursive-descent JSON parser: validates syntax only (no
/// value model), enough to prove the export is well-formed without a
/// JSON dependency.
struct Json<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Json<'a> {
    fn new(s: &'a str) -> Self {
        Json {
            s: s.as_bytes(),
            i: 0,
        }
    }
    fn ws(&mut self) {
        while self.i < self.s.len() && (self.s[self.i] as char).is_ascii_whitespace() {
            self.i += 1;
        }
    }
    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.s.get(self.i).copied()
    }
    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, self.i))
        }
    }
    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            other => Err(format!("unexpected {other:?} at byte {}", self.i)),
        }
    }
    fn object(&mut self) -> Result<(), String> {
        self.eat(b'{')?;
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.string()?;
            self.eat(b':')?;
            self.value()?;
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                other => return Err(format!("bad object at {:?} byte {}", other, self.i)),
            }
        }
    }
    fn array(&mut self) -> Result<(), String> {
        self.eat(b'[')?;
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.value()?;
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                other => return Err(format!("bad array at {:?} byte {}", other, self.i)),
            }
        }
    }
    fn string(&mut self) -> Result<(), String> {
        self.eat(b'"')?;
        while let Some(&c) = self.s.get(self.i) {
            self.i += 1;
            match c {
                b'"' => return Ok(()),
                b'\\' => self.i += 1, // skip escaped char
                c if c < 0x20 => return Err(format!("raw control byte {c} in string")),
                _ => {}
            }
        }
        Err("unterminated string".into())
    }
    fn number(&mut self) -> Result<(), String> {
        let start = self.i;
        if self.s.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        while self
            .s
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        if self.i == start {
            Err(format!("empty number at byte {start}"))
        } else {
            Ok(())
        }
    }
    fn literal(&mut self, lit: &str) -> Result<(), String> {
        self.ws();
        if self.s[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }
    fn parse_complete(mut self) -> Result<(), String> {
        self.value()?;
        self.ws();
        if self.i == self.s.len() {
            Ok(())
        } else {
            Err(format!("trailing bytes at {}", self.i))
        }
    }
}

/// A real traced CG solve with events on produces well-formed Chrome
/// trace JSON with the required event fields.
#[test]
fn cg_trace_json_is_valid_and_complete() {
    let mut planner = exec_planner(Stencil::lap2d(16, 16), 4, true);
    let mut solver = CgSolver::new(&mut planner);
    let (report, _trace) = solve_traced(&mut planner, &mut solver, SolveControl::fixed(5));
    assert_eq!(report.unwrap().iters, 5);
    drop(solver);
    let spans = with_exec(&mut planner, |b| b.take_spans());
    assert!(!spans.is_empty());
    let json = chrome_trace_json(&spans);
    Json::new(&json).parse_complete().expect("invalid JSON");
    // Schema essentials for Perfetto: the traceEvents wrapper, X
    // duration events with ts/dur, and worker metadata.
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.contains("\"ph\":\"X\""));
    assert!(json.contains("\"ph\":\"M\""));
    assert!(json.contains("\"ts\":"));
    assert!(json.contains("\"dur\":"));
    assert!(json.contains("\"provenance\":\"replayed\""));
    // Solver kernels show up by name.
    assert!(json.contains("\"name\":\"dot_partial\""));
    assert!(json.contains("\"name\":\"axpy\""));
    // The phase split sees SpMV work.
    let split = PhaseSplit::from_spans(&spans);
    assert!(split.spmv_ns > 0);
    assert!(split.dot_ns > 0);
}

// ----- metrics consistency with traced stepping ---------------------

/// `MetricsSnapshot`/`ExecMetrics` agree with the sim_consistency
/// contract: steady-state CG replays (steps - 4 at minimum), the
/// task-level analyzed/replayed counters add up, and the solver-level
/// trace sees the same outcomes.
#[test]
fn metrics_agree_with_traced_stepping_contract() {
    let steps = 30;
    let mut planner = exec_planner(Stencil::lap2d(24, 24), 4, true);
    let mut solver = CgSolver::new(&mut planner);
    let (report, trace) = solve_traced(&mut planner, &mut solver, SolveControl::fixed(steps));
    assert_eq!(report.unwrap().iters, steps);
    drop(solver);
    planner.fence();
    let metrics = with_exec(&mut planner, |b| b.metrics());

    // Solver-level outcomes match backend step counters.
    assert_eq!(trace.iterations.len(), steps);
    assert_eq!(trace.steps_replayed() as u64, metrics.steps_replayed);
    assert!(
        metrics.steps_replayed >= (steps as u64) - 4,
        "steady-state CG must replay: {metrics:?}"
    );
    assert!(metrics.trace_hit_rate() > 0.8);

    // Task-level counters are internally consistent.
    assert_eq!(
        metrics.runtime.tasks_submitted,
        metrics.runtime.tasks_analyzed + metrics.runtime.tasks_replayed
    );
    assert!(metrics.runtime.tasks_replayed > metrics.runtime.tasks_analyzed);
    assert!(metrics.runtime.replay_fraction() > 0.5);

    // Scalar arena stays bounded and the cache holds the CG shapes.
    assert!(metrics.scalar_slots < 32);
    assert!(metrics.trace_cache_len >= 1);
    assert!(metrics.trace_cache_len <= metrics.trace_cache_cap);

    // Every executed task got a span (no drops at default capacity),
    // and the latency histograms saw them all.
    assert_eq!(
        metrics.runtime.events_recorded,
        metrics.runtime.tasks_executed
    );
    assert_eq!(metrics.runtime.events_dropped, 0);
    assert_eq!(
        metrics.runtime.execute_ns.count,
        metrics.runtime.tasks_executed
    );
}

// ----- overhead regression ------------------------------------------

/// Median per-iteration wall time of a CG solve configured like the
/// BENCH_tracing.json run (but smaller for test budgets).
fn cg_ns_per_iter(traced: bool, events: bool, steps: usize) -> u64 {
    let mut planner = exec_planner(Stencil::lap2d(64, 64), 8, events);
    with_exec(&mut planner, |b| b.set_tracing(traced));
    let mut solver = CgSolver::new(&mut planner);
    planner.fence();
    let mut samples = Vec::with_capacity(steps);
    for _ in 0..steps {
        let t0 = std::time::Instant::now();
        planner.step_begin();
        solver.step(&mut planner);
        planner.step_end();
        planner.fence();
        samples.push(t0.elapsed().as_nanos() as u64);
    }
    // Median over the post-warmup tail.
    let tail = &mut samples[steps / 3..];
    tail.sort_unstable();
    tail[tail.len() / 2]
}

/// The event layer, *disabled*, must not erode the traced fast path:
/// traced replay stays faster than analyzed submission (the PR 1
/// BENCH_tracing.json property re-verified in-process), and enabling
/// events costs at most a small multiple.
#[test]
fn events_disabled_overhead_within_noise() {
    // The headline property BENCH_tracing.json records is a 3.3-3.9x
    // traced speedup; "within noise" here means the win survives at
    // all (generous: timing in CI containers is coarse, and the full
    // suite runs many test binaries concurrently, so one measurement
    // can land on a scheduling hiccup — hence up to three attempts).
    let steps = 24;
    let mut last = (0, 0, 0);
    for _ in 0..3 {
        let analyzed_off = cg_ns_per_iter(false, false, steps);
        let traced_off = cg_ns_per_iter(true, false, steps);
        let traced_on = cg_ns_per_iter(true, true, steps);
        last = (analyzed_off, traced_off, traced_on);
        let traced_wins = traced_off < analyzed_off;
        // Events-on stays within a small multiple of events-off.
        let events_cheap = traced_on < traced_off.saturating_mul(3).max(traced_off + 2_000_000);
        if traced_wins && events_cheap {
            return;
        }
    }
    let (analyzed_off, traced_off, traced_on) = last;
    panic!(
        "traced fast path eroded in 3/3 measurements: \
         analyzed {analyzed_off} ns, traced {traced_off} ns, traced+events {traced_on} ns"
    );
}
