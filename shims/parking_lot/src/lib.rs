//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `parking_lot` API it actually uses,
//! implemented over `std::sync`. Semantics match `parking_lot` where
//! the two differ from `std`:
//!
//! * `Mutex::lock` returns the guard directly (no `Result`); a
//!   poisoned lock is recovered rather than propagated, matching
//!   `parking_lot`'s poison-free behavior.
//! * `Condvar::wait`/`wait_for` take the guard by `&mut` reference.

use std::sync::{self, WaitTimeoutResult};
use std::time::Duration;

/// A mutual-exclusion primitive (poison-free `lock`).
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread. Recovers from
    /// poisoning (a panicked holder) instead of returning an error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// A condition variable whose wait methods take the guard by `&mut`.
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing the guarded lock while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        self.replace_guard(guard, |g| match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        });
    }

    /// Block until notified or `timeout` elapses; reports which.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut result = None;
        self.replace_guard(guard, |g| {
            let (g, r) = match self.inner.wait_timeout(g, timeout) {
                Ok((g, r)) => (g, r),
                Err(p) => {
                    let (g, r) = p.into_inner();
                    (g, r)
                }
            };
            result = Some(r);
            g
        });
        result.expect("wait_timeout always yields a result")
    }

    /// Wake one parked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every parked waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Move the guard out of `&mut`, run the by-value `std` wait, and
    /// put the returned guard back.
    fn replace_guard<'a, T>(
        &self,
        slot: &mut MutexGuard<'a, T>,
        f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
    ) {
        // SAFETY: `slot` is temporarily logically uninitialized between
        // the read and the write. `f` (std's wait with poison
        // recovery) never unwinds, so the write is always reached and
        // no double-drop can occur.
        unsafe {
            let guard = std::ptr::read(slot);
            let guard = f(guard);
            std::ptr::write(slot, guard);
        }
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn mutex_guards_data() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            *started = true;
            cv.notify_one();
        });
        let (lock, cv) = &*pair;
        let mut started = lock.lock();
        while !*started {
            cv.wait(&mut started);
        }
        assert!(*started);
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let t0 = Instant::now();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
        assert!(t0.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
