//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so the workspace
//! vendors the benchmark-harness subset its benches use: `Criterion`,
//! `benchmark_group`/`bench_function`/`throughput`/`finish`,
//! `BenchmarkId`, `Throughput`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is a plain wall-clock sampler: after a short
//! calibration, each benchmark runs `sample_size` samples and reports
//! the median per-iteration time to stdout. There is no statistical
//! analysis, plotting, or baseline comparison — the numbers are for
//! relative comparison within one run.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time for one measurement sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(8);
/// Calibration budget used to size each sample's iteration count.
const WARMUP_TARGET: Duration = Duration::from_millis(40);

/// Benchmark driver; configuration plus result reporting.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// Units processed per iteration, used to report rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { id: name.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { id: name }
    }
}

/// A named collection of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Override the sample count for this group's benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.criterion.sample_size = n;
        self
    }

    /// Measure one benchmark and print its median time.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };

        // Calibrate: grow the iteration count until one run of the
        // routine takes long enough to time reliably.
        let calibration = Instant::now();
        loop {
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            if bencher.elapsed >= SAMPLE_TARGET || calibration.elapsed() >= WARMUP_TARGET {
                break;
            }
            let grow = if bencher.elapsed.is_zero() {
                16
            } else {
                let need = SAMPLE_TARGET.as_nanos() / bencher.elapsed.as_nanos().max(1);
                need.clamp(2, 16) as u64
            };
            bencher.iters = bencher.iters.saturating_mul(grow).min(1 << 30);
        }

        let mut samples: Vec<f64> = Vec::with_capacity(self.criterion.sample_size);
        for _ in 0..self.criterion.sample_size {
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            samples.push(bencher.elapsed.as_nanos() as f64 / bencher.iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
        let median = samples[samples.len() / 2];

        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  thrpt: {:.3} Melem/s", n as f64 * 1e3 / median)
            }
            Some(Throughput::Bytes(n)) => {
                format!(
                    "  thrpt: {:.3} MiB/s",
                    n as f64 * 1e9 / median / (1 << 20) as f64
                )
            }
            None => String::new(),
        };
        println!(
            "{}/{}  time: {}{}",
            self.name,
            id.id,
            format_ns(median),
            rate
        );
        self
    }

    /// End the group (kept for API compatibility; reporting is
    /// per-benchmark).
    pub fn finish(self) {}
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it enough times to fill one sample.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Define a function that runs a list of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_and_runs() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u64;
        {
            let mut g = c.benchmark_group("shim");
            g.throughput(Throughput::Elements(4));
            g.bench_function(BenchmarkId::new("count", 4), |b| {
                b.iter(|| {
                    runs += 1;
                    runs
                })
            });
            g.finish();
        }
        assert!(runs >= 3);
    }

    #[test]
    fn group_macro_compiles() {
        fn target(c: &mut Criterion) {
            let mut g = c.benchmark_group("m");
            g.bench_function("noop", |b| b.iter(|| 1u32 + 1));
            g.finish();
        }
        criterion_group! {
            name = benches;
            config = Criterion::default().sample_size(2);
            targets = target
        }
        benches();
    }
}
