//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so the workspace
//! vendors the subset of the proptest API its tests use: the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`/`boxed`,
//! strategies for integer/float ranges, tuples, `Just`, `Vec<S>`,
//! `prop::collection::{vec, btree_set}`, the `proptest!`,
//! `prop_assert*`, `prop_assume!` and `prop_oneof!` macros, and
//! `ProptestConfig::with_cases`.
//!
//! Unlike real proptest there is no shrinking and no failure
//! persistence: each test runs `cases` deterministic random inputs
//! (seeded from the test's module path and name) and plain
//! `assert!` reports the first failing input. That keeps the
//! random-input coverage of the original tests while staying fully
//! self-contained.

use std::ops::{Range, RangeInclusive};

/// Deterministic xorshift64* generator. Each generated test seeds one
/// from its own name, so runs are reproducible across processes.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name (FNV-1a over the bytes, never zero).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h | 1, // xorshift state must be nonzero
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// How many random cases a `proptest!` test runs.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of an associated type.
///
/// Real proptest separates strategies from value trees to support
/// shrinking; this stand-in generates values directly.
pub trait Strategy {
    type Value;

    /// Produce one random value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Generate an intermediate value, then generate from the
    /// strategy `f` builds out of it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { source: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        let mid = self.source.generate(rng);
        (self.f)(mid).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Type-erased strategy, as produced by [`Strategy::boxed`].
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Uniform choice between boxed alternatives (see `prop_oneof!`).
pub struct Union<V>(Vec<BoxedStrategy<V>>);

impl<V> Union<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let lo = self.start as i128;
                let span = (self.end as i128 - lo) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo + off) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let lo = *self.start() as i128;
                let span = (*self.end() as i128 - lo) as u128 + 1;
                // span can be 2^128 only for a full i128/u128 range,
                // which no supported type produces; modulo is safe.
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo + off) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // 53 uniform mantissa bits in [0, 1).
                let frac = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let lo = self.start as f64;
                let hi = self.end as f64;
                (lo + frac * (hi - lo)) as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// A `Vec` of strategies generates element-wise (one value per
/// strategy, in order).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// Collection strategies (`prop::collection::vec` and friends).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Accepted element counts for a generated collection.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.lo < self.hi, "empty collection size range");
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy for `Vec`s with random length.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate `Vec`s whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s with a target random size.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate `BTreeSet`s aiming for a size in `size`. As in real
    /// proptest, duplicate draws can leave the set smaller than the
    /// target when the element space is narrow.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 4 + 8 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Everything a proptest-based test file needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestRng, Union,
    };
}

/// Define `#[test]` functions that run their body over many random
/// inputs drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        cfg = ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($p:pat in $s:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __pt_config: $crate::ProptestConfig = $cfg;
                let mut __pt_rng = $crate::TestRng::from_name(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                for __pt_case in 0..__pt_config.cases {
                    let _ = __pt_case;
                    $(let $p = $crate::Strategy::generate(&($s), &mut __pt_rng);)*
                    $body
                }
            }
        )*
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

/// Skip the current random case when its input is uninteresting.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Uniform random choice between several strategies with a common
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("bounds");
        for _ in 0..500 {
            let v = (-3i64..4).generate(&mut rng);
            assert!((-3..4).contains(&v));
            let u = (8u64..40).generate(&mut rng);
            assert!((8..40).contains(&u));
            let z = (0usize..1).generate(&mut rng);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn collections_and_combinators_compose() {
        let mut rng = TestRng::from_name("compose");
        let strat = (2u64..6, 2u64..6).prop_flat_map(|(r, c)| {
            prop::collection::vec((0..r, 0..c), 1..10).prop_map(move |es| (r, c, es))
        });
        for _ in 0..200 {
            let (r, c, es) = strat.generate(&mut rng);
            assert!(!es.is_empty() && es.len() < 10);
            for (i, j) in es {
                assert!(i < r && j < c);
            }
        }
        let set = prop::collection::btree_set(0u64..8, 0..5).generate(&mut rng);
        assert!(set.len() < 5);
    }

    #[test]
    fn oneof_covers_all_arms() {
        let mut rng = TestRng::from_name("oneof");
        let strat = prop_oneof![
            (0u64..1).prop_map(|_| 1u32),
            Just(2u32),
            (0u64..1).prop_map(|_| 3u32),
        ];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_cases(v in prop::collection::vec(0i32..10, 1..5), x in 0u64..3) {
            prop_assume!(!v.is_empty());
            prop_assert!(v.len() < 5);
            prop_assert_eq!(x < 3, true, "x was {}", x);
        }
    }
}
