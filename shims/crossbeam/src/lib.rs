//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment cannot reach crates.io, so the workspace
//! vendors the one type it uses: `crossbeam::queue::SegQueue`. The
//! real crate's queue is lock-free; this version keeps the unbounded
//! MPMC FIFO contract with a mutexed `VecDeque`, with an atomic
//! length so `is_empty`/`len` probes never take the lock.

pub mod queue {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// An unbounded multi-producer multi-consumer FIFO queue.
    pub struct SegQueue<T> {
        items: Mutex<VecDeque<T>>,
        len: AtomicUsize,
    }

    impl<T> SegQueue<T> {
        /// Create an empty queue.
        pub fn new() -> Self {
            SegQueue {
                items: Mutex::new(VecDeque::new()),
                len: AtomicUsize::new(0),
            }
        }

        fn guard(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            match self.items.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            }
        }

        /// Append `value` at the back.
        pub fn push(&self, value: T) {
            let mut q = self.guard();
            q.push_back(value);
            self.len.store(q.len(), Ordering::Release);
        }

        /// Remove and return the front element, if any.
        pub fn pop(&self) -> Option<T> {
            if self.len.load(Ordering::Acquire) == 0 {
                return None;
            }
            let mut q = self.guard();
            let v = q.pop_front();
            self.len.store(q.len(), Ordering::Release);
            v
        }

        /// Number of queued elements (racy snapshot, like crossbeam's).
        pub fn len(&self) -> usize {
            self.len.load(Ordering::Acquire)
        }

        /// True if no element is queued (racy snapshot).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Default for SegQueue<T> {
        fn default() -> Self {
            SegQueue::new()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::Arc;

        #[test]
        fn fifo_order() {
            let q = SegQueue::new();
            for i in 0..10 {
                q.push(i);
            }
            assert_eq!(q.len(), 10);
            for i in 0..10 {
                assert_eq!(q.pop(), Some(i));
            }
            assert!(q.is_empty());
            assert_eq!(q.pop(), None);
        }

        #[test]
        fn concurrent_producers_consumers() {
            let q = Arc::new(SegQueue::new());
            let producers: Vec<_> = (0..4)
                .map(|p| {
                    let q = Arc::clone(&q);
                    std::thread::spawn(move || {
                        for i in 0..500 {
                            q.push(p * 1000 + i);
                        }
                    })
                })
                .collect();
            let consumers: Vec<_> = (0..4)
                .map(|_| {
                    let q = Arc::clone(&q);
                    std::thread::spawn(move || {
                        let mut got = 0;
                        while got < 500 {
                            if q.pop().is_some() {
                                got += 1;
                            } else {
                                std::thread::yield_now();
                            }
                        }
                        got
                    })
                })
                .collect();
            for p in producers {
                p.join().unwrap();
            }
            let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
            assert_eq!(total, 2000);
            assert!(q.is_empty());
        }
    }
}
