//! Runnable examples for KDRSolvers; see the `examples/` directory.
