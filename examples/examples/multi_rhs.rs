//! Multiple right-hand sides through multi-operator aliasing
//! (paper §4.2).
//!
//! Solves `A x₁ = b₁`, `A x₂ = b₂`, `A x₃ = b₃` as ONE multi-operator
//! system `{(K, A, 1, 1), (K, A, 2, 2), (K, A, 3, 3)}`: the matrix is
//! stored once and aliased into three components — no block-diagonal
//! assembly, no duplication — and one CG run advances all three
//! systems in lockstep, with all component work overlapping.
//!
//! Run: `cargo run --release -p kdr-examples --example multi_rhs`

use std::sync::Arc;

use kdr_core::{solve, CgSolver, ExecBackend, Planner, SolveControl, SOL};
use kdr_index::Partition;
use kdr_sparse::stencil::rhs_vector;
use kdr_sparse::{SparseMatrix, Stencil};

const NRHS: usize = 3;

fn main() {
    let stencil = Stencil::lap2d(32, 32);
    let n = stencil.unknowns();
    // ONE stored matrix.
    let matrix: Arc<dyn SparseMatrix<f64>> = Arc::new(stencil.to_csr::<f64, u32>());

    let mut planner = Planner::new(Box::new(ExecBackend::<f64>::with_default_workers()));
    let part = Partition::equal_blocks(n, 4);
    let rhs_data: Vec<Vec<f64>> = (0..NRHS)
        .map(|k| rhs_vector::<f64>(n, k as u64 + 1))
        .collect();
    for b in &rhs_data {
        let d = planner.add_sol_vector(n, Some(part.clone()));
        let r = planner.add_rhs_vector(n, Some(part.clone()));
        // The SAME Arc is added each time — aliasing, not copying.
        planner.add_operator(Arc::clone(&matrix), d, r);
        planner.set_rhs_data(r, b);
    }
    println!(
        "one stored matrix ({} nonzeros), {} aliased operator components",
        matrix.nnz(),
        NRHS
    );
    assert_eq!(Arc::strong_count(&matrix), NRHS + 1);

    let mut solver = CgSolver::new(&mut planner);
    let report = solve(
        &mut planner,
        &mut solver,
        SolveControl::to_tolerance(1e-10, 10_000),
    )
    .expect("solve failed");
    println!(
        "coupled solve finished in {} iterations (aggregate residual {:.3e})",
        report.iters, report.final_residual
    );

    for (k, rhs_k) in rhs_data.iter().enumerate().take(NRHS) {
        let x = planner.read_component(SOL, k);
        let mut ax = vec![0.0; n as usize];
        matrix.spmv(&x, &mut ax);
        let res: f64 = ax
            .iter()
            .zip(rhs_k)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        println!("system {k}: true residual {res:.3e}");
        assert!(res < 1e-7);
    }
}
