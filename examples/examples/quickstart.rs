//! Quickstart: solve a 2-D Poisson problem with conjugate gradient.
//!
//! The happy path of KDRSolvers: build a matrix, describe the system
//! to the planner with a partitioning strategy, pick a solver, solve.
//!
//! Run: `cargo run --release -p kdr-examples --example quickstart`

use std::sync::Arc;

use kdr_core::{solve, CgSolver, ExecBackend, Planner, SolveControl, SOL};
use kdr_index::Partition;
use kdr_sparse::stencil::rhs_vector;
use kdr_sparse::{Csr, SparseMatrix, Stencil};

fn main() {
    // A 64x64 Poisson problem (5-point Laplacian), assembled to CSR.
    let stencil = Stencil::lap2d(64, 64);
    let n = stencil.unknowns();
    let matrix: Arc<dyn SparseMatrix<f64>> = Arc::new(stencil.to_csr::<f64, u32>());
    let b = rhs_vector::<f64>(n, 42);

    // Describe the system: one domain space, one range space, one
    // operator — partitioned into 8 pieces. Changing the partition
    // changes nothing else in this program (P3).
    let mut planner = Planner::new(Box::new(ExecBackend::<f64>::with_default_workers()));
    let part = Partition::equal_blocks(n, 8);
    let d = planner.add_sol_vector(n, Some(part.clone()));
    let r = planner.add_rhs_vector(n, Some(part));
    planner.add_operator(Arc::clone(&matrix), d, r);
    planner.set_rhs_data(r, &b);

    // Solve with CG to 1e-10.
    let mut solver = CgSolver::new(&mut planner);
    let report = solve(
        &mut planner,
        &mut solver,
        SolveControl::to_tolerance(1e-10, 10_000),
    )
    .expect("solve failed");

    let x = planner.read_component(SOL, 0);
    // Verify the residual against the original matrix.
    let mut ax = vec![0.0; n as usize];
    matrix.spmv(&x, &mut ax);
    let res: f64 = ax
        .iter()
        .zip(&b)
        .map(|(a, bb)| (a - bb) * (a - bb))
        .sum::<f64>()
        .sqrt();

    println!(
        "CG converged: {} in {} iterations (recurrence residual {:.3e}, true residual {:.3e})",
        report.converged, report.iters, report.final_residual, res
    );
    println!("x[0..4] = {:?}", &x[..4]);
    assert!(report.converged && res < 1e-8);

    // The same CSR matrix works in any other format, too:
    let as_dia = kdr_sparse::convert::to_dia::<f64>(matrix.as_ref());
    println!(
        "the same operator in DIA format stores {} diagonals",
        as_dia.offsets().len()
    );
    let _ = Csr::<f64>::from_triples(as_dia.to_triples());
}
