//! Observability walkthrough: watch a traced BiCGStab solve through
//! the runtime's event log.
//!
//! Shows the full loop: enable events, solve with [`solve_traced`],
//! drain spans, print the per-phase table and critical path, and save
//! a Perfetto-loadable Chrome trace.
//!
//! Run: `cargo run --release -p kdr-examples --example observe_solver`

use std::sync::Arc;

use kdr_core::{solve_traced, BiCgStabSolver, ExecBackend, PhaseSplit, Planner, SolveControl};
use kdr_index::Partition;
use kdr_runtime::{chrome_trace_json, critical_path, phase_summary};
use kdr_sparse::stencil::rhs_vector;
use kdr_sparse::{SparseMatrix, Stencil};

fn main() {
    // A 64x64 Poisson problem in 8 pieces, like the quickstart.
    let stencil = Stencil::lap2d(64, 64);
    let n = stencil.unknowns();
    let matrix: Arc<dyn SparseMatrix<f64>> = Arc::new(stencil.to_csr::<f64, u32>());

    // Turn on event logging before the solve; it is off by default
    // and costs one atomic load per task while off.
    let backend = ExecBackend::<f64>::with_default_workers();
    backend.set_event_logging(true);
    let mut planner = Planner::new(Box::new(backend));
    let part = Partition::equal_blocks(n, 8);
    let d = planner.add_sol_vector(n, Some(part.clone()));
    let r = planner.add_rhs_vector(n, Some(part));
    planner.add_operator(matrix, d, r);
    planner.set_rhs_data(r, &rhs_vector::<f64>(n, 42));

    let mut solver = BiCgStabSolver::new(&mut planner);
    let control = SolveControl {
        max_iters: 2000,
        tol: 1e-10,
        check_every: 20,
        ..SolveControl::default()
    };
    let (outcome, trace) = solve_traced(&mut planner, &mut solver, control);
    let report = outcome.expect("solve failed");
    println!(
        "bicgstab: {} iters, converged={}, {} steps replayed from trace",
        report.iters,
        report.converged,
        trace.steps_replayed()
    );
    for (it, res) in &trace.residual_history {
        println!("  iter {it:>4}: residual {res:.3e}");
    }

    // Drain the spans (fences first) and read the story.
    let spans = planner.with_backend(|b| {
        b.as_any()
            .downcast_mut::<ExecBackend<f64>>()
            .expect("exec backend")
            .take_spans()
    });
    println!("\n{}", phase_summary(&spans));
    let split = PhaseSplit::from_spans(&spans);
    println!("spmv fraction of execute time: {:.1}%", {
        let t = split.total_ns();
        if t == 0 {
            0.0
        } else {
            100.0 * split.spmv_ns as f64 / t as f64
        }
    });
    let cp = critical_path(&spans);
    println!(
        "parallelism bound (work / critical path): {:.1}",
        cp.parallelism()
    );

    let json = chrome_trace_json(&spans);
    std::fs::create_dir_all("results").ok();
    std::fs::write("results/bicgstab_trace.json", &json).expect("write trace");
    println!("wrote results/bicgstab_trace.json — open in https://ui.perfetto.dev");
}
