//! Ingesting an external matrix: Matrix Market I/O plus format choice.
//!
//! Writes a generated system to a Matrix Market file, reads it back,
//! picks a storage format by structure (banded → DIA, irregular →
//! HYB), and solves. Demonstrates that external data flows into
//! KDRSolvers through the same format-agnostic interface.
//!
//! Run: `cargo run --release -p kdr-examples --example matrix_market`

use std::io::BufReader;
use std::sync::Arc;

use kdr_core::{solve, BiCgStabSolver, ExecBackend, Planner, SolveControl, SOL};
use kdr_index::Partition;
use kdr_sparse::io::{read_matrix_market, write_matrix_market};
use kdr_sparse::stencil::rhs_vector;
use kdr_sparse::{Csr, Dia, Hyb, SparseMatrix, Stencil, Triples};

fn main() {
    // "External" data: dump a stencil system to a .mtx in a temp file.
    let stencil = Stencil::lap2d(20, 20);
    let t = stencil.to_triples::<f64>();
    let path = std::env::temp_dir().join("kdrsolvers_example.mtx");
    {
        let f = std::fs::File::create(&path).expect("create temp file");
        write_matrix_market(&t, f).expect("write");
    }
    println!("wrote {} ({} entries)", path.display(), t.len());

    // Read it back, as any consumer of external data would.
    let f = std::fs::File::open(&path).expect("open");
    let loaded: Triples<f64> = read_matrix_market(BufReader::new(f)).expect("parse");
    let n = loaded.rows();
    println!(
        "read back {} x {} with {} entries",
        n,
        loaded.cols(),
        loaded.len()
    );

    // Pick a format from the structure.
    let ndiags = loaded.diagonal_offsets().len();
    let matrix: Arc<dyn SparseMatrix<f64>> = if ndiags <= 9 {
        println!("banded structure ({ndiags} diagonals) -> DIA");
        Arc::new(Dia::from_triples(loaded.clone()))
    } else {
        println!("irregular structure -> HYB");
        Arc::new(Hyb::<f64, u32>::from_triples(loaded.clone()))
    };

    // Solve, then verify against a CSR rebuild of the file contents.
    let mut planner = Planner::new(Box::new(ExecBackend::<f64>::with_default_workers()));
    let part = Partition::equal_blocks(n, 4);
    let d = planner.add_sol_vector(n, Some(part.clone()));
    let r = planner.add_rhs_vector(n, Some(part));
    planner.add_operator(matrix, d, r);
    let b = rhs_vector::<f64>(n, 6);
    planner.set_rhs_data(r, &b);
    let mut solver = BiCgStabSolver::new(&mut planner);
    let report = solve(
        &mut planner,
        &mut solver,
        SolveControl::to_tolerance(1e-10, 5000),
    )
    .expect("solve failed");
    let x = planner.read_component(SOL, 0);
    let check: Csr<f64> = Csr::from_triples(loaded);
    let mut ax = vec![0.0; n as usize];
    check.spmv(&x, &mut ax);
    let res: f64 = ax
        .iter()
        .zip(&b)
        .map(|(a, bb)| (a - bb) * (a - bb))
        .sum::<f64>()
        .sqrt();
    println!(
        "solved: converged = {}, {} iterations, true residual {:.3e}",
        report.converged, report.iters, res
    );
    let _ = std::fs::remove_file(&path);
    assert!(report.converged && res < 1e-8);
}
