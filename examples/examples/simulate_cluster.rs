//! Simulating a solve on a 64-GPU cluster — the workflow behind the
//! paper's Figures 8 and 9.
//!
//! The same solver code that executes for real on `ExecBackend` here
//! drives `SimBackend`, which records a priced task graph instead of
//! touching data; the discrete-event scheduler then reports makespan,
//! utilization, and a per-kernel time breakdown for a problem with a
//! billion unknowns — far beyond what this machine could materialize.
//!
//! Run: `cargo run --release -p kdr-examples --example simulate_cluster`

use std::sync::Arc;

use kdr_core::simbackend::SimBackend;
use kdr_core::solvers::{CgSolver, Solver};
use kdr_core::Planner;
use kdr_index::Partition;
use kdr_machine::{simulate, MachineConfig};
use kdr_sparse::{SparseMatrix, Stencil, StencilOperator};

fn main() {
    let nodes = 16; // 64 GPUs
    let machine = MachineConfig::lassen(nodes).legion_profile();
    // A 2^30-unknown 3-D Poisson problem, matrix-free (the operator's
    // implicit relations make partitioning O(pieces), not O(n)).
    let stencil = Stencil::lap3d7(1 << 10, 1 << 10, 1 << 10);
    let n = stencil.unknowns();
    println!(
        "problem: 7-point Laplacian, {} unknowns ({} stored entries)",
        n,
        stencil.nnz()
    );

    let op: Arc<dyn SparseMatrix<f64>> = Arc::new(StencilOperator::<f64>::new(stencil));
    let mut planner = Planner::new(Box::new(
        SimBackend::<f64>::new(machine.clone()).with_index_bytes(4.0),
    ));
    let part = Partition::equal_blocks(n, nodes * 4);
    let d = planner.add_sol_vector(n, Some(part.clone()));
    let r = planner.add_rhs_vector(n, Some(part));
    planner.add_operator(op, d, r);

    // Ten CG iterations, exactly the code a real solve would run.
    let mut solver = CgSolver::new(&mut planner);
    for _ in 0..10 {
        solver.step(&mut planner);
    }
    drop(solver);

    let graph = planner.with_backend(|b| {
        b.as_any()
            .downcast_mut::<SimBackend<f64>>()
            .unwrap()
            .take_graph()
            .0
    });
    let result = simulate(&graph, &machine, None);
    println!(
        "simulated {} tasks on {} GPUs: makespan {:.2} ms ({:.1} ms/iteration), utilization {:.0}%",
        graph.len(),
        machine.total_procs(),
        result.makespan * 1e3,
        result.makespan * 1e2,
        result.utilization() * 100.0
    );
    println!("\nper-kernel breakdown (count, total span):");
    for (label, count, span) in result.breakdown(&graph) {
        println!("  {label:<14} {count:>5}  {:>9.3} ms", span * 1e3);
    }
    assert!(result.makespan > 0.0 && result.utilization() > 0.2);
}
