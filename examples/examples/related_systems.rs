//! Related systems `(A₀ + ΔAᵢ) xᵢ = bᵢ` sharing one base matrix
//! (paper §4.2, eq. 12).
//!
//! Each system's operator is expressed as TWO components — the shared
//! base `A₀` plus a tiny perturbation `ΔAᵢ` — so `A₀` is stored and
//! transmitted exactly once no matter how many perturbed systems are
//! solved.
//!
//! Run: `cargo run --release -p kdr-examples --example related_systems`

use std::sync::Arc;

use kdr_core::{solve, BiCgStabSolver, ExecBackend, Planner, SolveControl, SOL};
use kdr_index::Partition;
use kdr_sparse::stencil::rhs_vector;
use kdr_sparse::{Csr, SparseMatrix, Stencil, Triples};

fn main() {
    let stencil = Stencil::lap2d(24, 24);
    let n = stencil.unknowns();
    let a0: Arc<dyn SparseMatrix<f64>> = Arc::new(stencil.to_csr::<f64, u32>());

    // Two perturbations, each touching a handful of diagonal entries
    // (e.g. local material changes in a simulation).
    let deltas: Vec<(Vec<u64>, f64)> = vec![(vec![10, 100, 333], 2.5), (vec![7, 8, 9, 500], -0.75)];
    let delta_ops: Vec<Arc<dyn SparseMatrix<f64>>> = deltas
        .iter()
        .map(|(rows, w)| {
            Arc::new(Csr::<f64, u32>::from_triples(Triples::from_entries(
                n,
                n,
                rows.iter().map(|&r| (r, r, *w)).collect(),
            ))) as Arc<dyn SparseMatrix<f64>>
        })
        .collect();

    let mut planner = Planner::new(Box::new(ExecBackend::<f64>::with_default_workers()));
    let part = Partition::equal_blocks(n, 4);
    let mut rhs_data = Vec::new();
    for (i, delta) in delta_ops.iter().enumerate() {
        let d = planner.add_sol_vector(n, Some(part.clone()));
        let r = planner.add_rhs_vector(n, Some(part.clone()));
        // {(K0, A0, i, i), (Ki, ΔAi, i, i)} — the base aliased, the
        // perturbation private.
        planner.add_operator(Arc::clone(&a0), d, r);
        planner.add_operator(Arc::clone(delta), d, r);
        let b = rhs_vector::<f64>(n, 100 + i as u64);
        planner.set_rhs_data(r, &b);
        rhs_data.push(b);
    }
    println!(
        "base matrix stored once ({} strong refs: {} systems + main)",
        Arc::strong_count(&a0),
        deltas.len()
    );

    let mut solver = BiCgStabSolver::new(&mut planner);
    let report = solve(
        &mut planner,
        &mut solver,
        SolveControl::to_tolerance(1e-10, 10_000),
    )
    .expect("solve failed");
    println!("solved in {} iterations", report.iters);

    // Verify each system against its fully assembled counterpart.
    for (i, (rows, w)) in deltas.iter().enumerate() {
        let mut t = stencil.to_triples::<f64>();
        for &r in rows {
            t.push(r, r, *w);
        }
        let full: Csr<f64> = Csr::from_triples(t);
        let x = planner.read_component(SOL, i);
        let mut ax = vec![0.0; n as usize];
        full.spmv(&x, &mut ax);
        let res: f64 = ax
            .iter()
            .zip(&rhs_data[i])
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        println!(
            "system {i} (ΔA on {} rows): true residual {res:.3e}",
            rows.len()
        );
        assert!(res < 1e-7);
    }
}
