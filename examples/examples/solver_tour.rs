//! Tour of the solver library: every KSM, drop-in interchangeable.
//!
//! Because solvers speak only the planner's Figure-6 operation set,
//! any of them runs on any system description unchanged — the
//! "libraries of interchangeable KSMs" the paper's §2.1 calls
//! essential for prototyping. This example runs all fifteen on the
//! same Poisson problem (with a Jacobi preconditioner for the P*
//! variants) and tabulates iterations to tolerance. Chebyshev needs
//! spectral bounds but no inner products at all; the fence-minimal
//! variants (fusedcg, pipelinedcg, pipelinedcr, sstepcg) spend one
//! reduction stage per iteration — or per s-iteration block — where
//! classic CG spends two.
//!
//! Run: `cargo run --release -p kdr-examples --example solver_tour`

use std::sync::Arc;

use kdr_core::{
    precond, solve, BiCgSolver, BiCgStabSolver, CgSolver, CgsSolver, ExecBackend, FusedCgSolver,
    GmresSolver, MinresSolver, PBiCgStabSolver, PcgSolver, PipelinedCgSolver, PipelinedCrSolver,
    Planner, SStepCgSolver, SolveControl, Solver, TfqmrSolver,
};
use kdr_index::Partition;
use kdr_sparse::stencil::rhs_vector;
use kdr_sparse::{SparseMatrix, Stencil};

fn make_planner(preconditioned: bool) -> Planner<f64> {
    let stencil = Stencil::lap2d(24, 24);
    let n = stencil.unknowns();
    let matrix: Arc<dyn SparseMatrix<f64>> = Arc::new(stencil.to_csr::<f64, u32>());
    let mut planner = Planner::new(Box::new(ExecBackend::<f64>::with_default_workers()));
    let part = Partition::equal_blocks(n, 4);
    let d = planner.add_sol_vector(n, Some(part.clone()));
    let r = planner.add_rhs_vector(n, Some(part));
    if preconditioned {
        let p = precond::jacobi(matrix.as_ref());
        planner.add_preconditioner(Arc::new(p), d, r);
    }
    planner.add_operator(matrix, d, r);
    planner.set_rhs_data(r, &rhs_vector::<f64>(n, 3));
    planner
}

fn main() {
    type MakeSolver = (
        &'static str,
        bool,
        fn(&mut Planner<f64>) -> Box<dyn Solver<f64>>,
    );
    let solvers: Vec<MakeSolver> = vec![
        ("cg", false, |p| Box::new(CgSolver::new(p))),
        ("pcg (jacobi)", true, |p| Box::new(PcgSolver::new(p))),
        ("bicg", false, |p| Box::new(BiCgSolver::new(p))),
        ("bicgstab", false, |p| Box::new(BiCgStabSolver::new(p))),
        ("cgs", false, |p| Box::new(CgsSolver::new(p))),
        ("gmres(10)", false, |p| {
            Box::new(GmresSolver::with_restart(p, 10))
        }),
        ("minres", false, |p| Box::new(MinresSolver::new(p))),
        ("tfqmr", false, |p| Box::new(TfqmrSolver::new(p))),
        ("fusedcg", false, |p| Box::new(FusedCgSolver::new(p))),
        ("pipelinedcg", false, |p| Box::new(PipelinedCgSolver::new(p))),
        ("pipelinedcr", false, |p| Box::new(PipelinedCrSolver::new(p))),
        ("sstepcg(3)", false, |p| Box::new(SStepCgSolver::new(p))),
        ("pbicgstab", true, |p| Box::new(PBiCgStabSolver::new(p))),
        ("pgmres(10)", true, |p| {
            Box::new(GmresSolver::preconditioned(p, 10))
        }),
        ("chebyshev", false, |p| {
            // Spectral bounds for the 24x24 5-point Laplacian:
            // Gershgorin upper bound 8, analytic lower bound.
            let lmin = 2.0 * 4.0 * (std::f64::consts::PI / 50.0).sin().powi(2);
            Box::new(kdr_core::ChebyshevSolver::with_bounds(p, lmin, 8.0))
        }),
    ];

    println!("{:<14} {:>10} {:>14}", "solver", "iterations", "residual");
    for (name, preconditioned, make) in solvers {
        let mut planner = make_planner(preconditioned);
        let mut solver = make(&mut planner);
        let report = solve(
            &mut planner,
            solver.as_mut(),
            SolveControl::to_tolerance(1e-10, 20_000),
        )
        .expect("solve failed");
        assert!(report.converged, "{name} did not converge");
        println!(
            "{:<14} {:>10} {:>14.3e}",
            name, report.iters, report.final_residual
        );
    }
    println!("\nall methods ran on the same planner description, unchanged.");
}
