//! Interleaving application work with a running solve (the paper's
//! P1).
//!
//! MPI-era solver libraries assume exclusive control of the machine
//! during a solve; a task-oriented runtime lets independent
//! application work fill the gaps. Here a CG solve and an unrelated
//! "application kernel" (an iterated 1-D diffusion over a separate
//! field) are submitted to the *same* runtime; dependence analysis
//! sees they share no data and freely interleaves them across the
//! worker pool.
//!
//! Run: `cargo run --release -p kdr-examples --example interleaved_app`

use std::sync::Arc;

use kdr_core::{CgSolver, ExecBackend, Planner, Solver, SOL};
use kdr_index::Partition;
use kdr_runtime::{Buffer, TaskBuilder};
use kdr_sparse::stencil::rhs_vector;
use kdr_sparse::{Csr, SparseMatrix, Stencil};

fn main() {
    let stencil = Stencil::lap2d(48, 48);
    let n = stencil.unknowns();
    let matrix: Arc<dyn SparseMatrix<f64>> = Arc::new(stencil.to_csr::<f64, u32>());
    let b = rhs_vector::<f64>(n, 9);

    let backend = ExecBackend::<f64>::new(4);

    // The application's own field, living on the same runtime.
    let field = Buffer::from_vec((0..1024).map(|i| ((i % 97) as f64) / 97.0).collect());
    let diffuse = |field: &Buffer<f64>| {
        TaskBuilder::new("diffuse").write_all(field).body(|ctx| {
            let f = ctx.write::<f64>(0);
            let len = f.len();
            let mut prev = f.get(0);
            for i in 1..len - 1 {
                let cur = f.get(i);
                f.set(i, 0.25 * prev + 0.5 * cur + 0.25 * f.get(i + 1));
                prev = cur;
            }
        })
    };

    let mut planner = Planner::new(Box::new(backend));
    let part = Partition::equal_blocks(n, 4);
    let d = planner.add_sol_vector(n, Some(part.clone()));
    let r = planner.add_rhs_vector(n, Some(part));
    planner.add_operator(Arc::clone(&matrix), d, r);
    planner.set_rhs_data(r, &b);

    // Drive the solve ourselves, feeding unrelated application work
    // into the same runtime between solver steps — the multiphysics
    // pattern the paper's §6.3 motivates. Neither side waits for the
    // other: the diffusion chain serializes only on its own field.
    let mut solver = CgSolver::new(&mut planner);
    let mut rounds = 0usize;
    let mut report;
    loop {
        for _ in 0..10 {
            solver.step(&mut planner);
        }
        planner.with_backend(|be| {
            let rt = be
                .as_any()
                .downcast_mut::<ExecBackend<f64>>()
                .unwrap()
                .runtime();
            for _ in 0..5 {
                rt.submit(diffuse(&field)).unwrap();
                rounds += 1;
            }
        });
        let m = solver.convergence_measure().unwrap().get();
        report = (m.sqrt(), rounds);
        if m.sqrt() < 1e-10 || rounds > 2000 {
            break;
        }
    }
    planner.fence();
    assert!(report.0 < 1e-10, "did not converge: {}", report.0);

    // Check both results.
    let x = planner.read_component(SOL, 0);
    let check: Csr<f64> = stencil.to_csr();
    let mut ax = vec![0.0; n as usize];
    check.spmv(&x, &mut ax);
    let res: f64 = ax
        .iter()
        .zip(&b)
        .map(|(a, bb)| (a - bb) * (a - bb))
        .sum::<f64>()
        .sqrt();

    let stats = planner.with_backend(|be| {
        be.as_any()
            .downcast_mut::<ExecBackend<f64>>()
            .unwrap()
            .metrics()
            .runtime
    });
    let field_now = field.snapshot();
    let smoothness: f64 = field_now
        .windows(2)
        .map(|w| (w[1] - w[0]).abs())
        .fold(0.0f64, f64::max);

    println!("solve: converged with true residual {res:.3e}");
    println!(
        "application: {rounds} diffusion rounds completed alongside (max gradient now {smoothness:.3e})"
    );
    println!(
        "runtime: {} tasks executed, {} dependence edges, {} stolen between workers",
        stats.tasks_executed, stats.edges_created, stats.tasks_stolen
    );
    assert!(res < 1e-8);
    assert!(
        smoothness < 0.5,
        "diffusion must have begun smoothing the unit jump: {smoothness}"
    );
}
