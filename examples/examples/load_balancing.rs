//! Dynamic load balancing against a changing background workload
//! (paper §6.3, in miniature).
//!
//! A cluster of 8 nodes runs CG-like iterations while a stochastic
//! background job occupies a random number of cores on each node,
//! redrawn every 50 iterations. Matrix tiles are rebalanced between
//! their two candidate owners by the thermodynamic giveaway policy
//! every 10 iterations. This is the capability MPI-era solver
//! libraries cannot offer: the solve adapts while it runs.
//!
//! Run: `cargo run --release -p kdr-examples --example load_balancing`

use kdr_core::loadbalance::{IterationModel, ThermoBalancer, Tile};
use kdr_machine::BackgroundLoad;

const NODES: usize = 8;
const ITERS: u64 = 500;

fn build_tiles() -> Vec<Tile> {
    // 16 pieces, 2 per node; each piece's matrix work can live with
    // its own node or its cross-node neighbor.
    (0..16)
        .map(|p| {
            let own = p / 2;
            let partner = if p % 2 == 0 {
                (own + NODES - 1) % NODES
            } else {
                (own + 1) % NODES
            };
            Tile::new(own, partner, 1.0e9)
        })
        .collect()
}

fn run(dynamic: bool) -> Vec<f64> {
    let mut tiles = build_tiles();
    let model = IterationModel {
        pinned_flops: vec![0.5e9; NODES],
        flops_per_node: 0.8e12,
        sync_seconds: 20e-6,
    };
    let mut load = BackgroundLoad::new(NODES, 40, 50, 2024);
    let t0 = model.iteration_time(&tiles, &[load.reference_speed(); NODES]);
    let mut balancer = ThermoBalancer::new(5e-3, t0, 7);
    let mut times = Vec::new();
    for it in 0..ITERS {
        load.advance(it);
        let speeds = load.speeds();
        if dynamic && it > 0 && it % 10 == 0 {
            let node_times = model.node_times(&tiles, &speeds);
            let moved = balancer.rebalance(&mut tiles, &node_times);
            if moved > 0 && it % 50 == 10 {
                println!("  iteration {it}: migrated {moved} tiles");
            }
        }
        times.push(model.iteration_time(&tiles, &speeds));
    }
    times
}

fn main() {
    println!("static mapping:");
    let static_times = run(false);
    println!("dynamic (thermodynamic) mapping:");
    let dynamic_times = run(true);

    let total_static: f64 = static_times.iter().sum();
    let total_dynamic: f64 = dynamic_times.iter().sum();
    println!(
        "\ntotal time: static {:.2}s, dynamic {:.2}s -> {:.1}% reduction",
        total_static,
        total_dynamic,
        100.0 * (1.0 - total_dynamic / total_static)
    );
    // A sparkline of the two series (one char per 10 iterations).
    let spark = |ts: &[f64]| -> String {
        let max = ts.iter().cloned().fold(0.0, f64::max);
        ts.chunks(10)
            .map(|c| {
                let avg = c.iter().sum::<f64>() / c.len() as f64;
                let idx = ((avg / max) * 7.0).round() as usize;
                [
                    '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}',
                    '\u{2587}', '\u{2588}',
                ][idx.min(7)]
            })
            .collect()
    };
    println!("static : {}", spark(&static_times));
    println!("dynamic: {}", spark(&dynamic_times));
    assert!(total_dynamic < total_static);
}
