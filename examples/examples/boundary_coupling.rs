//! Non-contiguous data from multiple sources, solved in place
//! (the paper's P4).
//!
//! A toy boundary-value coupling: an "interior" subsystem and a
//! "boundary" subsystem are produced by *different subroutines* as
//! separate arrays with their own index spaces — the situation the
//! paper's introduction motivates. Traditional libraries require
//! reindexing both into one contiguous matrix; KDRSolvers ingests the
//! four coupling blocks as operator components over two domain
//! spaces, with zero reassembly or data movement.
//!
//! Run: `cargo run --release -p kdr-examples --example boundary_coupling`

use std::sync::Arc;

use kdr_core::{solve, BiCgStabSolver, ExecBackend, Planner, SolveControl, SOL};
use kdr_index::Partition;
use kdr_sparse::stencil::rhs_vector;
use kdr_sparse::{Csr, SparseMatrix, Triples};

/// "Subroutine 1": the interior discretization — a 2-D Laplacian over
/// its own index space.
fn interior_subsystem(m: u64) -> Csr<f64, u32> {
    kdr_sparse::Stencil::lap2d(m, m).to_csr()
}

/// "Subroutine 2": the boundary operator — a 1-D ring Laplacian over
/// the boundary's own (smaller) index space.
fn boundary_subsystem(p: u64) -> Csr<f64, u32> {
    let mut t = Triples::new(p, p);
    for i in 0..p {
        t.push(i, i, 3.0);
        t.push(i, (i + 1) % p, -1.0);
        t.push(i, (i + p - 1) % p, -1.0);
    }
    Csr::from_triples(t)
}

/// The coupling blocks: boundary point `k` interacts with interior
/// point `k * stride` (a sparse injection/restriction pair).
fn coupling(n_int: u64, p: u64, transpose: bool) -> Csr<f64, u32> {
    let stride = n_int / p;
    let mut t = if transpose {
        Triples::new(p, n_int)
    } else {
        Triples::new(n_int, p)
    };
    for k in 0..p {
        if transpose {
            t.push(k, k * stride, -0.5);
        } else {
            t.push(k * stride, k, -0.5);
        }
    }
    Csr::from_triples(t)
}

fn main() {
    let m = 24; // interior is m x m
    let n_int = m * m;
    let p = 32; // boundary points
    let interior: Arc<dyn SparseMatrix<f64>> = Arc::new(interior_subsystem(m));
    let boundary: Arc<dyn SparseMatrix<f64>> = Arc::new(boundary_subsystem(p));
    let c_ib: Arc<dyn SparseMatrix<f64>> = Arc::new(coupling(n_int, p, false)); // boundary -> interior rows
    let c_bi: Arc<dyn SparseMatrix<f64>> = Arc::new(coupling(n_int, p, true)); // interior -> boundary rows

    // Two domain spaces with different sizes and partitions — exactly
    // as the two subroutines produced them.
    let mut planner = Planner::new(Box::new(ExecBackend::<f64>::with_default_workers()));
    let d_int = planner.add_sol_vector(n_int, Some(Partition::equal_blocks(n_int, 4)));
    let d_bnd = planner.add_sol_vector(p, Some(Partition::equal_blocks(p, 2)));
    let r_int = planner.add_rhs_vector(n_int, Some(Partition::equal_blocks(n_int, 4)));
    let r_bnd = planner.add_rhs_vector(p, Some(Partition::equal_blocks(p, 2)));

    planner.add_operator(Arc::clone(&interior), d_int, r_int);
    planner.add_operator(Arc::clone(&c_ib), d_bnd, r_int);
    planner.add_operator(Arc::clone(&c_bi), d_int, r_bnd);
    planner.add_operator(Arc::clone(&boundary), d_bnd, r_bnd);

    let b_int = rhs_vector::<f64>(n_int, 7);
    let b_bnd = rhs_vector::<f64>(p, 8);
    planner.set_rhs_data(r_int, &b_int);
    planner.set_rhs_data(r_bnd, &b_bnd);

    println!(
        "coupled system: interior {}x{} + boundary {}x{} + 2 coupling blocks, no reassembly",
        n_int, n_int, p, p
    );

    let mut solver = BiCgStabSolver::new(&mut planner);
    let report = solve(
        &mut planner,
        &mut solver,
        SolveControl::to_tolerance(1e-11, 20_000),
    )
    .expect("solve failed");
    println!(
        "converged: {} in {} iterations (residual {:.3e})",
        report.converged, report.iters, report.final_residual
    );

    // Verify against a fully assembled reference.
    let mut t = Triples::new(n_int + p, n_int + p);
    interior.for_each_entry(&mut |_, i, j, v| t.push(i, j, v));
    c_ib.for_each_entry(&mut |_, i, j, v| t.push(i, n_int + j, v));
    c_bi.for_each_entry(&mut |_, i, j, v| t.push(n_int + i, j, v));
    boundary.for_each_entry(&mut |_, i, j, v| t.push(n_int + i, n_int + j, v));
    let assembled: Csr<f64> = Csr::from_triples(t);
    let mut x = planner.read_component(SOL, 0);
    x.extend(planner.read_component(SOL, 1));
    let mut ax = vec![0.0; (n_int + p) as usize];
    assembled.spmv(&x, &mut ax);
    let mut b_all = b_int.clone();
    b_all.extend(&b_bnd);
    let res: f64 = ax
        .iter()
        .zip(&b_all)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt();
    println!("true residual vs assembled reference: {res:.3e}");
    assert!(res < 1e-7);
}
