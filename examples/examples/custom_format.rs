//! A user-defined storage format plugging into KDRSolvers with zero
//! library changes (the paper's P2).
//!
//! The format: "diagonal + sparse corrections" — the main diagonal in
//! a dense array plus off-diagonal entries in COO arrays. It lives
//! entirely in this example file; by implementing `SparseMatrix`
//! (i.e., by *stating its row and column relations*), it gains
//! format-independent co-partitioning, tiling, and every solver —
//! none of which know it exists.
//!
//! Run: `cargo run --release -p kdr-examples --example custom_format`

use std::sync::Arc;

use kdr_core::{solve, CgSolver, ExecBackend, Planner, SolveControl, SOL};
use kdr_index::{
    DiagonalRelation, FnRelation, IndexSpace, IntervalSet, Partition, Relation, UnionRelation,
};
use kdr_sparse::stencil::rhs_vector;
use kdr_sparse::{Scalar, SparseMatrix, Stencil};

/// Diagonal-plus-corrections format: `K = {0..n} ⊔ {n..n+m}` where the
/// first `n` kernel points are the diagonal (implicit relations) and
/// the rest are stored COO corrections.
struct DiagPlusCoo<T> {
    diag: Vec<T>,
    rows: Vec<u64>,
    cols: Vec<u64>,
    vals: Vec<T>,
}

impl<T: Scalar> DiagPlusCoo<T> {
    fn n(&self) -> u64 {
        self.diag.len() as u64
    }
}

impl<T: Scalar> SparseMatrix<T> for DiagPlusCoo<T> {
    fn kernel_space(&self) -> IndexSpace {
        IndexSpace::flat(self.n() + self.vals.len() as u64)
    }

    fn domain_space(&self) -> IndexSpace {
        IndexSpace::flat(self.n())
    }

    fn range_space(&self) -> IndexSpace {
        IndexSpace::flat(self.n())
    }

    fn col_relation(&self) -> Box<dyn Relation> {
        // Diagonal part: identity on the first n kernel points (a
        // zero-offset diagonal relation over the full K handles the
        // out-of-range tail as padding); COO part: stored columns.
        // Expressed as a union of two relations over the same spaces.
        let n = self.n();
        let total = n + self.vals.len() as u64;
        let diag_part = DiagonalRelation::new(vec![0], total, n); // k ↦ k for k < n
        let mut table = vec![0u64; total as usize];
        // Map COO kernel points to their columns; diagonal kernel
        // points map to column 0 in this table but contribute through
        // diag_part (FnRelation is total, so point the unused half at
        // its own diagonal column to avoid spurious edges).
        for k in 0..n {
            table[k as usize] = k.min(n - 1);
        }
        for (i, &c) in self.cols.iter().enumerate() {
            table[(n as usize) + i] = c;
        }
        let coo_part = FnRelation::new(table, n);
        Box::new(UnionRelation::new(vec![
            Box::new(diag_part),
            Box::new(coo_part),
        ]))
    }

    fn row_relation(&self) -> Box<dyn Relation> {
        let n = self.n();
        let total = n + self.vals.len() as u64;
        let diag_part = DiagonalRelation::new(vec![0], total, n);
        let mut table = vec![0u64; total as usize];
        for k in 0..n {
            table[k as usize] = k.min(n - 1);
        }
        for (i, &r) in self.rows.iter().enumerate() {
            table[(n as usize) + i] = r;
        }
        let coo_part = FnRelation::new(table, n);
        Box::new(UnionRelation::new(vec![
            Box::new(diag_part),
            Box::new(coo_part),
        ]))
    }

    fn for_each_entry(&self, f: &mut dyn FnMut(u64, u64, u64, T)) {
        for (k, &v) in self.diag.iter().enumerate() {
            f(k as u64, k as u64, k as u64, v);
        }
        let n = self.n();
        for i in 0..self.vals.len() {
            f(n + i as u64, self.rows[i], self.cols[i], self.vals[i]);
        }
    }

    fn spmv_add_piece(&self, piece: &IntervalSet, x: &[T], y: &mut [T]) {
        let n = self.n();
        for run in piece.runs() {
            for k in run.lo..run.hi {
                if k < n {
                    y[k as usize] += self.diag[k as usize] * x[k as usize];
                } else {
                    let i = (k - n) as usize;
                    y[self.rows[i] as usize] += self.vals[i] * x[self.cols[i] as usize];
                }
            }
        }
    }

    fn spmv_transpose_add_piece(&self, piece: &IntervalSet, x: &[T], y: &mut [T]) {
        let n = self.n();
        for run in piece.runs() {
            for k in run.lo..run.hi {
                if k < n {
                    y[k as usize] += self.diag[k as usize] * x[k as usize];
                } else {
                    let i = (k - n) as usize;
                    y[self.cols[i] as usize] += self.vals[i] * x[self.rows[i] as usize];
                }
            }
        }
    }
}

fn main() {
    // Express the 2-D Laplacian in the custom format: diagonal array
    // plus COO corrections for the off-diagonal couplings.
    let stencil = Stencil::lap2d(20, 20);
    let n = stencil.unknowns();
    let t = stencil.to_triples::<f64>();
    let mut m = DiagPlusCoo {
        diag: vec![0.0; n as usize],
        rows: Vec::new(),
        cols: Vec::new(),
        vals: Vec::new(),
    };
    for &(i, j, v) in t.entries() {
        if i == j {
            m.diag[i as usize] = v;
        } else {
            m.rows.push(i);
            m.cols.push(j);
            m.vals.push(v);
        }
    }
    println!(
        "custom format: {} diagonal entries + {} COO corrections (kernel space {})",
        n,
        m.vals.len(),
        m.kernel_space().size()
    );

    // The library has never heard of DiagPlusCoo, yet partitioning,
    // tiling, and CG all work:
    let matrix: Arc<dyn SparseMatrix<f64>> = Arc::new(m);
    let mut planner = Planner::new(Box::new(ExecBackend::<f64>::with_default_workers()));
    let part = Partition::equal_blocks(n, 4);
    let d = planner.add_sol_vector(n, Some(part.clone()));
    let r = planner.add_rhs_vector(n, Some(part));
    planner.add_operator(Arc::clone(&matrix), d, r);
    let b = rhs_vector::<f64>(n, 99);
    planner.set_rhs_data(r, &b);

    let mut solver = CgSolver::new(&mut planner);
    let report = solve(
        &mut planner,
        &mut solver,
        SolveControl::to_tolerance(1e-10, 10_000),
    )
    .expect("solve failed");
    let x = planner.read_component(SOL, 0);
    let mut ax = vec![0.0; n as usize];
    matrix.spmv(&x, &mut ax);
    let res: f64 = ax
        .iter()
        .zip(&b)
        .map(|(a, bb)| (a - bb) * (a - bb))
        .sum::<f64>()
        .sqrt();
    println!(
        "CG on the custom format: converged = {}, {} iterations, true residual {:.3e}",
        report.converged, report.iters, res
    );
    assert!(report.converged && res < 1e-8);
}
